#ifndef QP_TESTS_OBS_OBS_TEST_PARSERS_H_
#define QP_TESTS_OBS_OBS_TEST_PARSERS_H_

// Minimal parsers for the two DumpMetrics export formats, used by the
// round-trip tests: if these independent readers can reconstruct the
// registry's values from the emitted text, real consumers (log
// pipelines, Prometheus scrapers) can too. They accept exactly the
// subset the emitters produce — not general JSON / exposition text.

#include <cctype>
#include <cstdlib>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace qp {
namespace testing_util {

struct JsonValue {
  enum class Kind { kNull, kNumber, kString, kObject, kArray };
  Kind kind = Kind::kNull;
  double number = 0.0;
  std::string str;
  std::vector<std::pair<std::string, JsonValue>> object;
  std::vector<JsonValue> array;

  const JsonValue* Find(std::string_view key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

/// Recursive-descent parser over the single-line JSON our exporters
/// emit. Returns false on any syntax it does not understand.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  bool Parse(JsonValue* out) {
    return ParseValue(out) && (SkipSpace(), pos_ == text_.size());
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ >= text_.size() || text_[pos_] != c) return false;
    ++pos_;
    return true;
  }

  bool ParseString(std::string* out) {
    if (!Consume('"')) return false;
    out->clear();
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        char esc = text_[pos_++];
        switch (esc) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return false;
            int code = std::strtol(
                std::string(text_.substr(pos_, 4)).c_str(), nullptr, 16);
            pos_ += 4;
            out->push_back(static_cast<char>(code));
            break;
          }
          default:
            return false;
        }
      } else {
        out->push_back(c);
      }
    }
    return Consume('"');
  }

  bool ParseNumber(double* out) {
    SkipSpace();
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    *out = std::strtod(std::string(text_.substr(start, pos_ - start)).c_str(),
                       nullptr);
    return true;
  }

  bool ParseValue(JsonValue* out) {
    SkipSpace();
    if (pos_ >= text_.size()) return false;
    char c = text_[pos_];
    if (c == '{') {
      out->kind = JsonValue::Kind::kObject;
      ++pos_;
      SkipSpace();
      if (Consume('}')) return true;
      while (true) {
        std::string key;
        JsonValue value;
        if (!ParseString(&key) || !Consume(':') || !ParseValue(&value)) {
          return false;
        }
        out->object.emplace_back(std::move(key), std::move(value));
        if (Consume('}')) return true;
        if (!Consume(',')) return false;
      }
    }
    if (c == '[') {
      out->kind = JsonValue::Kind::kArray;
      ++pos_;
      SkipSpace();
      if (Consume(']')) return true;
      while (true) {
        JsonValue value;
        if (!ParseValue(&value)) return false;
        out->array.push_back(std::move(value));
        if (Consume(']')) return true;
        if (!Consume(',')) return false;
      }
    }
    if (c == '"') {
      out->kind = JsonValue::Kind::kString;
      return ParseString(&out->str);
    }
    out->kind = JsonValue::Kind::kNumber;
    return ParseNumber(&out->number);
  }

  std::string_view text_;
  size_t pos_ = 0;
};

/// Parsed Prometheus text exposition: plain samples by name, histogram
/// bucket samples by (name, le-label), and the `# TYPE` declarations.
struct PrometheusMetrics {
  std::map<std::string, double> samples;
  std::map<std::string, std::map<std::string, double>> buckets;
  std::map<std::string, std::string> types;
};

inline bool ParsePrometheusText(const std::string& text,
                                PrometheusMetrics* out) {
  size_t pos = 0;
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) continue;
    if (line[0] == '#') {
      // "# TYPE <name> <type>"
      if (line.rfind("# TYPE ", 0) == 0) {
        std::string rest = line.substr(7);
        size_t space = rest.find(' ');
        if (space == std::string::npos) return false;
        (*out).types[rest.substr(0, space)] = rest.substr(space + 1);
      }
      continue;
    }
    size_t space = line.rfind(' ');
    if (space == std::string::npos) return false;
    std::string name = line.substr(0, space);
    double value = std::strtod(line.c_str() + space + 1, nullptr);
    size_t brace = name.find('{');
    if (brace == std::string::npos) {
      (*out).samples[name] = value;
      continue;
    }
    // Only histogram buckets carry labels: name_bucket{le="<bound>"}.
    std::string base = name.substr(0, brace);
    std::string labels = name.substr(brace);
    const std::string prefix = "{le=\"";
    if (labels.rfind(prefix, 0) != 0 || labels.size() < prefix.size() + 2 ||
        labels.substr(labels.size() - 2) != "\"}") {
      return false;
    }
    std::string le =
        labels.substr(prefix.size(), labels.size() - prefix.size() - 2);
    (*out).buckets[base][le] = value;
  }
  return true;
}

}  // namespace testing_util
}  // namespace qp

#endif  // QP_TESTS_OBS_OBS_TEST_PARSERS_H_
