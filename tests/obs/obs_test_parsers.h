#ifndef QP_TESTS_OBS_OBS_TEST_PARSERS_H_
#define QP_TESTS_OBS_OBS_TEST_PARSERS_H_

// Minimal parsers for the two DumpMetrics export formats, used by the
// round-trip tests: if these independent readers can reconstruct the
// registry's values from the emitted text, real consumers (log
// pipelines, Prometheus scrapers) can too. They accept exactly the
// subset the emitters produce — not general JSON / exposition text.

#include <cctype>
#include <cstdlib>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace qp {
namespace testing_util {

struct JsonValue {
  enum class Kind { kNull, kNumber, kString, kObject, kArray };
  Kind kind = Kind::kNull;
  double number = 0.0;
  std::string str;
  std::vector<std::pair<std::string, JsonValue>> object;
  std::vector<JsonValue> array;

  const JsonValue* Find(std::string_view key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

/// Recursive-descent parser over the single-line JSON our exporters
/// emit. Returns false on any syntax it does not understand.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  bool Parse(JsonValue* out) {
    return ParseValue(out) && (SkipSpace(), pos_ == text_.size());
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ >= text_.size() || text_[pos_] != c) return false;
    ++pos_;
    return true;
  }

  bool ParseString(std::string* out) {
    if (!Consume('"')) return false;
    out->clear();
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        char esc = text_[pos_++];
        switch (esc) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return false;
            int code = std::strtol(
                std::string(text_.substr(pos_, 4)).c_str(), nullptr, 16);
            pos_ += 4;
            out->push_back(static_cast<char>(code));
            break;
          }
          default:
            return false;
        }
      } else {
        out->push_back(c);
      }
    }
    return Consume('"');
  }

  bool ParseNumber(double* out) {
    SkipSpace();
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    *out = std::strtod(std::string(text_.substr(start, pos_ - start)).c_str(),
                       nullptr);
    return true;
  }

  bool ParseValue(JsonValue* out) {
    SkipSpace();
    if (pos_ >= text_.size()) return false;
    char c = text_[pos_];
    if (c == '{') {
      out->kind = JsonValue::Kind::kObject;
      ++pos_;
      SkipSpace();
      if (Consume('}')) return true;
      while (true) {
        std::string key;
        JsonValue value;
        if (!ParseString(&key) || !Consume(':') || !ParseValue(&value)) {
          return false;
        }
        out->object.emplace_back(std::move(key), std::move(value));
        if (Consume('}')) return true;
        if (!Consume(',')) return false;
      }
    }
    if (c == '[') {
      out->kind = JsonValue::Kind::kArray;
      ++pos_;
      SkipSpace();
      if (Consume(']')) return true;
      while (true) {
        JsonValue value;
        if (!ParseValue(&value)) return false;
        out->array.push_back(std::move(value));
        if (Consume(']')) return true;
        if (!Consume(',')) return false;
      }
    }
    if (c == '"') {
      out->kind = JsonValue::Kind::kString;
      return ParseString(&out->str);
    }
    out->kind = JsonValue::Kind::kNumber;
    return ParseNumber(&out->number);
  }

  std::string_view text_;
  size_t pos_ = 0;
};

/// One sample line of the exposition, with its label set unescaped back
/// to the raw values the registry was given.
struct PrometheusSeries {
  std::string name;
  std::vector<std::pair<std::string, std::string>> labels;
  double value = 0.0;
};

/// Parsed Prometheus text exposition: plain samples keyed by the series
/// text exactly as emitted (bare name when unlabeled), every sample
/// structurally in `series` (labels unescaped), unlabeled histogram
/// buckets by (name, le), plus the `# TYPE` / `# HELP` declarations.
struct PrometheusMetrics {
  std::map<std::string, double> samples;
  std::vector<PrometheusSeries> series;
  std::map<std::string, std::map<std::string, double>> buckets;
  std::map<std::string, std::string> types;
  std::map<std::string, std::string> helps;
};

/// Unescapes a HELP text or label value: \\ -> backslash, \n -> newline,
/// and (for label values) \" -> quote. Returns false on a dangling or
/// unknown escape.
inline bool PromUnescape(std::string_view in, std::string* out) {
  out->clear();
  for (size_t i = 0; i < in.size(); ++i) {
    if (in[i] != '\\') {
      out->push_back(in[i]);
      continue;
    }
    if (++i >= in.size()) return false;
    switch (in[i]) {
      case '\\': out->push_back('\\'); break;
      case 'n': out->push_back('\n'); break;
      case '"': out->push_back('"'); break;
      default: return false;
    }
  }
  return true;
}

inline bool ParsePrometheusText(const std::string& text,
                                PrometheusMetrics* out) {
  size_t pos = 0;
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) continue;
    if (line[0] == '#') {
      // "# TYPE <name> <type>" / "# HELP <name> <escaped text>"
      if (line.rfind("# TYPE ", 0) == 0) {
        std::string rest = line.substr(7);
        size_t space = rest.find(' ');
        if (space == std::string::npos) return false;
        (*out).types[rest.substr(0, space)] = rest.substr(space + 1);
      } else if (line.rfind("# HELP ", 0) == 0) {
        std::string rest = line.substr(7);
        size_t space = rest.find(' ');
        if (space == std::string::npos) return false;
        std::string help;
        if (!PromUnescape(rest.substr(space + 1), &help)) return false;
        (*out).helps[rest.substr(0, space)] = std::move(help);
      }
      continue;
    }
    // "<name>[{k="v",...}] <value>" — scanned left to right with
    // escape-aware label values, since a value may contain any byte
    // (spaces and braces included).
    size_t i = 0;
    while (i < line.size() && line[i] != '{' && line[i] != ' ') ++i;
    PrometheusSeries sample;
    sample.name = line.substr(0, i);
    if (sample.name.empty()) return false;
    if (i < line.size() && line[i] == '{') {
      ++i;
      while (i < line.size() && line[i] != '}') {
        size_t key_start = i;
        while (i < line.size() && line[i] != '=') ++i;
        if (i + 1 >= line.size() || line[i + 1] != '"') return false;
        std::string key = line.substr(key_start, i - key_start);
        i += 2;  // '="'
        std::string raw;
        while (i < line.size() && line[i] != '"') {
          if (line[i] == '\\') {
            if (i + 1 >= line.size()) return false;
            raw.push_back(line[i]);
            raw.push_back(line[i + 1]);
            i += 2;
          } else {
            raw.push_back(line[i++]);
          }
        }
        if (i >= line.size()) return false;
        ++i;  // closing quote
        std::string value;
        if (!PromUnescape(raw, &value)) return false;
        sample.labels.emplace_back(std::move(key), std::move(value));
        if (i < line.size() && line[i] == ',') ++i;
      }
      if (i >= line.size()) return false;
      ++i;  // '}'
    }
    if (i >= line.size() || line[i] != ' ') return false;
    sample.value = std::strtod(line.c_str() + i + 1, nullptr);
    (*out).samples[line.substr(0, i)] = sample.value;
    if (sample.labels.size() == 1 && sample.labels[0].first == "le") {
      // The pre-label-support bucket view, still what the histogram
      // round-trip tests read for unlabeled histograms.
      (*out).buckets[sample.name][sample.labels[0].second] = sample.value;
    }
    (*out).series.push_back(std::move(sample));
  }
  return true;
}

}  // namespace testing_util
}  // namespace qp

#endif  // QP_TESTS_OBS_OBS_TEST_PARSERS_H_
