// Property test pinning the accuracy of the log-bucket (base-2)
// histogram's interpolated percentiles against exact order statistics.
//
// The contract being pinned: for dense distributions (no empty bucket
// straddling the percentile, which every continuous distribution with
// thousands of samples satisfies), the interpolated p50/p95/p99 lands in
// the same base-2 bucket as the exact order statistic, so the relative
// error is bounded by the bucket width — a factor of 2 at the very
// worst, far less in practice. Seeded trials over three distribution
// families keep the property deterministic and replayable.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "qp/obs/metrics.h"
#include "qp/util/random.h"

namespace qp {
namespace obs {
namespace {

constexpr size_t kSamples = 2000;
constexpr double kPercentiles[] = {50.0, 95.0, 99.0};

/// The exact order statistic under the same rank convention the
/// histogram interpolation uses: rank = p/100 * n clamped to >= 1, the
/// ceil(rank)-th smallest observation.
double ExactPercentile(const std::vector<double>& sorted, double p) {
  double rank = p / 100.0 * static_cast<double>(sorted.size());
  if (rank < 1.0) rank = 1.0;
  size_t k = static_cast<size_t>(std::ceil(rank));
  if (k > sorted.size()) k = sorted.size();
  return sorted[k - 1];
}

void CheckDistribution(const std::string& label,
                       std::vector<double> values) {
  Histogram histogram;
  for (double v : values) histogram.Record(v);
  std::sort(values.begin(), values.end());
  HistogramSnapshot snapshot = histogram.Snapshot();
  ASSERT_EQ(snapshot.count, values.size());

  double previous = 0.0;
  for (double p : kPercentiles) {
    const double exact = ExactPercentile(values, p);
    const double estimate = snapshot.Percentile(p);
    ASSERT_GT(exact, 0.0) << label;
    // Same base-2 bucket => within one bucket width, i.e. a 2x band.
    // The slack (2.05 / 1.95) absorbs floating-point edge effects for
    // observations landing exactly on a bucket bound.
    EXPECT_GE(estimate, exact / 2.05)
        << label << " p" << p << ": estimate " << estimate
        << " too far below exact " << exact;
    EXPECT_LE(estimate, exact * 2.05)
        << label << " p" << p << ": estimate " << estimate
        << " too far above exact " << exact;
    // Percentiles are monotone in p by construction; pin it anyway.
    EXPECT_GE(estimate, previous) << label << " p" << p;
    previous = estimate;
  }
}

TEST(HistogramPercentileProperty, UniformDistributions) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed);
    // A uniform band [lo, lo * 10^k): spans a few buckets densely.
    const double lo = 0.0001 * std::pow(10.0, static_cast<double>(seed % 4));
    const double hi = lo * (10.0 + static_cast<double>(seed % 3) * 40.0);
    std::vector<double> values;
    values.reserve(kSamples);
    for (size_t i = 0; i < kSamples; ++i) {
      values.push_back(lo + rng.NextDouble() * (hi - lo));
    }
    CheckDistribution("uniform/seed" + std::to_string(seed),
                      std::move(values));
  }
}

TEST(HistogramPercentileProperty, ExponentialDistributions) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed * 7919);
    const double mean = 0.001 * std::pow(4.0, static_cast<double>(seed % 5));
    std::vector<double> values;
    values.reserve(kSamples);
    for (size_t i = 0; i < kSamples; ++i) {
      // Inverse-CDF sampling; 1 - u in (0, 1] avoids log(0).
      values.push_back(-mean * std::log(1.0 - rng.NextDouble()));
    }
    // log(1 - u) can produce exact zeros at u == 0; the histogram's
    // first bucket holds them but the exact-order-statistic comparison
    // needs positives.
    for (double& v : values) {
      if (v <= 0.0) v = mean * 1e-6;
    }
    CheckDistribution("exponential/seed" + std::to_string(seed),
                      std::move(values));
  }
}

TEST(HistogramPercentileProperty, LognormalDistributions) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed * 104729);
    const double sigma = 0.5 + 0.25 * static_cast<double>(seed % 3);
    const double mu = std::log(0.05) + static_cast<double>(seed % 4);
    std::vector<double> values;
    values.reserve(kSamples);
    for (size_t i = 0; i < kSamples; ++i) {
      // Irwin-Hall approximation of a standard normal: the sum of 12
      // uniforms minus 6 — dependency-free and plenty for a property
      // over percentile bands.
      double normal = -6.0;
      for (int k = 0; k < 12; ++k) normal += rng.NextDouble();
      values.push_back(std::exp(mu + sigma * normal));
    }
    CheckDistribution("lognormal/seed" + std::to_string(seed),
                      std::move(values));
  }
}

TEST(HistogramPercentileProperty, PointMassIsExact) {
  // Degenerate distribution: every observation identical. The exact
  // percentile is that value and the interpolation must stay within its
  // bucket (the value's own power-of-two bracket).
  Histogram histogram;
  for (size_t i = 0; i < 100; ++i) histogram.Record(0.25);
  HistogramSnapshot snapshot = histogram.Snapshot();
  for (double p : kPercentiles) {
    // With only one occupied bucket the interpolation spans (0, bound];
    // the 2x band still holds at its very edge (p50 -> bound/2).
    EXPECT_GE(snapshot.Percentile(p), 0.25 / 2.05);
    EXPECT_LE(snapshot.Percentile(p), 0.25 * 1.0001);
  }
}

}  // namespace
}  // namespace obs
}  // namespace qp
