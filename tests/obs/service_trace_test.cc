// End-to-end observability: a request through the PersonalizationService
// produces a trace whose spans and counters agree with the response's
// own stats, the registry's counters agree with the service's work, and
// DumpMetrics round-trips through independent JSON and Prometheus
// parsers. Also pins the minimal traces of requests that never ran
// (shed, expired, degraded-by-queue-pressure).

#include <cstddef>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/test_util.h"
#include "gtest/gtest.h"
#include "obs_test_parsers.h"
#include "qp/data/paper_example.h"
#include "qp/obs/trace.h"
#include "qp/service/service.h"

namespace qp {
namespace {

using ::qp::testing_util::JsonParser;
using ::qp::testing_util::JsonValue;
using ::qp::testing_util::ParsePrometheusText;
using ::qp::testing_util::PrometheusMetrics;

/// Collects every delivered trace (thread-safe, unlike LastTraceSink it
/// keeps them all) so batch tests can reconcile traces against stats.
class VectorTraceSink : public obs::TraceSink {
 public:
  void Consume(obs::RequestTrace trace) override {
    std::lock_guard<std::mutex> lock(mutex_);
    traces_.push_back(std::move(trace));
  }

  std::vector<obs::RequestTrace> Take() {
    std::lock_guard<std::mutex> lock(mutex_);
    return std::move(traces_);
  }

 private:
  std::mutex mutex_;
  std::vector<obs::RequestTrace> traces_;
};

class ServiceTraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    QP_ASSERT_OK_AND_ASSIGN(Database db, BuildPaperDatabase());
    db_ = std::make_unique<Database>(std::move(db));
  }

  PersonalizationRequest JulieRequest() {
    PersonalizationRequest request;
    request.user_id = "julie";
    request.query = TonightQuery();
    request.options.criterion = InterestCriterion::TopCount(3);
    return request;
  }

  std::unique_ptr<Database> db_;
};

std::vector<std::string> RootSpanNames(const obs::RequestTrace& trace) {
  std::vector<std::string> names;
  for (const obs::TraceSpan& span : trace.spans()) {
    if (span.depth == 0) names.push_back(span.name);
  }
  return names;
}

TEST_F(ServiceTraceTest, FullRequestTraceMatchesResponse) {
  if (!obs::kTracingCompiledIn) GTEST_SKIP() << "tracing compiled out";
  PersonalizationService service(db_.get(), ServiceOptions{.num_workers = 1});
  QP_ASSERT_OK(service.profiles().Put("julie", JulieProfile()));
  obs::LastTraceSink sink;
  service.set_trace_sink(&sink);

  PersonalizationResponse response = service.PersonalizeOne(JulieRequest());
  QP_ASSERT_OK(response.status);
  EXPECT_EQ(response.disposition, RequestDisposition::kFull);
  ASSERT_EQ(response.outcome.selected.size(), 3u);

  std::shared_ptr<const obs::RequestTrace> trace = sink.last();
  ASSERT_NE(trace, nullptr);
  EXPECT_EQ(trace->disposition(), "full");
  EXPECT_EQ(trace->stopped_phase(), "");

  // The pipeline's phases appear as root spans, in pipeline order.
  EXPECT_EQ(RootSpanNames(*trace),
            (std::vector<std::string>{"profile_lookup", "cache_lookup",
                                      "preference_selection", "integration",
                                      "execution"}));
  for (const obs::TraceSpan& span : trace->spans()) {
    EXPECT_GE(span.duration_millis, 0.0) << span.name;
    EXPECT_GE(span.start_millis, 0.0) << span.name;
    EXPECT_LE(span.start_millis + span.duration_millis,
              trace->total_millis() + 1e-6)
        << span.name;
  }

  const obs::TraceSpan* profile = trace->FindSpan("profile_lookup");
  ASSERT_NE(profile, nullptr);
  EXPECT_EQ(profile->counter("found"), 1u);

  const obs::TraceSpan* cache = trace->FindSpan("cache_lookup");
  ASSERT_NE(cache, nullptr);
  EXPECT_EQ(cache->counter("hit"), 0u);

  // The selection span's counters are exactly the run's SelectionStats.
  const obs::TraceSpan* selection = trace->FindSpan("preference_selection");
  ASSERT_NE(selection, nullptr);
  const SelectionStats& stats = response.outcome.selection_stats;
  EXPECT_EQ(selection->counter("selected"), 3u);
  EXPECT_EQ(selection->counter("paths_pushed"), stats.paths_pushed);
  EXPECT_EQ(selection->counter("paths_popped"), stats.paths_popped);
  EXPECT_EQ(selection->counter("pruned_cycle"), stats.pruned_cycle);
  EXPECT_EQ(selection->counter("pruned_conflict"), stats.pruned_conflict);
  EXPECT_EQ(selection->counter("pruned_criterion"), stats.pruned_criterion);
  EXPECT_EQ(selection->counter("max_queue_size"), stats.max_queue_size);
  EXPECT_EQ(selection->counter("degraded"), 0u);
  EXPECT_GT(stats.paths_pushed, 0u) << "paper example must explore paths";

  const obs::TraceSpan* integration = trace->FindSpan("integration");
  ASSERT_NE(integration, nullptr);
  EXPECT_EQ(integration->counter("selected"), 3u);

  // MQ execution produces per-part child spans under "execution".
  const obs::TraceSpan* execution = trace->FindSpan("execution");
  ASSERT_NE(execution, nullptr);
  const obs::TraceSpan* part = trace->FindSpan("part");
  ASSERT_NE(part, nullptr) << "MQ execution must trace its parts";
  EXPECT_GT(part->depth, execution->depth);

  // Second, identical request: served from the selection cache — the
  // trace shows the hit and no selection span.
  PersonalizationResponse second = service.PersonalizeOne(JulieRequest());
  QP_ASSERT_OK(second.status);
  EXPECT_TRUE(second.cache_hit);
  std::shared_ptr<const obs::RequestTrace> warm = sink.last();
  ASSERT_NE(warm, nullptr);
  ASSERT_NE(warm, trace);
  const obs::TraceSpan* warm_cache = warm->FindSpan("cache_lookup");
  ASSERT_NE(warm_cache, nullptr);
  EXPECT_EQ(warm_cache->counter("hit"), 1u);
  EXPECT_EQ(warm->FindSpan("preference_selection"), nullptr);

  service.set_trace_sink(nullptr);

  // DumpMetrics reflects both requests, in both export formats, each
  // verified through an independent parser (the acceptance round-trip).
  std::string json = service.DumpMetrics(obs::ExportFormat::kJson);
  JsonValue root;
  ASSERT_TRUE(JsonParser(json).Parse(&root)) << json;
  const JsonValue* counters = root.Find("counters");
  ASSERT_NE(counters, nullptr);
  auto counter_value = [&](const char* name) {
    const JsonValue* value = counters->Find(name);
    return value != nullptr ? value->number : -1.0;
  };
  EXPECT_EQ(counter_value("qp_service_requests_total"), 2.0);
  EXPECT_EQ(counter_value("qp_service_full_total"), 2.0);
  EXPECT_EQ(counter_value("qp_service_cache_hits_total"), 1.0);
  EXPECT_EQ(counter_value("qp_service_cache_misses_total"), 1.0);
  EXPECT_EQ(counter_value("qp_service_errors_total"), 0.0);
  const JsonValue* gauges = root.Find("gauges");
  ASSERT_NE(gauges, nullptr);
  const JsonValue* cache_entries = gauges->Find("qp_selection_cache_entries");
  ASSERT_NE(cache_entries, nullptr) << "DumpMetrics samples cache size";
  EXPECT_EQ(cache_entries->number, 1.0);
  const JsonValue* histograms = root.Find("histograms");
  ASSERT_NE(histograms, nullptr);
  const JsonValue* latency = histograms->Find("qp_service_request_seconds");
  ASSERT_NE(latency, nullptr);
  const JsonValue* count = latency->Find("count");
  ASSERT_NE(count, nullptr);
  EXPECT_EQ(count->number, 2.0);

  PrometheusMetrics prom;
  ASSERT_TRUE(
      ParsePrometheusText(service.DumpMetrics(obs::ExportFormat::kPrometheus),
                          &prom));
  EXPECT_EQ(prom.samples["qp_service_requests_total"], 2.0);
  EXPECT_EQ(prom.samples["qp_service_cache_hits_total"], 1.0);
  EXPECT_EQ(prom.samples["qp_service_request_seconds_count"], 2.0);
  EXPECT_EQ(prom.types["qp_service_requests_total"], "counter");
  EXPECT_EQ(prom.types["qp_service_request_seconds"], "histogram");
  // The executor published into the same registry.
  EXPECT_GT(prom.samples["qp_exec_disjuncts_total"], 0.0);
}

TEST_F(ServiceTraceTest, DeadlineExpiredBeforeStartDeliversMinimalTrace) {
  if (!obs::kTracingCompiledIn) GTEST_SKIP() << "tracing compiled out";
  PersonalizationService service(db_.get(), ServiceOptions{.num_workers = 1});
  QP_ASSERT_OK(service.profiles().Put("julie", JulieProfile()));
  obs::LastTraceSink sink;
  service.set_trace_sink(&sink);

  PersonalizationRequest request = JulieRequest();
  request.deadline_ms = 1e-6;  // Expired by the time admission checks it.
  PersonalizationResponse response = service.PersonalizeOne(request);
  EXPECT_FALSE(response.status.ok());
  EXPECT_EQ(response.disposition, RequestDisposition::kDeadlineExceeded);

  std::shared_ptr<const obs::RequestTrace> trace = sink.last();
  ASSERT_NE(trace, nullptr);
  EXPECT_EQ(trace->disposition(), "deadline_exceeded");
  EXPECT_EQ(trace->stopped_phase(), "admission");
  EXPECT_TRUE(trace->spans().empty()) << "nothing ran";

  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.requests, 1u);
  EXPECT_EQ(stats.deadline_exceeded, 1u);
  EXPECT_EQ(stats.full, 0u);
  service.set_trace_sink(nullptr);
}

TEST_F(ServiceTraceTest, ErrorTraceRecordsStoppedPhase) {
  if (!obs::kTracingCompiledIn) GTEST_SKIP() << "tracing compiled out";
  PersonalizationService service(db_.get(), ServiceOptions{.num_workers = 1});
  obs::LastTraceSink sink;
  service.set_trace_sink(&sink);

  // No profile stored: the pipeline dies in the profile lookup.
  PersonalizationResponse response = service.PersonalizeOne(JulieRequest());
  EXPECT_FALSE(response.status.ok());

  std::shared_ptr<const obs::RequestTrace> trace = sink.last();
  ASSERT_NE(trace, nullptr);
  EXPECT_EQ(trace->disposition(), "error");
  EXPECT_EQ(trace->stopped_phase(), "profile_lookup");
  const obs::TraceSpan* profile = trace->FindSpan("profile_lookup");
  ASSERT_NE(profile, nullptr);
  EXPECT_EQ(profile->counter("found"), 0u);
  EXPECT_EQ(service.stats().errors, 1u);
  service.set_trace_sink(nullptr);
}

TEST_F(ServiceTraceTest, OverloadedBatchTracesReconcileWithStats) {
  if (!obs::kTracingCompiledIn) GTEST_SKIP() << "tracing compiled out";
  // One worker, a one-deep queue bound with the degradation ladder on:
  // a 32-request batch must shed some requests at admission and step K
  // down for queued ones. Counts are scheduling-dependent; what must
  // hold exactly is trace/stats reconciliation and the accounting
  // identity.
  ServiceOptions options;
  options.num_workers = 1;
  options.max_queue_depth = 2;
  options.degrade_queue_depth = 1;
  options.cache_capacity = 0;  // Every request pays full selection cost.
  PersonalizationService service(db_.get(), options);
  QP_ASSERT_OK(service.profiles().Put("julie", JulieProfile()));
  auto sink = std::make_unique<VectorTraceSink>();
  service.set_trace_sink(sink.get());

  constexpr size_t kBatch = 32;
  constexpr int kMaxRounds = 20;
  uint64_t submitted = 0;
  // Overload outcomes are scheduling-dependent on a loaded machine, so
  // batches repeat until both a shed and a degraded request have been
  // observed (virtually always the first round).
  for (int round = 0; round < kMaxRounds; ++round) {
    std::vector<PersonalizationRequest> requests(kBatch, JulieRequest());
    std::vector<PersonalizationResponse> responses =
        service.PersonalizeBatchAndWait(std::move(requests));
    ASSERT_EQ(responses.size(), kBatch);
    submitted += kBatch;
    ServiceStats stats = service.stats();
    if (stats.shed > 0 && stats.degraded > 0) break;
  }

  service.set_trace_sink(nullptr);
  std::vector<obs::RequestTrace> traces = sink->Take();
  ServiceStats stats = service.stats();

  // Accounting identity at quiescence, and one trace per request.
  EXPECT_EQ(stats.requests, submitted);
  EXPECT_EQ(stats.full + stats.degraded + stats.shed +
                stats.deadline_exceeded + stats.errors,
            stats.requests);
  EXPECT_EQ(traces.size(), submitted);

  uint64_t full = 0, degraded = 0, shed = 0;
  for (const obs::RequestTrace& trace : traces) {
    if (trace.disposition() == "full") {
      ++full;
      EXPECT_NE(trace.FindSpan("execution"), nullptr);
    } else if (trace.disposition() == "degraded") {
      ++degraded;
      // K stepped down under queue pressure before the pipeline ran.
      EXPECT_EQ(trace.stopped_phase(), "admission");
      EXPECT_NE(trace.FindSpan("preference_selection"), nullptr);
    } else if (trace.disposition() == "shed") {
      ++shed;
      EXPECT_EQ(trace.stopped_phase(), "admission");
      EXPECT_TRUE(trace.spans().empty());
    } else {
      ADD_FAILURE() << "unexpected disposition " << trace.disposition();
    }
  }
  EXPECT_EQ(full, stats.full);
  EXPECT_EQ(degraded, stats.degraded);
  EXPECT_EQ(shed, stats.shed);
  EXPECT_GT(shed, 0u);
  EXPECT_GT(degraded, 0u);
}

TEST_F(ServiceTraceTest, ExternalRegistryIsShared) {
  // Two services publishing into one externally owned registry: the
  // fleet-aggregation mode. Counters accumulate across both.
  obs::MetricsRegistry registry;
  ServiceOptions options;
  options.num_workers = 1;
  options.metrics = &registry;
  PersonalizationService first(db_.get(), options);
  PersonalizationService second(db_.get(), options);
  QP_ASSERT_OK(first.profiles().Put("julie", JulieProfile()));
  QP_ASSERT_OK(second.profiles().Put("julie", JulieProfile()));

  QP_ASSERT_OK(first.PersonalizeOne(JulieRequest()).status);
  QP_ASSERT_OK(second.PersonalizeOne(JulieRequest()).status);

  EXPECT_EQ(first.metrics(), &registry);
  EXPECT_EQ(second.metrics(), &registry);
  EXPECT_EQ(registry.counter("qp_service_requests_total")->Value(), 2u);
  // Each service's stats() view still reads the shared registry.
  EXPECT_EQ(first.stats().requests, 2u);
}

}  // namespace
}  // namespace qp
