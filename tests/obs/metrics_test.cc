#include "qp/obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "obs_test_parsers.h"

namespace qp {
namespace obs {
namespace {

using ::qp::testing_util::JsonParser;
using ::qp::testing_util::JsonValue;
using ::qp::testing_util::ParsePrometheusText;
using ::qp::testing_util::PrometheusMetrics;

TEST(CounterTest, AddAndValue) {
  Counter counter;
  EXPECT_EQ(counter.Value(), 0u);
  counter.Add();
  counter.Add(41);
  EXPECT_EQ(counter.Value(), 42u);
}

TEST(CounterTest, ConcurrentAddsSumExactly) {
  Counter counter;
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (uint64_t i = 0; i < kPerThread; ++i) counter.Add();
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter.Value(), kThreads * kPerThread);
}

TEST(GaugeTest, SetSetMaxAdd) {
  Gauge gauge;
  EXPECT_EQ(gauge.Value(), 0.0);
  gauge.Set(3.5);
  EXPECT_EQ(gauge.Value(), 3.5);
  gauge.SetMax(2.0);  // Below current: no-op.
  EXPECT_EQ(gauge.Value(), 3.5);
  gauge.SetMax(7.0);
  EXPECT_EQ(gauge.Value(), 7.0);
  gauge.Add(-2.5);
  EXPECT_EQ(gauge.Value(), 4.5);
}

TEST(GaugeTest, ConcurrentSetMaxKeepsMaximum) {
  Gauge gauge;
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&gauge, t] {
      for (int i = 0; i < 5000; ++i) {
        gauge.SetMax(static_cast<double>(t * 10000 + i));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(gauge.Value(), (kThreads - 1) * 10000 + 4999);
}

TEST(HistogramTest, BucketBoundsArePowersOfTwo) {
  // Bucket i covers (2^(min+i-1), 2^(min+i)]: the bound itself belongs
  // to its own bucket, anything just above spills into the next.
  for (int i = 1; i + 1 < Histogram::kNumBuckets; ++i) {
    double bound = Histogram::BucketBound(i);
    EXPECT_EQ(Histogram::BucketFor(bound), i) << "bound " << bound;
    EXPECT_EQ(Histogram::BucketFor(bound * 1.001), i + 1) << "bound " << bound;
  }
  // Out-of-range values clamp to the edge buckets instead of losing data.
  EXPECT_EQ(Histogram::BucketFor(0.0), 0);
  EXPECT_EQ(Histogram::BucketFor(1e300), Histogram::kNumBuckets - 1);
}

TEST(HistogramTest, SnapshotCountSumAndBuckets) {
  Histogram histogram;
  histogram.Record(0.001);
  histogram.Record(0.001);
  histogram.Record(0.1);
  histogram.RecordMillis(100.0);  // Same as Record(0.1).
  HistogramSnapshot snapshot = histogram.Snapshot();
  EXPECT_EQ(snapshot.count, 4u);
  EXPECT_NEAR(snapshot.sum, 0.202, 1e-12);
  uint64_t bucket_total = 0;
  double last_bound = 0.0;
  for (const auto& [bound, count] : snapshot.buckets) {
    EXPECT_GT(bound, last_bound) << "bounds must be increasing";
    EXPECT_GT(count, 0u) << "empty buckets must be omitted";
    last_bound = bound;
    bucket_total += count;
  }
  EXPECT_EQ(bucket_total, snapshot.count);
}

TEST(HistogramTest, PercentilesBracketObservations) {
  Histogram histogram;
  for (int i = 0; i < 90; ++i) histogram.Record(0.010);
  for (int i = 0; i < 10; ++i) histogram.Record(1.0);
  HistogramSnapshot snapshot = histogram.Snapshot();
  // p50 lands in the 10ms bucket; log-scale interpolation error is
  // bounded by one bucket width (2x).
  EXPECT_GE(snapshot.p50(), 0.010 / 2);
  EXPECT_LE(snapshot.p50(), 0.010 * 2);
  // p99 lands in the 1s bucket.
  EXPECT_GE(snapshot.p99(), 1.0 / 2);
  EXPECT_LE(snapshot.p99(), 1.0 * 2);
  // Percentiles are monotone in p.
  EXPECT_LE(snapshot.p50(), snapshot.p95());
  EXPECT_LE(snapshot.p95(), snapshot.p99());
  // Empty histogram: all percentiles are 0.
  EXPECT_EQ(HistogramSnapshot{}.Percentile(99), 0.0);
}

TEST(MetricsRegistryTest, InstrumentPointersAreStable) {
  MetricsRegistry registry;
  Counter* counter = registry.counter("qp_test_a_total");
  Gauge* gauge = registry.gauge("qp_test_b");
  Histogram* histogram = registry.histogram("qp_test_c_seconds");
  // Re-registering more instruments must not invalidate earlier pointers.
  for (int i = 0; i < 100; ++i) {
    registry.counter("qp_test_extra_" + std::to_string(i) + "_total");
  }
  EXPECT_EQ(registry.counter("qp_test_a_total"), counter);
  EXPECT_EQ(registry.gauge("qp_test_b"), gauge);
  EXPECT_EQ(registry.histogram("qp_test_c_seconds"), histogram);
  counter->Add(5);
  EXPECT_EQ(registry.counter("qp_test_a_total")->Value(), 5u);
}

TEST(MetricsRegistryTest, ConcurrentRegistrationAndUse) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      for (int i = 0; i < 1000; ++i) {
        registry.counter("qp_shared_total")->Add();
        registry.histogram("qp_shared_seconds")->Record(0.001);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(registry.counter("qp_shared_total")->Value(), 8000u);
  EXPECT_EQ(registry.histogram("qp_shared_seconds")->Snapshot().count, 8000u);
}

MetricsRegistry* PopulatedRegistry() {
  auto* registry = new MetricsRegistry;
  registry->counter("qp_test_requests_total")->Add(42);
  registry->counter("qp_test_errors_total");  // Registered but zero.
  registry->gauge("qp_test_queue_depth")->Set(3.5);
  Histogram* histogram = registry->histogram("qp_test_latency_seconds");
  histogram->Record(0.001);
  histogram->Record(0.001);
  histogram->Record(0.1);
  return registry;
}

// Acceptance criterion: the JSON export round-trips through an
// independent parser and reproduces every registered value.
TEST(MetricsExportTest, JsonRoundTrip) {
  std::unique_ptr<MetricsRegistry> registry(PopulatedRegistry());
  std::string json = registry->Export(ExportFormat::kJson);
  EXPECT_EQ(json.find('\n'), std::string::npos) << "must be single-line";

  JsonValue root;
  ASSERT_TRUE(JsonParser(json).Parse(&root)) << json;
  ASSERT_EQ(root.kind, JsonValue::Kind::kObject);

  const JsonValue* counters = root.Find("counters");
  ASSERT_NE(counters, nullptr);
  const JsonValue* requests = counters->Find("qp_test_requests_total");
  ASSERT_NE(requests, nullptr);
  EXPECT_EQ(requests->number, 42.0);
  const JsonValue* errors = counters->Find("qp_test_errors_total");
  ASSERT_NE(errors, nullptr) << "zero-valued counters must still export";
  EXPECT_EQ(errors->number, 0.0);

  const JsonValue* gauges = root.Find("gauges");
  ASSERT_NE(gauges, nullptr);
  const JsonValue* depth = gauges->Find("qp_test_queue_depth");
  ASSERT_NE(depth, nullptr);
  EXPECT_EQ(depth->number, 3.5);

  const JsonValue* histograms = root.Find("histograms");
  ASSERT_NE(histograms, nullptr);
  const JsonValue* latency = histograms->Find("qp_test_latency_seconds");
  ASSERT_NE(latency, nullptr);
  const JsonValue* count = latency->Find("count");
  ASSERT_NE(count, nullptr);
  EXPECT_EQ(count->number, 3.0);
  const JsonValue* sum = latency->Find("sum");
  ASSERT_NE(sum, nullptr);
  EXPECT_NEAR(sum->number, 0.102, 1e-9);
  const JsonValue* p50 = latency->Find("p50");
  ASSERT_NE(p50, nullptr);
  EXPECT_GT(p50->number, 0.0);
  const JsonValue* buckets = latency->Find("buckets");
  ASSERT_NE(buckets, nullptr);
  ASSERT_EQ(buckets->kind, JsonValue::Kind::kArray);
  double bucket_total = 0;
  for (const JsonValue& bucket : buckets->array) {
    ASSERT_EQ(bucket.array.size(), 2u);  // [le, count]
    bucket_total += bucket.array[1].number;
  }
  EXPECT_EQ(bucket_total, 3.0);
}

// Acceptance criterion: the Prometheus text export round-trips through
// an independent line parser — `# TYPE` declarations for every
// instrument, exact counter/gauge values, and cumulative histogram
// buckets consistent with `_count` and `_sum`.
TEST(MetricsExportTest, PrometheusRoundTrip) {
  std::unique_ptr<MetricsRegistry> registry(PopulatedRegistry());
  std::string text = registry->Export(ExportFormat::kPrometheus);

  PrometheusMetrics parsed;
  ASSERT_TRUE(ParsePrometheusText(text, &parsed)) << text;

  EXPECT_EQ(parsed.types["qp_test_requests_total"], "counter");
  EXPECT_EQ(parsed.types["qp_test_queue_depth"], "gauge");
  EXPECT_EQ(parsed.types["qp_test_latency_seconds"], "histogram");

  EXPECT_EQ(parsed.samples["qp_test_requests_total"], 42.0);
  EXPECT_EQ(parsed.samples["qp_test_errors_total"], 0.0);
  EXPECT_EQ(parsed.samples["qp_test_queue_depth"], 3.5);
  EXPECT_EQ(parsed.samples["qp_test_latency_seconds_count"], 3.0);
  EXPECT_NEAR(parsed.samples["qp_test_latency_seconds_sum"], 0.102, 1e-9);

  const auto& buckets = parsed.buckets["qp_test_latency_seconds_bucket"];
  ASSERT_FALSE(buckets.empty());
  // Cumulative bucket counts are non-decreasing in le order and the
  // +Inf bucket equals _count.
  std::vector<std::pair<double, double>> ordered;
  double inf_count = -1;
  for (const auto& [le, cumulative] : buckets) {
    if (le == "+Inf") {
      inf_count = cumulative;
    } else {
      ordered.emplace_back(std::strtod(le.c_str(), nullptr), cumulative);
    }
  }
  EXPECT_EQ(inf_count, 3.0);
  std::sort(ordered.begin(), ordered.end());
  double last = 0;
  for (const auto& [le, cumulative] : ordered) {
    EXPECT_GE(cumulative, last) << "cumulative counts must not decrease";
    last = cumulative;
  }
  EXPECT_EQ(last, 3.0) << "last finite bucket holds all observations";
}

TEST(LabeledMetricsTest, DistinctLabelValuesAreDistinctSeries) {
  MetricsRegistry registry;
  registry.counter("qp_requests_total", {{"shard", "0"}})->Add(3);
  registry.counter("qp_requests_total", {{"shard", "1"}})->Add(5);
  // Same series again: the pointer is stable and the count accumulates.
  registry.counter("qp_requests_total", {{"shard", "0"}})->Add(2);

  MetricsSnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.labeled_counters.size(), 2u);
  EXPECT_EQ(snapshot.labeled_counters[0].value, 5u);  // shard=0.
  EXPECT_EQ(snapshot.labeled_counters[1].value, 5u);  // shard=1.
}

TEST(LabeledMetricsTest, UnknownKeysDropAndEmptyFallsBackToUnlabeled) {
  MetricsRegistry registry;
  // "user_id" is outside the closed key set: minting a series per user
  // would be an unbounded-cardinality leak, so the key is dropped and
  // this lands on the unlabeled instrument.
  registry.counter("qp_requests_total", {{"user_id", "julie"}})->Add(1);
  EXPECT_EQ(registry.counter("qp_requests_total")->Value(), 1u);
  EXPECT_TRUE(registry.Snapshot().labeled_counters.empty());

  // A mixed set keeps only the allowed key.
  registry.counter("qp_requests_total",
                   {{"user_id", "julie"}, {"shard", "2"}})
      ->Add(1);
  MetricsSnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.labeled_counters.size(), 1u);
  ASSERT_EQ(snapshot.labeled_counters[0].labels.size(), 1u);
  EXPECT_EQ(snapshot.labeled_counters[0].labels[0].first, "shard");
}

TEST(LabeledMetricsTest, PrometheusLabeledRoundTripWithEscaping) {
  MetricsRegistry registry;
  // A label value exercising every escape the exposition format
  // defines: backslash, double quote, newline.
  const std::string nasty = "a\\b\"c\nd";
  registry.counter("qp_disp_total", {{"disposition", nasty}})->Add(7);
  registry.gauge("qp_residency", {{"tier", "hot"}, {"shard", "3"}})
      ->Set(12.5);
  registry.SetHelp("qp_disp_total", "Dispositions\nby outcome \\ label");
  std::string text = registry.Export(ExportFormat::kPrometheus);

  testing_util::PrometheusMetrics parsed;
  ASSERT_TRUE(ParsePrometheusText(text, &parsed)) << text;
  // The independent parser unescapes back to the raw values.
  bool found_counter = false, found_gauge = false;
  for (const auto& series : parsed.series) {
    if (series.name == "qp_disp_total" && !series.labels.empty()) {
      ASSERT_EQ(series.labels.size(), 1u);
      EXPECT_EQ(series.labels[0].first, "disposition");
      EXPECT_EQ(series.labels[0].second, nasty);
      EXPECT_EQ(series.value, 7.0);
      found_counter = true;
    }
    if (series.name == "qp_residency" && series.labels.size() == 2) {
      // Canonical order: sorted by key (shard before tier).
      EXPECT_EQ(series.labels[0].first, "shard");
      EXPECT_EQ(series.labels[0].second, "3");
      EXPECT_EQ(series.labels[1].first, "tier");
      EXPECT_EQ(series.labels[1].second, "hot");
      EXPECT_EQ(series.value, 12.5);
      found_gauge = true;
    }
  }
  EXPECT_TRUE(found_counter) << text;
  EXPECT_TRUE(found_gauge) << text;
  EXPECT_EQ(parsed.helps["qp_disp_total"],
            "Dispositions\nby outcome \\ label");
}

TEST(LabeledMetricsTest, JsonLabeledSectionRoundTrip) {
  MetricsRegistry registry;
  registry.counter("qp_disp_total", {{"disposition", "shed"}})->Add(4);
  registry.histogram("qp_lat_seconds", {{"shard", "1"}})->Record(0.05);
  std::string json = registry.Export(ExportFormat::kJson);

  JsonValue root;
  ASSERT_TRUE(JsonParser(json).Parse(&root)) << json;
  const JsonValue* labeled = root.Find("labeled");
  ASSERT_NE(labeled, nullptr) << json;
  const JsonValue* counters = labeled->Find("counters");
  ASSERT_NE(counters, nullptr);
  const JsonValue* series_list = counters->Find("qp_disp_total");
  ASSERT_NE(series_list, nullptr);
  ASSERT_EQ(series_list->array.size(), 1u);
  const JsonValue* labels = series_list->array[0].Find("labels");
  ASSERT_NE(labels, nullptr);
  const JsonValue* disposition = labels->Find("disposition");
  ASSERT_NE(disposition, nullptr);
  EXPECT_EQ(disposition->str, "shed");
  const JsonValue* value = series_list->array[0].Find("value");
  ASSERT_NE(value, nullptr);
  EXPECT_EQ(value->number, 4.0);

  const JsonValue* histograms = labeled->Find("histograms");
  ASSERT_NE(histograms, nullptr);
  ASSERT_NE(histograms->Find("qp_lat_seconds"), nullptr);
}

TEST(LabeledMetricsTest, NoLabeledSectionWhenNoneRegistered) {
  MetricsRegistry registry;
  registry.counter("qp_requests_total")->Add(1);
  std::string json = registry.Export(ExportFormat::kJson);
  EXPECT_EQ(json.find("\"labeled\""), std::string::npos) << json;
}

TEST(LabeledMetricsTest, ConcurrentLabeledWritersRoundTripExactly) {
  // 4 threads hammer per-shard and per-disposition series while others
  // register fresh label values; afterwards the Prometheus export must
  // round-trip to exactly the recorded totals. The sanitized CI stage
  // runs this under TSan.
  MetricsRegistry registry;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 20'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, t] {
      std::string shard = std::to_string(t % 2);
      Counter* mine =
          registry.counter("qp_conc_total", {{"shard", shard}});
      for (int i = 0; i < kPerThread; ++i) {
        mine->Add(1);
        if (i % 1000 == 0) {
          // Re-registration of an existing series must return the same
          // instrument even while other threads register new ones.
          registry
              .counter("qp_churn_total",
                       {{"partition", std::to_string(i / 1000)}})
              ->Add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  testing_util::PrometheusMetrics parsed;
  ASSERT_TRUE(
      ParsePrometheusText(registry.Export(ExportFormat::kPrometheus),
                          &parsed));
  double total = 0;
  for (const auto& series : parsed.series) {
    if (series.name == "qp_conc_total") total += series.value;
  }
  EXPECT_EQ(total, static_cast<double>(kThreads) * kPerThread);
}

}  // namespace
}  // namespace obs
}  // namespace qp
