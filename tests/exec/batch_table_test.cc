// BatchTable / BatchColumn / BatchHashTable edge cases: empty batches,
// single-row batches, all-duplicate keys, null cells, and column values
// at the int64 type boundaries. These are the primitives the vectorized
// executor is built on, so their append/gather/filter/drop semantics are
// pinned here independently of any query.

#include <cstdint>
#include <limits>

#include "gtest/gtest.h"
#include "qp/exec/batch_table.h"
#include "qp/relational/schema.h"
#include "qp/relational/table.h"

namespace qp {
namespace {

TableSchema MixedSchema() {
  return TableSchema("T", {{"i", DataType::kInt64},
                           {"d", DataType::kDouble},
                           {"s", DataType::kString}});
}

TEST(BatchColumnTest, EmptyColumnBasics) {
  BatchColumn col(BatchColumn::Type::kInt64);
  EXPECT_EQ(col.size(), 0u);
  EXPECT_TRUE(col.empty());
  BatchColumn gathered = col.Gather({});
  EXPECT_EQ(gathered.size(), 0u);
  col.Filter({});
  EXPECT_EQ(col.size(), 0u);
}

TEST(BatchColumnTest, Int64TypeBoundaries) {
  BatchColumn col(BatchColumn::Type::kInt64);
  const int64_t lo = std::numeric_limits<int64_t>::min();
  const int64_t hi = std::numeric_limits<int64_t>::max();
  col.AppendValue(Value::Int(lo));
  col.AppendValue(Value::Int(hi));
  col.AppendValue(Value::Int(0));
  col.AppendValue(Value::Int(-1));
  ASSERT_EQ(col.size(), 4u);
  EXPECT_EQ(col.int_at(0), lo);
  EXPECT_EQ(col.int_at(1), hi);
  EXPECT_EQ(col.ValueAt(0), Value::Int(lo));
  EXPECT_EQ(col.ValueAt(1), Value::Int(hi));
  // Boundary values hash distinctly and compare exactly.
  EXPECT_NE(col.HashAt(0), col.HashAt(1));
  EXPECT_TRUE(col.CellEquals(0, col, 0));
  EXPECT_FALSE(col.CellEquals(0, col, 1));
  EXPECT_FALSE(col.CellEquals(2, col, 3));
}

TEST(BatchColumnTest, DoubleZeroesHashAlike) {
  BatchColumn col(BatchColumn::Type::kDouble);
  col.AppendValue(Value::Real(0.0));
  col.AppendValue(Value::Real(-0.0));
  // -0.0 == 0.0, so the hash must collapse the two bit patterns.
  EXPECT_TRUE(col.CellEquals(0, col, 1));
  EXPECT_EQ(col.HashAt(0), col.HashAt(1));
}

TEST(BatchColumnTest, NullCellsTrackedAndRoundTripped) {
  BatchColumn col(BatchColumn::Type::kString);
  col.AppendValue(Value::Str("a"));
  col.AppendValue(Value::Null());
  col.AppendValue(Value::Str(""));
  ASSERT_EQ(col.size(), 3u);
  EXPECT_FALSE(col.is_null(0));
  EXPECT_TRUE(col.is_null(1));
  EXPECT_FALSE(col.is_null(2));
  EXPECT_EQ(col.ValueAt(1), Value::Null());
  EXPECT_EQ(col.ValueAt(2), Value::Str(""));
  // NULL equals NULL (grouping semantics), never a real cell — not even
  // the empty string the null slot physically stores.
  EXPECT_TRUE(col.CellEquals(1, col, 1));
  EXPECT_FALSE(col.CellEquals(1, col, 2));
  EXPECT_NE(col.HashAt(1), col.HashAt(2));
  // Null mask survives gather and filter.
  BatchColumn gathered = col.Gather({2, 1, 1, 0});
  ASSERT_EQ(gathered.size(), 4u);
  EXPECT_TRUE(gathered.is_null(1));
  EXPECT_TRUE(gathered.is_null(2));
  EXPECT_FALSE(gathered.is_null(3));
  gathered.Filter({0, 1, 0, 1});
  ASSERT_EQ(gathered.size(), 2u);
  EXPECT_TRUE(gathered.is_null(0));
  EXPECT_EQ(gathered.ValueAt(1), Value::Str("a"));
  // AppendFrom propagates nullness.
  BatchColumn copy(BatchColumn::Type::kString);
  copy.AppendFrom(col, 1);
  copy.AppendFrom(col, 0);
  EXPECT_TRUE(copy.is_null(0));
  EXPECT_EQ(copy.ValueAt(1), Value::Str("a"));
}

TEST(BatchColumnTest, FromTableLateMaterialization) {
  Table table(MixedSchema());
  ASSERT_TRUE(
      table.Insert({Value::Int(1), Value::Real(1.5), Value::Str("x")}).ok());
  ASSERT_TRUE(
      table.Insert({Value::Int(2), Value::Null(), Value::Str("y")}).ok());
  ASSERT_TRUE(
      table.Insert({Value::Int(3), Value::Real(-2.5), Value::Null()}).ok());

  // Gather out of order with a repeat — exactly what a binding column
  // produces after joins.
  std::vector<RowId> ids = {2, 0, 0, 1};
  BatchColumn ints = BatchColumn::FromTable(table, 0, ids);
  BatchColumn doubles = BatchColumn::FromTable(table, 1, ids);
  BatchColumn strings = BatchColumn::FromTable(table, 2, ids);
  ASSERT_EQ(ints.size(), 4u);
  EXPECT_EQ(ints.int_at(0), 3);
  EXPECT_EQ(ints.int_at(1), 1);
  EXPECT_EQ(ints.int_at(2), 1);
  EXPECT_EQ(ints.int_at(3), 2);
  EXPECT_EQ(doubles.ValueAt(0), Value::Real(-2.5));
  EXPECT_TRUE(doubles.is_null(3));
  EXPECT_TRUE(strings.is_null(0));
  EXPECT_EQ(strings.ValueAt(1), Value::Str("x"));
  // Empty gather: legal, yields an empty column.
  EXPECT_EQ(BatchColumn::FromTable(table, 0, {}).size(), 0u);
}

TEST(BatchTableTest, EmptyTableAndSingleRow) {
  BatchTable empty(3);
  EXPECT_EQ(empty.num_rows(), 0u);
  EXPECT_EQ(empty.num_slots(), 3u);
  EXPECT_EQ(empty.live_columns(), 0u);
  EXPECT_FALSE(empty.has_column(0));

  BatchTable one(2);
  one.SetColumn(0, BatchColumn::RowIds({7}));
  EXPECT_EQ(one.num_rows(), 1u);  // Adopted from the first live column.
  one.SetColumn(1, BatchColumn::RowIds({9}));
  EXPECT_EQ(one.live_columns(), 2u);
  EXPECT_EQ(one.column(1).row_id_at(0), 9u);
  BatchTable gathered = one.GatherRows({0, 0, 0});
  EXPECT_EQ(gathered.num_rows(), 3u);
  EXPECT_EQ(gathered.column(0).row_id_at(2), 7u);
}

TEST(BatchTableTest, DropColumnKeepsRowCountAndSlotIndices) {
  BatchTable batch(3);
  batch.SetColumn(0, BatchColumn::RowIds({1, 2, 3}));
  batch.SetColumn(2, BatchColumn::RowIds({4, 5, 6}));
  ASSERT_EQ(batch.num_rows(), 3u);
  batch.DropColumn(0);
  EXPECT_FALSE(batch.has_column(0));
  EXPECT_TRUE(batch.has_column(2));
  EXPECT_EQ(batch.num_rows(), 3u);  // Multiplicity survives the drop.
  EXPECT_EQ(batch.live_columns(), 1u);
  // Gather and filter only touch live columns.
  BatchTable g = batch.GatherRows({2, 0});
  EXPECT_EQ(g.num_rows(), 2u);
  EXPECT_FALSE(g.has_column(0));
  EXPECT_EQ(g.column(2).row_id_at(0), 6u);
  batch.FilterRows({1, 0, 1});
  EXPECT_EQ(batch.num_rows(), 2u);
  EXPECT_EQ(batch.column(2).row_id_at(1), 6u);
  // Dropping every column leaves a pure multiplicity, still settable.
  batch.DropColumn(2);
  EXPECT_EQ(batch.live_columns(), 0u);
  EXPECT_EQ(batch.num_rows(), 2u);
  batch.SetNumRowsColumnless(5);
  EXPECT_EQ(batch.num_rows(), 5u);
}

TEST(BatchTableTest, AppendRowFromAccumulates) {
  BatchTable src(2);
  src.SetColumn(0, BatchColumn::RowIds({1, 2}));
  src.SetColumn(1, BatchColumn::RowIds({3, 4}));
  BatchTable acc(2);
  acc.SetColumn(0, BatchColumn::RowIds({}));
  acc.SetColumn(1, BatchColumn::RowIds({}));
  acc.AppendRowFrom(src, 1);
  acc.AppendRowFrom(src, 0);
  ASSERT_EQ(acc.num_rows(), 2u);
  EXPECT_EQ(acc.column(0).row_id_at(0), 2u);
  EXPECT_EQ(acc.column(1).row_id_at(0), 4u);
  EXPECT_EQ(acc.column(0).row_id_at(1), 1u);
  EXPECT_TRUE(acc.RowsEqual(0, src, 1, {0, 1}, {0, 1}));
  EXPECT_FALSE(acc.RowsEqual(0, src, 0, {0, 1}, {0, 1}));
  EXPECT_EQ(acc.RowHash(0, {0, 1}), src.RowHash(1, {0, 1}));
}

TEST(BatchHashTableTest, EmptyBuildSideMatchesNothing) {
  BatchTable build(1);
  build.SetColumn(0, BatchColumn::RowIds({}));
  BatchHashTable ht(&build, {0});
  BatchTable probe(1);
  probe.SetColumn(0, BatchColumn::RowIds({42}));
  std::vector<uint32_t> out;
  ht.Probe(probe, 0, {0}, &out);
  EXPECT_TRUE(out.empty());
}

TEST(BatchHashTableTest, AllDuplicateKeysReturnEveryMatch) {
  // Every build row has the same key: a probe must surface all of them,
  // in build order (join fan-out correctness).
  BatchTable build(2);
  build.SetColumn(0, BatchColumn::RowIds({5, 5, 5, 5}));
  build.SetColumn(1, BatchColumn::RowIds({0, 1, 2, 3}));
  BatchHashTable ht(&build, {0});
  BatchTable probe(1);
  probe.SetColumn(0, BatchColumn::RowIds({5, 6}));
  std::vector<uint32_t> out;
  ht.Probe(probe, 0, {0}, &out);
  EXPECT_EQ(out, (std::vector<uint32_t>{0, 1, 2, 3}));
  out.clear();
  ht.Probe(probe, 1, {0}, &out);
  EXPECT_TRUE(out.empty());
}

TEST(BatchHashTableTest, CompositeKeysVerifyCellEquality) {
  BatchTable build(2);
  build.SetColumn(0, BatchColumn::RowIds({1, 1, 2}));
  build.SetColumn(1, BatchColumn::RowIds({10, 20, 10}));
  BatchHashTable ht(&build, {0, 1});
  BatchTable probe(2);
  probe.SetColumn(0, BatchColumn::RowIds({1, 2, 2}));
  probe.SetColumn(1, BatchColumn::RowIds({20, 10, 20}));
  std::vector<uint32_t> out;
  ht.Probe(probe, 0, {0, 1}, &out);
  EXPECT_EQ(out, (std::vector<uint32_t>{1}));
  out.clear();
  ht.Probe(probe, 1, {0, 1}, &out);
  EXPECT_EQ(out, (std::vector<uint32_t>{2}));
  out.clear();
  ht.Probe(probe, 2, {0, 1}, &out);
  EXPECT_TRUE(out.empty());
}

TEST(BatchHashTableTest, EmptyKeyMatchesEverything) {
  // A zero-arity key (the merge path with no anchor variables) degrades
  // to a cross product: every build row matches every probe row.
  BatchTable build(1);
  build.SetColumn(0, BatchColumn::RowIds({0, 1, 2}));
  BatchHashTable ht(&build, {});
  BatchTable probe(1);
  probe.SetColumn(0, BatchColumn::RowIds({9}));
  std::vector<uint32_t> out;
  ht.Probe(probe, 0, {}, &out);
  EXPECT_EQ(out.size(), 3u);
}

}  // namespace
}  // namespace qp
