// Cooperative cancellation in the executor's row loops: a tripped token
// stops production and yields a partial ResultSet flagged truncated().
// Every row of a truncated SelectQuery result must be a genuine answer
// (a sub-multiset of the full result); compound results may additionally
// under-apply dislike vetoes, so only the flag is asserted there.

#include <memory>
#include <unordered_map>

#include "common/test_util.h"
#include "gtest/gtest.h"
#include "qp/core/personalizer.h"
#include "qp/data/movie_db.h"
#include "qp/data/paper_example.h"
#include "qp/exec/executor.h"
#include "qp/query/sql_parser.h"
#include "qp/util/deadline.h"

namespace qp {
namespace {

/// Multiset containment: every row of `part` appears in `whole` at least
/// as many times.
bool SubMultiset(const std::vector<Row>& part, const std::vector<Row>& whole) {
  std::unordered_map<Row, int, RowHash, RowEq> counts;
  for (const Row& row : whole) ++counts[row];
  for (const Row& row : part) {
    if (--counts[row] < 0) return false;
  }
  return true;
}

class ExecutorCancelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto db = BuildPaperDatabase();
    ASSERT_TRUE(db.ok()) << db.status();
    db_ = std::make_unique<Database>(std::move(db).value());
  }

  SelectQuery Parse(const std::string& sql) {
    auto query = ParseSelectQuery(sql);
    EXPECT_TRUE(query.ok()) << query.status();
    return std::move(query).value();
  }

  std::unique_ptr<Database> db_;
};

TEST_F(ExecutorCancelTest, UntrippedTokenChangesNothing) {
  SelectQuery query = Parse(
      "select MV.title from MOVIE MV, GENRE GN where MV.mid=GN.mid");
  Executor plain(db_.get());
  auto baseline = plain.Execute(query);
  ASSERT_TRUE(baseline.ok());
  EXPECT_FALSE(baseline->truncated());

  CancelToken token(Deadline::AfterMillis(60000));
  Executor cancellable(db_.get());
  cancellable.set_cancel_token(&token);
  auto result = cancellable.Execute(query);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->truncated());
  EXPECT_EQ(result->DebugString(1000), baseline->DebugString(1000));
}

TEST_F(ExecutorCancelTest, PreCancelledSelectIsEmptyAndTruncated) {
  CancelToken token;
  token.Cancel();
  Executor executor(db_.get());
  executor.set_cancel_token(&token);
  auto result = executor.Execute(Parse("select MV.title from MOVIE MV"));
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->truncated());
  EXPECT_EQ(result->num_rows(), 0u);
}

TEST_F(ExecutorCancelTest, EveryCutIsASubMultisetOfTheFullAnswer) {
  // A disjunctive query (two DNF conjuncts) over a join, so cancellation
  // can land inside a conjunct, between conjuncts, or after both.
  SelectQuery query = Parse(
      "select MV.title from MOVIE MV, GENRE GN where MV.mid=GN.mid and "
      "(GN.genre='comedy' or MV.year=2003)");
  Executor plain(db_.get());
  auto full = plain.Execute(query);
  ASSERT_TRUE(full.ok());
  ASSERT_GT(full->num_rows(), 0u);

  bool saw_truncated = false;
  bool saw_full = false;
  for (int64_t budget = 0; budget < 400 && !saw_full; ++budget) {
    CancelToken token;
    token.set_poll_budget(budget);
    Executor executor(db_.get());
    executor.set_cancel_token(&token);
    auto cut = executor.Execute(query);
    ASSERT_TRUE(cut.ok()) << "budget " << budget;
    EXPECT_TRUE(SubMultiset(cut->rows(), full->rows()))
        << "budget " << budget << " produced a row the full run did not";
    if (cut->truncated()) {
      saw_truncated = true;
    } else {
      EXPECT_EQ(cut->num_rows(), full->num_rows()) << "budget " << budget;
      saw_full = true;
    }
  }
  EXPECT_TRUE(saw_truncated);
  EXPECT_TRUE(saw_full) << "no budget large enough to finish the run";
}

TEST_F(ExecutorCancelTest, CompoundQueryHonoursTheToken) {
  // Build the paper example's MQ compound via the personalizer, then
  // execute it under a sweep of poll budgets.
  Schema schema = MovieSchema();
  auto graph = PersonalizationGraph::Build(&schema, JulieProfile());
  ASSERT_TRUE(graph.ok());
  Personalizer personalizer(&*graph);
  PersonalizationOptions options;
  options.criterion = InterestCriterion::TopCount(3);
  auto outcome = personalizer.Personalize(TonightQuery(), options);
  ASSERT_TRUE(outcome.ok());
  ASSERT_TRUE(outcome->mq.has_value());

  Executor plain(db_.get());
  auto full = plain.Execute(*outcome->mq);
  ASSERT_TRUE(full.ok());
  EXPECT_FALSE(full->truncated());

  // Pre-cancelled: nothing runs, flag set.
  CancelToken cancelled;
  cancelled.Cancel();
  Executor executor(db_.get());
  executor.set_cancel_token(&cancelled);
  auto stopped = executor.Execute(*outcome->mq);
  ASSERT_TRUE(stopped.ok());
  EXPECT_TRUE(stopped->truncated());
  EXPECT_EQ(stopped->num_rows(), 0u);

  bool saw_full = false;
  for (int64_t budget = 0; budget < 600 && !saw_full; ++budget) {
    CancelToken token;
    token.set_poll_budget(budget);
    Executor bounded(db_.get());
    bounded.set_cancel_token(&token);
    auto cut = bounded.Execute(*outcome->mq);
    ASSERT_TRUE(cut.ok()) << "budget " << budget;
    if (!cut->truncated()) {
      // An untruncated run must be the complete answer.
      EXPECT_EQ(cut->DebugString(1000), full->DebugString(1000))
          << "budget " << budget;
      saw_full = true;
    } else {
      EXPECT_LE(cut->num_rows(), full->num_rows()) << "budget " << budget;
    }
  }
  EXPECT_TRUE(saw_full) << "no budget large enough to finish the run";
}

TEST_F(ExecutorCancelTest, SharedCoreAndFallbackBothTruncate) {
  Schema schema = MovieSchema();
  auto graph = PersonalizationGraph::Build(&schema, JulieProfile());
  ASSERT_TRUE(graph.ok());
  Personalizer personalizer(&*graph);
  PersonalizationOptions options;
  options.criterion = InterestCriterion::TopCount(3);
  auto outcome = personalizer.Personalize(TonightQuery(), options);
  ASSERT_TRUE(outcome.ok());
  ASSERT_TRUE(outcome->mq.has_value());

  for (bool shared_core : {true, false}) {
    CancelToken token;
    token.set_poll_budget(5);
    Executor executor(db_.get());
    executor.set_shared_core(shared_core);
    executor.set_cancel_token(&token);
    auto cut = executor.Execute(*outcome->mq);
    ASSERT_TRUE(cut.ok()) << "shared_core=" << shared_core;
    EXPECT_TRUE(cut->truncated()) << "shared_core=" << shared_core;
  }
}

}  // namespace
}  // namespace qp
