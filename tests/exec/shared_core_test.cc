// Tests for the shared-core MQ execution optimization: the partial
// queries' common conjunctive block (the original query) is materialized
// once and each part joins only its preference chain on top. Must be
// semantically invisible.

#include "common/test_util.h"
#include "gtest/gtest.h"
#include "qp/core/personalizer.h"
#include "qp/data/movie_db.h"
#include "qp/data/paper_example.h"
#include "qp/data/workload.h"

namespace qp {
namespace {

using testing_util::SameRows;

TEST(SharedCoreTest, PaperExampleIdenticalWithAndWithout) {
  Schema schema = MovieSchema();
  auto db = BuildPaperDatabase();
  ASSERT_TRUE(db.ok());
  auto graph = PersonalizationGraph::Build(&schema, JulieProfile());
  ASSERT_TRUE(graph.ok());
  Personalizer personalizer(&*graph);
  PersonalizationOptions options;
  options.criterion = InterestCriterion::TopCount(3);
  options.integration.min_satisfied = 2;
  auto outcome = personalizer.Personalize(TonightQuery(), options);
  ASSERT_TRUE(outcome.ok());

  Executor with(&*db);
  Executor without(&*db);
  without.set_shared_core(false);

  ExecutorStats with_stats;
  ExecutorStats without_stats;
  auto a = with.Execute(*outcome->mq, &with_stats);
  auto b = without.Execute(*outcome->mq, &without_stats);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());

  // Identical answer, counts and degrees.
  ASSERT_EQ(a->num_rows(), b->num_rows());
  for (size_t i = 0; i < a->num_rows(); ++i) {
    EXPECT_EQ(a->row(i), b->row(i));
    EXPECT_EQ(a->counts()[i], b->counts()[i]);
    EXPECT_DOUBLE_EQ(a->degrees()[i], b->degrees()[i]);
  }
  // The optimization engaged for at least one part; the cost model may
  // route very selective parts (single-actor chains on this tiny
  // database) to fresh execution instead. (Join-work savings only show
  // at realistic scales; the ablation bench quantifies them.)
  EXPECT_GE(with_stats.core_reuses, 1u);
  EXPECT_LE(with_stats.core_reuses, 3u);
  EXPECT_EQ(without_stats.core_reuses, 0u);
}

TEST(SharedCoreTest, SinglePartCompoundSkipsOptimization) {
  Schema schema = MovieSchema();
  auto db = BuildPaperDatabase();
  ASSERT_TRUE(db.ok());
  CompoundQuery compound;
  SelectQuery part = TonightQuery();
  part.set_distinct(true);
  compound.AddPart(std::move(part), 0.9);
  Executor executor(&*db);
  ExecutorStats stats;
  auto result = executor.Execute(compound, &stats);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(stats.core_reuses, 0u);
  EXPECT_EQ(result->num_rows(), 6u);
}

TEST(SharedCoreTest, NonDistinctPartsFallBack) {
  Schema schema = MovieSchema();
  auto db = BuildPaperDatabase();
  ASSERT_TRUE(db.ok());
  CompoundQuery compound;
  compound.AddPart(TonightQuery(), 0.9);  // Not distinct.
  compound.AddPart(TonightQuery(), 0.8);
  Executor executor(&*db);
  ExecutorStats stats;
  auto result = executor.Execute(compound, &stats);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(stats.core_reuses, 0u);
}

class SharedCorePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SharedCorePropertyTest, EquivalentOnRandomWorkload) {
  Schema schema = MovieSchema();
  MovieDbConfig config;
  config.num_movies = 80;
  config.num_actors = 35;
  config.num_directors = 12;
  config.num_theatres = 6;
  config.seed = GetParam();
  auto db = GenerateMovieDatabase(config);
  ASSERT_TRUE(db.ok());
  auto pools = MovieCandidatePools(*db);
  ASSERT_TRUE(pools.ok());
  ProfileGenerator profiles(&schema, std::move(pools).value());
  WorkloadGenerator workload(&*db, GetParam() * 3 + 11);
  Rng rng(GetParam());

  Executor with(&*db);
  Executor without(&*db);
  without.set_shared_core(false);

  for (int trial = 0; trial < 8; ++trial) {
    ProfileGeneratorOptions options;
    options.num_selections = 25;
    auto profile = profiles.Generate(options, &rng);
    ASSERT_TRUE(profile.ok());
    auto graph = PersonalizationGraph::Build(&schema, *profile);
    ASSERT_TRUE(graph.ok());
    Personalizer personalizer(&*graph);
    auto query = workload.RandomQuery();
    ASSERT_TRUE(query.ok());

    PersonalizationOptions popts;
    popts.criterion = InterestCriterion::TopCount(1 + rng.Below(8));
    popts.integration.min_satisfied = 1;
    popts.max_negative = 2;  // Exercise penalty parts through the core.
    auto outcome = personalizer.Personalize(*query, popts);
    ASSERT_TRUE(outcome.ok()) << outcome.status();

    auto a = with.Execute(*outcome->mq);
    auto b = without.Execute(*outcome->mq);
    ASSERT_TRUE(a.ok()) << a.status();
    ASSERT_TRUE(b.ok()) << b.status();
    ASSERT_TRUE(SameRows(a->rows(), b->rows())) << "trial " << trial;
    // Canonical ordering makes the annotated vectors comparable 1:1.
    ASSERT_EQ(a->counts().size(), b->counts().size());
    for (size_t i = 0; i < a->num_rows(); ++i) {
      EXPECT_EQ(a->counts()[i], b->counts()[i]) << "trial " << trial;
      EXPECT_NEAR(a->degrees()[i], b->degrees()[i], 1e-12);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SharedCorePropertyTest,
                         ::testing::Values(71, 72, 73, 74));

}  // namespace
}  // namespace qp
