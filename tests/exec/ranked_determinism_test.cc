// Regression tests for ranked-output determinism. Canonicalize must be a
// total order — degree desc, then satisfied-count desc, then row values —
// so two executions that materialize the same multiset of ranked rows in
// different orders (serial vs thread-pool, hash-iteration luck) emit
// identical row sequences. Before the total order, equal-degree rows with
// different counts kept their arrival order, so parallel and serial runs
// of the same MQ could disagree.

#include <string>
#include <tuple>
#include <vector>

#include "common/test_util.h"
#include "gtest/gtest.h"
#include "qp/core/personalizer.h"
#include "qp/data/movie_db.h"
#include "qp/data/workload.h"
#include "qp/exec/executor.h"
#include "qp/exec/result.h"
#include "qp/pref/profile_generator.h"
#include "qp/util/random.h"

namespace qp {
namespace {

ResultSet FromRanked(
    const std::vector<std::tuple<std::string, size_t, double>>& rows) {
  ResultSet result({"title"});
  for (const auto& [title, count, degree] : rows) {
    result.AddRankedRow({Value::Str(title)}, count, degree);
  }
  return result;
}

TEST(RankedDeterminismTest, EqualDegreeTiesBreakByCountThenValue) {
  // Three rows tie at degree 0.8; counts 3 > 2 > 2, then "a" < "b".
  ResultSet result = FromRanked({
      {"b", 2, 0.8},
      {"z", 1, 0.9},
      {"a", 2, 0.8},
      {"c", 3, 0.8},
  });
  result.Canonicalize();
  ASSERT_EQ(result.num_rows(), 4u);
  EXPECT_EQ(result.row(0)[0], Value::Str("z"));
  EXPECT_EQ(result.row(1)[0], Value::Str("c"));  // count 3 beats count 2.
  EXPECT_EQ(result.row(2)[0], Value::Str("a"));  // then value order.
  EXPECT_EQ(result.row(3)[0], Value::Str("b"));
  EXPECT_EQ(result.counts()[1], 3u);
}

TEST(RankedDeterminismTest, CanonicalizeIsInsensitiveToArrivalOrder) {
  // Every permutation of the same ranked multiset canonicalizes to the
  // same sequence — arrival order (the nondeterministic part of a
  // parallel merge) must not leak through.
  std::vector<std::tuple<std::string, size_t, double>> rows = {
      {"a", 2, 0.8}, {"b", 2, 0.8}, {"c", 3, 0.8},
      {"d", 1, 0.9}, {"e", 1, 0.72}, {"f", 4, 0.72},
  };
  ResultSet reference = FromRanked(rows);
  reference.Canonicalize();
  const std::string expected = reference.DebugString(100);

  Rng rng(8);
  for (int trial = 0; trial < 20; ++trial) {
    auto shuffled = rows;
    rng.Shuffle(&shuffled);
    ResultSet permuted = FromRanked(shuffled);
    permuted.Canonicalize();
    EXPECT_EQ(permuted.DebugString(100), expected) << "trial " << trial;
  }
}

TEST(RankedDeterminismTest, RepeatedMqExecutionsAreBitIdentical) {
  // End-to-end: personalized (MQ) executions of the same query repeated
  // against the same database must produce the exact same DebugString,
  // including the order of equal-degree rows.
  MovieDbConfig config;
  config.num_movies = 250;
  config.num_actors = 120;
  config.num_directors = 30;
  config.num_theatres = 6;
  config.num_days = 3;
  config.seed = 5;
  QP_ASSERT_OK_AND_ASSIGN(Database db, GenerateMovieDatabase(config));
  QP_ASSERT_OK_AND_ASSIGN(auto pools, MovieCandidatePools(db));
  ProfileGenerator generator(&db.schema(), pools);
  Rng rng(99);
  ProfileGeneratorOptions profile_options;
  profile_options.num_selections = 25;
  QP_ASSERT_OK_AND_ASSIGN(UserProfile profile,
                          generator.Generate(profile_options, &rng));
  QP_ASSERT_OK_AND_ASSIGN(
      PersonalizationGraph graph,
      PersonalizationGraph::Build(&db.schema(), profile));

  WorkloadGenerator workload(&db, 13);
  QP_ASSERT_OK_AND_ASSIGN(std::vector<SelectQuery> queries,
                          workload.RandomQueries(5));
  Personalizer personalizer(&graph);
  PersonalizationOptions options;
  options.criterion = InterestCriterion::TopCount(5);
  for (const SelectQuery& query : queries) {
    QP_ASSERT_OK_AND_ASSIGN(ResultSet first,
                            personalizer.PersonalizeAndExecute(query, options,
                                                               db));
    for (int repeat = 0; repeat < 3; ++repeat) {
      QP_ASSERT_OK_AND_ASSIGN(
          ResultSet again,
          personalizer.PersonalizeAndExecute(query, options, db));
      EXPECT_EQ(again.DebugString(1000), first.DebugString(1000));
    }
  }
}

}  // namespace
}  // namespace qp
