// Edge-case and failure-injection tests for the executor beyond the main
// suites: unusual qualifications, strategy combinations, and annotation
// plumbing.

#include "common/test_util.h"
#include "gtest/gtest.h"
#include "qp/data/movie_db.h"
#include "qp/data/paper_example.h"
#include "qp/exec/executor.h"
#include "qp/query/sql_parser.h"

namespace qp {
namespace {

using testing_util::SameRows;

class ExecutorEdgeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto db = BuildPaperDatabase();
    ASSERT_TRUE(db.ok());
    db_ = std::make_unique<Database>(std::move(db).value());
    executor_ = std::make_unique<Executor>(db_.get());
  }

  SelectQuery Parse(const std::string& sql) {
    auto q = ParseSelectQuery(sql);
    EXPECT_TRUE(q.ok()) << q.status();
    return std::move(q).value();
  }

  std::unique_ptr<Database> db_;
  std::unique_ptr<Executor> executor_;
};

TEST_F(ExecutorEdgeTest, SelfJoinWithTwoVariables) {
  // Two variables over ACTOR: pairs of distinct actors in the same movie.
  auto result = executor_->Execute(Parse(
      "select A1.name, A2.name from ACTOR A1, ACTOR A2, CAST C1, CAST C2 "
      "where C1.aid=A1.aid and C2.aid=A2.aid and C1.mid=C2.mid and "
      "A1.name='N. Kidman' and A2.name='A. Hopkins'"));
  ASSERT_TRUE(result.ok()) << result.status();
  // They co-star only in 'The Quiet Comedy' (movie 0).
  EXPECT_EQ(result->num_rows(), 1u);
}

TEST_F(ExecutorEdgeTest, ProjectionOnlyVariableStillJoins) {
  // GN appears only in the projection of the distinct query: it must not
  // be dropped from the disjunct's variable subset.
  auto result = executor_->Execute(Parse(
      "select distinct GN.genre from MOVIE MV, GENRE GN where "
      "MV.mid=GN.mid and MV.year=2003"));
  ASSERT_TRUE(result.ok());
  // 2003 movies: Night Chase (thriller), Space Odyssey (sci-fi).
  EXPECT_EQ(result->num_rows(), 2u);
}

TEST_F(ExecutorEdgeTest, RedundantDuplicateAtomsAreHarmless) {
  auto a = executor_->Execute(Parse(
      "select MV.title from MOVIE MV where MV.year=2003 and MV.year=2003"));
  auto b = executor_->Execute(
      Parse("select MV.title from MOVIE MV where MV.year=2003"));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(SameRows(a->rows(), b->rows()));
}

TEST_F(ExecutorEdgeTest, OrAcrossDifferentVariables) {
  auto result = executor_->Execute(Parse(
      "select distinct MV.title from MOVIE MV, GENRE GN, DIRECTED DD, "
      "DIRECTOR DI where MV.mid=GN.mid and MV.mid=DD.mid and "
      "DD.did=DI.did and (GN.genre='sci-fi' or DI.name='W. Allen')"));
  ASSERT_TRUE(result.ok()) << result.status();
  // sci-fi: Space Odyssey; W. Allen: Laugh Lines, Dream Theatre.
  EXPECT_EQ(result->num_rows(), 3u);
}

TEST_F(ExecutorEdgeTest, NestedLoopCompoundMatchesHashJoin) {
  CompoundQuery compound;
  SelectQuery part1 = Parse(
      "select distinct MV.title from MOVIE MV, GENRE GN where "
      "MV.mid=GN.mid and GN.genre='comedy'");
  part1.set_distinct(true);
  SelectQuery part2 = Parse(
      "select distinct MV.title from MOVIE MV, CAST CA, ACTOR AC where "
      "MV.mid=CA.mid and CA.aid=AC.aid and AC.name='N. Kidman'");
  part2.set_distinct(true);
  compound.AddPart(part1, 0.8);
  compound.AddPart(part2, 0.7);
  compound.set_having(HavingClause::CountAtLeast(1));
  compound.set_order_by_degree(true);

  Executor nested(db_.get());
  nested.set_join_strategy(JoinStrategy::kNestedLoop);
  auto a = executor_->Execute(compound);
  auto b = nested.Execute(compound);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->num_rows(), b->num_rows());
  for (size_t i = 0; i < a->num_rows(); ++i) {
    EXPECT_EQ(a->row(i), b->row(i));
    EXPECT_DOUBLE_EQ(a->degrees()[i], b->degrees()[i]);
  }
}

TEST_F(ExecutorEdgeTest, NearCombinedWithEqualityOnSameVariable) {
  auto result = executor_->Execute(Parse(
      "select distinct MV.title from MOVIE MV, GENRE GN where "
      "MV.mid=GN.mid and GN.genre='comedy' and near(MV.year, 2002, 2)"));
  ASSERT_TRUE(result.ok()) << result.status();
  // Comedies: 2002 (Quiet Comedy, sat 1), 2001 (Laugh Lines, 0.5),
  // 1999 (Dream Theatre, out of range).
  EXPECT_EQ(result->num_rows(), 2u);
  ASSERT_TRUE(result->has_satisfactions());
}

TEST_F(ExecutorEdgeTest, NearInDisjunction) {
  SelectQuery query = Parse(
      "select distinct MV.title from MOVIE MV where "
      "near(MV.year, 1999, 1) or MV.year=2003");
  auto result = executor_->Execute(query);
  ASSERT_TRUE(result.ok()) << result.status();
  // 1999: Dream Theatre; 2003: Night Chase, Space Odyssey.
  EXPECT_EQ(result->num_rows(), 3u);
  std::vector<Row> expected = testing_util::ReferenceEvaluate(*db_, query);
  EXPECT_TRUE(SameRows(result->rows(), expected));
}

TEST_F(ExecutorEdgeTest, TruncateAnnotatedResult) {
  CompoundQuery compound;
  SelectQuery part = Parse("select distinct MV.title from MOVIE MV");
  part.set_distinct(true);
  compound.AddPart(part, 0.5);
  compound.set_order_by_degree(true);
  auto result = executor_->Execute(compound);
  ASSERT_TRUE(result.ok());
  size_t before = result->num_rows();
  ASSERT_GT(before, 2u);
  result->Truncate(2);
  EXPECT_EQ(result->num_rows(), 2u);
  EXPECT_EQ(result->degrees().size(), 2u);
  EXPECT_EQ(result->counts().size(), 2u);
  result->Truncate(10);  // No-op when already smaller.
  EXPECT_EQ(result->num_rows(), 2u);
}

TEST_F(ExecutorEdgeTest, ExclusionArityMismatchRejected) {
  CompoundQuery compound;
  SelectQuery part = Parse("select distinct MV.title from MOVIE MV");
  part.set_distinct(true);
  compound.AddPart(part, 0.5);
  SelectQuery exclusion =
      Parse("select MV.title, MV.year from MOVIE MV where MV.year=1999");
  compound.AddExclusion(exclusion);
  EXPECT_FALSE(executor_->Execute(compound).ok());
}

TEST_F(ExecutorEdgeTest, StringIndexLookupWithDates) {
  auto result = executor_->Execute(Parse(
      "select PL.mid from PLAY PL where PL.date='3/7/2003'"));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_rows(), 1u);
}

}  // namespace
}  // namespace qp
