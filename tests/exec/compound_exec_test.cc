#include "common/test_util.h"
#include "gtest/gtest.h"
#include "qp/data/paper_example.h"
#include "qp/exec/executor.h"
#include "qp/query/sql_parser.h"

namespace qp {
namespace {

class CompoundExecTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto db = BuildPaperDatabase();
    ASSERT_TRUE(db.ok()) << db.status();
    db_ = std::make_unique<Database>(std::move(db).value());
    executor_ = std::make_unique<Executor>(db_.get());
  }

  /// Tonight's movies filtered by one extra condition, as an MQ part.
  SelectQuery Part(const std::string& extra_tables,
                   const std::string& extra_cond) {
    std::string sql =
        "select distinct MV.title from MOVIE MV, PLAY PL" + extra_tables +
        " where MV.mid=PL.mid and PL.date='2/7/2003'" + extra_cond;
    auto q = ParseSelectQuery(sql);
    EXPECT_TRUE(q.ok()) << q.status() << " " << sql;
    return std::move(q).value();
  }

  SelectQuery ComedyPart() {
    return Part(", GENRE GN", " and MV.mid=GN.mid and GN.genre='comedy'");
  }
  SelectQuery LynchPart() {
    return Part(", DIRECTED DD, DIRECTOR DI",
                " and MV.mid=DD.mid and DD.did=DI.did and "
                "DI.name='D. Lynch'");
  }
  SelectQuery KidmanPart() {
    return Part(", CAST CA, ACTOR AC",
                " and MV.mid=CA.mid and CA.aid=AC.aid and "
                "AC.name='N. Kidman'");
  }

  std::unique_ptr<Database> db_;
  std::unique_ptr<Executor> executor_;
};

TEST_F(CompoundExecTest, UnionAllCountsParts) {
  CompoundQuery c;
  c.AddPart(ComedyPart(), 0.81);
  c.AddPart(LynchPart(), 0.8);
  c.AddPart(KidmanPart(), 0.72);
  c.set_having(HavingClause::None());

  auto r = executor_->Execute(c);
  ASSERT_TRUE(r.ok()) << r.status();
  // Union over {comedy: 0,1,5} {lynch: 0,2} {kidman: 0,2,5} = movies
  // 0,1,2,5.
  EXPECT_EQ(r->num_rows(), 4u);
  ASSERT_TRUE(r->has_ranking());
}

TEST_F(CompoundExecTest, HavingCountAtLeastTwo) {
  // The paper's Julie example: at least 2 of the top 3 preferences.
  CompoundQuery c;
  c.AddPart(ComedyPart(), 0.81);
  c.AddPart(LynchPart(), 0.8);
  c.AddPart(KidmanPart(), 0.72);
  c.set_having(HavingClause::CountAtLeast(2));

  auto r = executor_->Execute(c);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_rows(), 3u);
  EXPECT_TRUE(r->Contains({Value::Str("The Quiet Comedy")}));   // All 3.
  EXPECT_TRUE(r->Contains({Value::Str("Night Chase")}));        // Lynch+Kidman.
  EXPECT_TRUE(r->Contains({Value::Str("Dream Theatre")}));      // Comedy+Kidman.
  EXPECT_FALSE(r->Contains({Value::Str("Laugh Lines")}));       // Comedy only.
}

TEST_F(CompoundExecTest, CountsAreSatisfiedPreferenceCounts) {
  CompoundQuery c;
  c.AddPart(ComedyPart(), 0.81);
  c.AddPart(LynchPart(), 0.8);
  c.AddPart(KidmanPart(), 0.72);
  c.set_having(HavingClause::CountAtLeast(1));
  c.set_order_by_degree(true);

  auto r = executor_->Execute(c);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->num_rows(), 4u);
  // Ranked by combined degree: The Quiet Comedy satisfies all three.
  EXPECT_EQ(r->row(0)[0], Value::Str("The Quiet Comedy"));
  EXPECT_EQ(r->counts()[0], 3u);
  // Combined degree: 1-(1-.81)(1-.8)(1-.72) = 0.989...
  EXPECT_NEAR(r->degrees()[0], 1 - 0.19 * 0.2 * 0.28, 1e-9);
}

TEST_F(CompoundExecTest, RankingOrderIsNonIncreasing) {
  CompoundQuery c;
  c.AddPart(ComedyPart(), 0.81);
  c.AddPart(LynchPart(), 0.8);
  c.AddPart(KidmanPart(), 0.72);
  c.set_having(HavingClause::None());
  c.set_order_by_degree(true);

  auto r = executor_->Execute(c);
  ASSERT_TRUE(r.ok());
  for (size_t i = 1; i < r->num_rows(); ++i) {
    EXPECT_GE(r->degrees()[i - 1], r->degrees()[i]);
  }
}

TEST_F(CompoundExecTest, HavingDegreeAbove) {
  CompoundQuery c;
  c.AddPart(ComedyPart(), 0.81);
  c.AddPart(LynchPart(), 0.8);
  c.AddPart(KidmanPart(), 0.72);
  c.set_having(HavingClause::DegreeAbove(0.9));
  c.set_order_by_degree(true);

  auto r = executor_->Execute(c);
  ASSERT_TRUE(r.ok());
  // Degrees: QuietComedy 0.98936, DreamTheatre 1-(.19*.28)=0.9468,
  // NightChase 1-(.2*.28)=0.944, LaughLines 0.81.
  EXPECT_EQ(r->num_rows(), 3u);
  EXPECT_FALSE(r->Contains({Value::Str("Laugh Lines")}));
}

TEST_F(CompoundExecTest, SinglePartDegenerate) {
  CompoundQuery c;
  c.AddPart(ComedyPart(), 0.81);
  c.set_having(HavingClause::CountAtLeast(1));
  auto r = executor_->Execute(c);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_rows(), 3u);
  for (size_t i = 0; i < r->num_rows(); ++i) {
    EXPECT_EQ(r->counts()[i], 1u);
    EXPECT_NEAR(r->degrees()[i], 0.81, 1e-9);
  }
}

TEST_F(CompoundExecTest, HavingCountZeroKeepsEverything) {
  CompoundQuery c;
  c.AddPart(ComedyPart(), 0.81);
  c.AddPart(KidmanPart(), 0.72);
  c.set_having(HavingClause::CountAtLeast(0));
  auto r = executor_->Execute(c);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_rows(), 4u);
}

TEST_F(CompoundExecTest, ImpossibleCountYieldsNothing) {
  CompoundQuery c;
  c.AddPart(ComedyPart(), 0.81);
  c.set_having(HavingClause::CountAtLeast(5));
  auto r = executor_->Execute(c);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_rows(), 0u);
}

TEST_F(CompoundExecTest, ValidationErrorsPropagate) {
  CompoundQuery c;
  EXPECT_FALSE(executor_->Execute(c).ok());  // No parts.
}

}  // namespace
}  // namespace qp
