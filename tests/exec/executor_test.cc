#include "qp/exec/executor.h"

#include "common/test_util.h"
#include "gtest/gtest.h"
#include "qp/data/movie_db.h"
#include "qp/data/paper_example.h"
#include "qp/data/workload.h"
#include "qp/query/sql_parser.h"

namespace qp {
namespace {

using testing_util::ReferenceEvaluate;
using testing_util::RowsToString;
using testing_util::SameRows;

class ExecutorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto db = BuildPaperDatabase();
    ASSERT_TRUE(db.ok()) << db.status();
    db_ = std::make_unique<Database>(std::move(db).value());
    executor_ = std::make_unique<Executor>(db_.get());
  }

  ResultSet Run(const std::string& sql) {
    auto query = ParseSelectQuery(sql);
    EXPECT_TRUE(query.ok()) << query.status();
    auto result = executor_->Execute(*query);
    EXPECT_TRUE(result.ok()) << result.status();
    return std::move(result).value();
  }

  std::unique_ptr<Database> db_;
  std::unique_ptr<Executor> executor_;
};

TEST_F(ExecutorTest, SimpleScan) {
  ResultSet r = Run("select MV.title from MOVIE MV");
  EXPECT_EQ(r.num_rows(), 6u);
  EXPECT_EQ(r.columns(), (std::vector<std::string>{"MV.title"}));
}

TEST_F(ExecutorTest, SelectionFilters) {
  ResultSet r = Run("select MV.title from MOVIE MV where MV.year=2003");
  EXPECT_EQ(r.num_rows(), 2u);
  EXPECT_TRUE(r.Contains({Value::Str("Night Chase")}));
  EXPECT_TRUE(r.Contains({Value::Str("Space Odyssey")}));
}

TEST_F(ExecutorTest, SelectionNoMatches) {
  ResultSet r = Run("select MV.title from MOVIE MV where MV.year=1900");
  EXPECT_EQ(r.num_rows(), 0u);
}

TEST_F(ExecutorTest, ContradictorySelectionsYieldNothing) {
  ResultSet r = Run(
      "select MV.title from MOVIE MV where MV.year=2003 and MV.year=2001");
  EXPECT_EQ(r.num_rows(), 0u);
}

TEST_F(ExecutorTest, JoinTwoTables) {
  ResultSet r = Run(
      "select MV.title from MOVIE MV, GENRE GN where MV.mid=GN.mid and "
      "GN.genre='comedy'");
  EXPECT_EQ(r.num_rows(), 3u);
  EXPECT_TRUE(r.Contains({Value::Str("The Quiet Comedy")}));
  EXPECT_TRUE(r.Contains({Value::Str("Laugh Lines")}));
  EXPECT_TRUE(r.Contains({Value::Str("Dream Theatre")}));
}

TEST_F(ExecutorTest, TonightQueryMatchesPaper) {
  auto result = executor_->Execute(TonightQuery());
  ASSERT_TRUE(result.ok());
  // All six movies play on 2/7/2003.
  EXPECT_EQ(result->num_rows(), 6u);
}

TEST_F(ExecutorTest, ThreeWayJoinChain) {
  ResultSet r = Run(
      "select MV.title from MOVIE MV, CAST CA, ACTOR AC where "
      "MV.mid=CA.mid and CA.aid=AC.aid and AC.name='N. Kidman'");
  EXPECT_EQ(r.num_rows(), 3u);
  EXPECT_TRUE(r.Contains({Value::Str("The Quiet Comedy")}));
  EXPECT_TRUE(r.Contains({Value::Str("Night Chase")}));
  EXPECT_TRUE(r.Contains({Value::Str("Dream Theatre")}));
}

TEST_F(ExecutorTest, DistinctCollapsesDuplicates) {
  // Dream Theatre has two genres; without distinct it appears twice.
  ResultSet plain = Run(
      "select MV.title from MOVIE MV, GENRE GN where MV.mid=GN.mid and "
      "MV.mid=5");
  EXPECT_EQ(plain.num_rows(), 2u);
  ResultSet distinct = Run(
      "select distinct MV.title from MOVIE MV, GENRE GN where "
      "MV.mid=GN.mid and MV.mid=5");
  EXPECT_EQ(distinct.num_rows(), 1u);
}

TEST_F(ExecutorTest, DisjunctionOfSelections) {
  ResultSet r = Run(
      "select distinct MV.title from MOVIE MV, GENRE GN where "
      "MV.mid=GN.mid and (GN.genre='sci-fi' or GN.genre='thriller')");
  EXPECT_EQ(r.num_rows(), 2u);
  EXPECT_TRUE(r.Contains({Value::Str("Night Chase")}));
  EXPECT_TRUE(r.Contains({Value::Str("Space Odyssey")}));
}

TEST_F(ExecutorTest, JuliePersonalizedSqExample) {
  // The SQ query of Section 6 (adapted degrees): comedies by D. Lynch or
  // with N. Kidman etc. — here the L=2-of-3 disjunction.
  ResultSet r = Run(
      "select distinct MV.title from MOVIE MV, PLAY PL, GENRE GN, CAST CA,"
      " ACTOR AC, DIRECTED DD, DIRECTOR DI where MV.mid=PL.mid and "
      "PL.date='2/7/2003' and ((MV.mid=GN.mid and GN.genre='comedy' and "
      "MV.mid=CA.mid and CA.aid=AC.aid and AC.name='N. Kidman') or "
      "(MV.mid=CA.mid and CA.aid=AC.aid and AC.name='N. Kidman' and "
      "MV.mid=DD.mid and DD.did=DI.did and DI.name='D. Lynch') or "
      "(MV.mid=GN.mid and GN.genre='comedy' and MV.mid=DD.mid and "
      "DD.did=DI.did and DI.name='D. Lynch'))");
  EXPECT_EQ(r.num_rows(), 3u);
  EXPECT_TRUE(r.Contains({Value::Str("The Quiet Comedy")}));
  EXPECT_TRUE(r.Contains({Value::Str("Night Chase")}));
  EXPECT_TRUE(r.Contains({Value::Str("Dream Theatre")}));
}

TEST_F(ExecutorTest, CrossProductWhenDisconnected) {
  ResultSet r = Run(
      "select AC.name, DI.name from ACTOR AC, DIRECTOR DI where "
      "AC.name='N. Kidman'");
  EXPECT_EQ(r.num_rows(), 4u);  // 1 actor x 4 directors.
}

TEST_F(ExecutorTest, EmptyTableEmptiesProduct) {
  Database db(MovieSchema());  // All tables empty.
  QP_ASSERT_OK(db.Insert("MOVIE", {Value::Int(1), Value::Str("Only Movie"),
                                   Value::Int(2000)}));
  Executor ex(&db);
  auto q = ParseSelectQuery(
      "select MV.title from MOVIE MV, PLAY PL where MV.mid=PL.mid");
  auto r = ex.Execute(*q);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_rows(), 0u);
}

TEST_F(ExecutorTest, InvalidQueryRejected) {
  auto q = ParseSelectQuery("select MV.title from MOVIE MV where MV.zz=1");
  ASSERT_TRUE(q.ok());
  EXPECT_FALSE(executor_->Execute(*q).ok());
}

TEST_F(ExecutorTest, StatsPopulated) {
  ExecutorStats stats;
  auto q = ParseSelectQuery(
      "select MV.title from MOVIE MV, GENRE GN where MV.mid=GN.mid");
  auto r = executor_->Execute(*q, &stats);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(stats.disjuncts, 1u);
  EXPECT_GT(stats.bindings, 0u);
}

TEST_F(ExecutorTest, NestedLoopAgreesWithHashJoin) {
  auto q = ParseSelectQuery(
      "select distinct MV.title from MOVIE MV, CAST CA, ACTOR AC where "
      "MV.mid=CA.mid and CA.aid=AC.aid and AC.name='N. Kidman'");
  auto hash = executor_->Execute(*q);
  ASSERT_TRUE(hash.ok());
  Executor nested(db_.get());
  nested.set_join_strategy(JoinStrategy::kNestedLoop);
  auto loop = nested.Execute(*q);
  ASSERT_TRUE(loop.ok());
  EXPECT_TRUE(SameRows(hash->rows(), loop->rows()));
}

TEST_F(ExecutorTest, AgainstReferenceOnHandQueries) {
  const char* queries[] = {
      "select MV.title from MOVIE MV",
      "select MV.title from MOVIE MV where MV.year=2003",
      "select distinct MV.title from MOVIE MV, GENRE GN where "
      "MV.mid=GN.mid",
      "select MV.title from MOVIE MV, GENRE GN where MV.mid=GN.mid and "
      "GN.genre='comedy'",
      "select distinct MV.title from MOVIE MV, PLAY PL, THEATRE TH where "
      "MV.mid=PL.mid and PL.tid=TH.tid and TH.region='downtown'",
      "select MV.title from MOVIE MV, PLAY PL where MV.mid=PL.mid and "
      "(PL.date='2/7/2003' or PL.date='3/7/2003')",
  };
  for (const char* sql : queries) {
    auto q = ParseSelectQuery(sql);
    ASSERT_TRUE(q.ok()) << sql;
    auto got = executor_->Execute(*q);
    ASSERT_TRUE(got.ok()) << got.status() << "\n" << sql;
    std::vector<Row> expected = ReferenceEvaluate(*db_, *q);
    EXPECT_TRUE(SameRows(got->rows(), expected))
        << sql << "\ngot:\n"
        << RowsToString(got->rows()) << "expected:\n"
        << RowsToString(expected);
  }
}

// Property: executor output equals the cross-product reference evaluation
// on random workload queries over a small generated database.
class ExecutorPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ExecutorPropertyTest, MatchesReferenceOnRandomQueries) {
  MovieDbConfig config;
  config.num_movies = 30;
  config.num_actors = 15;
  config.num_directors = 8;
  config.num_theatres = 4;
  config.num_days = 3;
  config.plays_per_theatre_per_day = 2;
  config.seed = GetParam();
  auto db = GenerateMovieDatabase(config);
  ASSERT_TRUE(db.ok()) << db.status();
  Executor executor(&*db);
  WorkloadGenerator workload(&*db, GetParam() * 31 + 7);

  for (int i = 0; i < 15; ++i) {
    auto query = workload.RandomQuery();
    ASSERT_TRUE(query.ok()) << query.status();
    auto got = executor.Execute(*query);
    ASSERT_TRUE(got.ok()) << got.status();
    std::vector<Row> expected = ReferenceEvaluate(*db, *query);
    EXPECT_TRUE(SameRows(got->rows(), expected))
        << "seed=" << GetParam() << " query " << i << "\ngot:\n"
        << RowsToString(got->rows()) << "expected:\n"
        << RowsToString(expected);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExecutorPropertyTest,
                         ::testing::Values(101, 202, 303, 404, 505));

}  // namespace
}  // namespace qp
