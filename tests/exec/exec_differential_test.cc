// The executor differential oracle: the vectorized batch engine must be
// observationally identical to the tuple-at-a-time engine. Thousands of
// seeded trials draw a random profile, a random SPJ query and random
// K/L/near/negative knobs, personalize it both as SQ and MQ, execute
// through both engines, and assert canonicalized result equality
// (DebugString pins rows, order, satisfactions, counts and degrees) plus
// identical ExecutorStats. Additional trials check the truncation
// contract under mid-flight cancellation and result equality when an
// armed `exec.disjunct` chaos fault hits both engines the same way.
//
// Every trial prints "[diff] trial N seed=S" before running, so a
// failure names its exact replay. QP_EXEC_TRIALS overrides the trial
// count (CI's sanitizer stage lowers it; the default of 800 randomized
// trials yields well over 1000 differential executions on its own —
// most trials compare both an SQ and an MQ plan — plus the K/L grid,
// cancellation and chaos sweeps on top).

#include <cstdlib>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/test_util.h"
#include "gtest/gtest.h"
#include "qp/core/personalizer.h"
#include "qp/data/movie_db.h"
#include "qp/data/workload.h"
#include "qp/exec/executor.h"
#include "qp/graph/personalization_graph.h"
#include "qp/pref/profile_generator.h"
#include "qp/util/deadline.h"
#include "qp/util/fault_hub.h"
#include "qp/util/random.h"

namespace qp {
namespace {

size_t TrialsFromEnv(size_t fallback) {
  const char* env = std::getenv("QP_EXEC_TRIALS");
  if (env == nullptr || *env == '\0') return fallback;
  long parsed = std::strtol(env, nullptr, 10);
  return parsed > 0 ? static_cast<size_t>(parsed) : fallback;
}

/// Multiset containment: every row of `part` appears in `whole` at least
/// as many times.
bool SubMultiset(const std::vector<Row>& part, const std::vector<Row>& whole) {
  std::unordered_map<Row, int, RowHash, RowEq> counts;
  for (const Row& row : whole) ++counts[row];
  for (const Row& row : part) {
    if (--counts[row] < 0) return false;
  }
  return true;
}

bool StatsEqual(const ExecutorStats& a, const ExecutorStats& b) {
  return a.disjuncts == b.disjuncts && a.bindings == b.bindings &&
         a.raw_rows == b.raw_rows && a.core_reuses == b.core_reuses;
}

/// Shared fixture state: a small but join-rich database (every relation
/// populated) reused across trials — regenerating it per trial would
/// dominate the suite's runtime without adding coverage, since the
/// randomness that matters (profiles, queries, K/L) is per-trial.
class ExecDifferentialTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    MovieDbConfig config;
    config.num_movies = 120;
    config.num_actors = 80;
    config.num_directors = 25;
    config.num_theatres = 6;
    config.num_regions = 4;
    config.num_genres = 8;
    config.num_days = 4;
    config.plays_per_theatre_per_day = 2;
    config.seed = 20260809;
    auto db = GenerateMovieDatabase(config);
    ASSERT_TRUE(db.ok()) << db.status();
    db_ = new Database(std::move(db).value());
    schema_ = new Schema(MovieSchema());
    auto pools = MovieCandidatePools(*db_);
    ASSERT_TRUE(pools.ok()) << pools.status();
    pools_ = new std::vector<CandidatePool>(std::move(pools).value());
  }

  static void TearDownTestSuite() {
    delete pools_;
    pools_ = nullptr;
    delete schema_;
    schema_ = nullptr;
    delete db_;
    db_ = nullptr;
  }

  /// One random personalization setup drawn from `seed`: profile, query
  /// and options. Returns false when this seed's profile/query draw is
  /// degenerate (generator could not satisfy the request) — the trial is
  /// skipped, which the caller counts.
  struct Trial {
    SelectQuery query;
    PersonalizationOptions options;
    std::unique_ptr<PersonalizationGraph> graph;
  };
  static bool DrawTrial(uint64_t seed, Trial* out) {
    Rng rng(seed);
    ProfileGeneratorOptions profile_options;
    profile_options.num_selections = 10 + rng.Below(30);
    profile_options.near_fraction = rng.Below(3) == 0 ? 0.3 : 0.0;
    profile_options.negative_fraction = rng.Below(4) == 0 ? 0.2 : 0.0;
    ProfileGenerator generator(schema_, *pools_);
    auto profile = generator.Generate(profile_options, &rng);
    if (!profile.ok()) return false;
    auto graph = PersonalizationGraph::Build(schema_, *profile);
    if (!graph.ok()) return false;

    WorkloadGenerator workload(db_, rng.Next());
    auto query = workload.RandomQuery();
    if (!query.ok()) return false;

    PersonalizationOptions options;
    const size_t k = 1 + rng.Below(6);
    options.criterion = InterestCriterion::TopCount(k);
    options.integration.mandatory_count = rng.Below(2);
    options.integration.min_satisfied = 1 + rng.Below(3);
    if (rng.Below(4) == 0) options.max_negative = 1 + rng.Below(2);

    out->query = std::move(query).value();
    out->options = options;
    out->graph = std::make_unique<PersonalizationGraph>(
        std::move(graph).value());
    return true;
  }

  /// Executes `query` through one engine.
  template <typename Query>
  static Result<ResultSet> Run(const Query& query, ExecStrategy engine,
                               ExecutorStats* stats,
                               const CancelToken* cancel = nullptr) {
    Executor executor(db_);
    executor.set_exec_strategy(engine);
    if (cancel != nullptr) executor.set_cancel_token(cancel);
    return executor.Execute(query, stats);
  }

  /// Asserts tuple == vectorized for one personalized query (both SQ and
  /// MQ where produced). Adds the number of differential comparisons
  /// made to *comparisons (0 when personalization failed for this draw).
  static void CheckTrial(const Trial& trial, uint64_t seed,
                         size_t* comparisons) {
    Personalizer personalizer(trial.graph.get());
    for (IntegrationApproach approach :
         {IntegrationApproach::kSingleQuery,
          IntegrationApproach::kMultipleQueries}) {
      PersonalizationOptions options = trial.options;
      options.approach = approach;
      if (options.max_negative > 0 &&
          approach == IntegrationApproach::kSingleQuery) {
        options.max_negative = 0;  // Dislikes require MQ.
      }
      auto outcome = personalizer.Personalize(trial.query, options);
      if (!outcome.ok()) continue;  // Degenerate draw (e.g. C(K-M,L) cap).

      ExecutorStats tuple_stats;
      ExecutorStats vec_stats;
      Result<ResultSet> tuple_result =
          outcome->sq.has_value()
              ? Run(*outcome->sq, ExecStrategy::kTuple, &tuple_stats)
              : Run(*outcome->mq, ExecStrategy::kTuple, &tuple_stats);
      Result<ResultSet> vec_result =
          outcome->sq.has_value()
              ? Run(*outcome->sq, ExecStrategy::kVectorized, &vec_stats)
              : Run(*outcome->mq, ExecStrategy::kVectorized, &vec_stats);
      ASSERT_EQ(tuple_result.ok(), vec_result.ok()) << "seed=" << seed;
      if (!tuple_result.ok()) continue;
      // Canonicalized equality: rows, order, counts, degrees,
      // satisfactions and the truncated flag all serialize into
      // DebugString.
      EXPECT_EQ(tuple_result->DebugString(100000),
                vec_result->DebugString(100000))
          << "seed=" << seed << " approach="
          << (outcome->sq.has_value() ? "SQ" : "MQ");
      EXPECT_EQ(tuple_result->truncated(), vec_result->truncated())
          << "seed=" << seed;
      EXPECT_TRUE(StatsEqual(tuple_stats, vec_stats))
          << "seed=" << seed << " tuple={" << tuple_stats.disjuncts << ","
          << tuple_stats.bindings << "," << tuple_stats.raw_rows << ","
          << tuple_stats.core_reuses << "} vec={" << vec_stats.disjuncts
          << "," << vec_stats.bindings << "," << vec_stats.raw_rows << ","
          << vec_stats.core_reuses << "}";
      ++*comparisons;
    }
  }

  static Database* db_;
  static Schema* schema_;
  static std::vector<CandidatePool>* pools_;
};

Database* ExecDifferentialTest::db_ = nullptr;
Schema* ExecDifferentialTest::schema_ = nullptr;
std::vector<CandidatePool>* ExecDifferentialTest::pools_ = nullptr;

TEST_F(ExecDifferentialTest, RandomizedPersonalizedQueriesAgree) {
  const size_t trials = TrialsFromEnv(800);
  size_t comparisons = 0;
  for (size_t n = 0; n < trials; ++n) {
    const uint64_t seed = 0x5EED0000ULL + n;
    if ((n % 100) == 0) {
      std::printf("[diff] trial %zu/%zu seed=%llu (%zu comparisons so far)\n",
                  n, trials, static_cast<unsigned long long>(seed),
                  comparisons);
    }
    Trial trial;
    if (!DrawTrial(seed, &trial)) continue;
    CheckTrial(trial, seed, &comparisons);
    if (HasFatalFailure() || HasNonfatalFailure()) {
      std::printf("[diff] FAILED at trial %zu seed=%llu\n", n,
                  static_cast<unsigned long long>(seed));
      return;
    }
  }
  std::printf("[diff] %zu trials -> %zu differential comparisons\n", trials,
              comparisons);
  // The suite is meaningless if the generator mostly produced degenerate
  // draws; demand that the overwhelming majority personalized + executed,
  // and that the headline >= 1000 differential-execution bar is met.
  EXPECT_GE(comparisons, trials);
  if (trials >= 800) EXPECT_GE(comparisons, 1000u);
}

TEST_F(ExecDifferentialTest, KAndLSweepAgrees) {
  // Deterministic K/L grid over one profile/query draw per cell — the
  // paper's fig8/fig9 axes, differentially checked.
  const size_t trials = TrialsFromEnv(800);
  const size_t per_cell = std::max<size_t>(1, trials / 60);
  size_t comparisons = 0;
  for (size_t k = 1; k <= 6; ++k) {
    for (size_t l = 1; l <= 3; ++l) {
      for (size_t rep = 0; rep < per_cell; ++rep) {
        const uint64_t seed = 0xF16000ULL + k * 1000 + l * 100 + rep;
        Trial trial;
        if (!DrawTrial(seed, &trial)) continue;
        trial.options.criterion = InterestCriterion::TopCount(k);
        trial.options.integration.min_satisfied = l;
        CheckTrial(trial, seed, &comparisons);
        if (HasFatalFailure() || HasNonfatalFailure()) {
          std::printf("[diff] FAILED at K=%zu L=%zu seed=%llu\n", k, l,
                      static_cast<unsigned long long>(seed));
          return;
        }
      }
    }
  }
  std::printf("[diff] K/L sweep -> %zu differential comparisons\n",
              comparisons);
  EXPECT_GT(comparisons, 0u);
}

TEST_F(ExecDifferentialTest, CancellationPrefixAgreesAcrossEngines) {
  // Under a poll budget each engine independently guarantees the
  // truncation contract: every produced row is a genuine answer (a
  // sub-multiset of its own full result). The engines poll at different
  // rates, so the cut points differ — the contract, not bitwise equality
  // of partial results, is the cross-engine property.
  const size_t trials = std::max<size_t>(20, TrialsFromEnv(800) / 12);
  size_t checked = 0;
  for (size_t n = 0; n < trials; ++n) {
    const uint64_t seed = 0xCA7C0DEULL + n;
    Trial trial;
    if (!DrawTrial(seed, &trial)) continue;
    Personalizer personalizer(trial.graph.get());
    PersonalizationOptions options = trial.options;
    options.approach = IntegrationApproach::kSingleQuery;
    options.max_negative = 0;
    auto outcome = personalizer.Personalize(trial.query, options);
    if (!outcome.ok() || !outcome->sq.has_value()) continue;

    for (ExecStrategy engine :
         {ExecStrategy::kTuple, ExecStrategy::kVectorized}) {
      ExecutorStats full_stats;
      auto full = Run(*outcome->sq, engine, &full_stats);
      ASSERT_TRUE(full.ok()) << "seed=" << seed;
      for (int64_t budget : {0, 1, 3, 7, 19, 53, 211}) {
        CancelToken token;
        token.set_poll_budget(budget);
        ExecutorStats cut_stats;
        auto cut = Run(*outcome->sq, engine, &cut_stats, &token);
        ASSERT_TRUE(cut.ok()) << "seed=" << seed << " budget=" << budget;
        EXPECT_TRUE(SubMultiset(cut->rows(), full->rows()))
            << "seed=" << seed << " budget=" << budget << " engine="
            << (engine == ExecStrategy::kTuple ? "tuple" : "vec");
        if (!cut->truncated()) {
          EXPECT_EQ(cut->DebugString(100000), full->DebugString(100000))
              << "seed=" << seed << " budget=" << budget;
        }
      }
    }
    ++checked;
    if (HasFatalFailure() || HasNonfatalFailure()) {
      std::printf("[diff] FAILED cancellation at seed=%llu\n",
                  static_cast<unsigned long long>(seed));
      return;
    }
  }
  std::printf("[diff] cancellation sweep over %zu personalized queries\n",
              checked);
  EXPECT_GT(checked, 0u);
}

TEST_F(ExecDifferentialTest, ChaosFaultHitsBothEnginesIdentically) {
  // Arm the exec.disjunct fault site deterministically: both engines
  // call QP_FAULT_POINT from the same shared BuildConjunct, so the Nth
  // disjunct of a query faults identically regardless of engine — the
  // error (or, for later disjuncts, the identical partial result) must
  // match.
#ifdef QP_FAULTS_DISABLED
  GTEST_SKIP() << "fault injection compiled out";
#endif
  const size_t trials = std::max<size_t>(20, TrialsFromEnv(800) / 12);
  size_t checked = 0;
  for (size_t n = 0; n < trials; ++n) {
    const uint64_t seed = 0xC4A05ULL + n;
    Trial trial;
    if (!DrawTrial(seed, &trial)) continue;
    Personalizer personalizer(trial.graph.get());
    PersonalizationOptions options = trial.options;
    options.approach = IntegrationApproach::kMultipleQueries;
    auto outcome = personalizer.Personalize(trial.query, options);
    if (!outcome.ok() || !outcome->mq.has_value()) continue;

    for (uint64_t nth : {1u, 2u, 3u}) {
      auto run_faulted = [&](ExecStrategy engine) {
        ScopedFaultInjection injection(seed);
        FaultRule rule;
        rule.fire_on_nth = nth;
        rule.max_fires = 1;
        rule.mode = FaultMode::kError;
        FaultHub::Global()->SetRule("exec.disjunct", rule);
        ExecutorStats stats;
        return Run(*outcome->mq, engine, &stats);
      };
      auto tuple_result = run_faulted(ExecStrategy::kTuple);
      auto vec_result = run_faulted(ExecStrategy::kVectorized);
      ASSERT_EQ(tuple_result.ok(), vec_result.ok())
          << "seed=" << seed << " nth=" << nth;
      if (tuple_result.ok()) {
        EXPECT_EQ(tuple_result->DebugString(100000),
                  vec_result->DebugString(100000))
            << "seed=" << seed << " nth=" << nth;
      } else {
        EXPECT_EQ(tuple_result.status().code(), vec_result.status().code())
            << "seed=" << seed << " nth=" << nth;
      }
    }
    ++checked;
    if (HasFatalFailure() || HasNonfatalFailure()) {
      std::printf("[diff] FAILED chaos at seed=%llu\n",
                  static_cast<unsigned long long>(seed));
      return;
    }
  }
  std::printf("[diff] chaos sweep over %zu personalized queries\n", checked);
  EXPECT_GT(checked, 0u);
}

}  // namespace
}  // namespace qp
