#include "qp/exec/result.h"

#include "gtest/gtest.h"

namespace qp {
namespace {

Row R(const char* s) { return {Value::Str(s)}; }

TEST(RowHashTest, EqualRowsHashEqual) {
  RowHash hash;
  EXPECT_EQ(hash({Value::Int(1), Value::Str("a")}),
            hash({Value::Int(1), Value::Str("a")}));
  // Cross-type numeric equality implies equal hashes.
  EXPECT_EQ(hash({Value::Int(2)}), hash({Value::Real(2.0)}));
}

TEST(RowEqTest, ComparesElementwise) {
  RowEq eq;
  EXPECT_TRUE(eq({Value::Int(1)}, {Value::Int(1)}));
  EXPECT_FALSE(eq({Value::Int(1)}, {Value::Int(2)}));
  EXPECT_FALSE(eq({Value::Int(1)}, {Value::Int(1), Value::Int(1)}));
  EXPECT_TRUE(eq({}, {}));
}

TEST(ResultSetTest, BasicAccessors) {
  ResultSet rs({"x"});
  EXPECT_EQ(rs.columns(), (std::vector<std::string>{"x"}));
  EXPECT_EQ(rs.num_rows(), 0u);
  EXPECT_FALSE(rs.has_ranking());
  rs.AddRow(R("a"));
  EXPECT_EQ(rs.num_rows(), 1u);
  EXPECT_TRUE(rs.Contains(R("a")));
  EXPECT_FALSE(rs.Contains(R("b")));
}

TEST(ResultSetTest, CanonicalizeSortsByValue) {
  ResultSet rs({"x"});
  rs.AddRow(R("c"));
  rs.AddRow(R("a"));
  rs.AddRow(R("b"));
  rs.Canonicalize();
  EXPECT_EQ(rs.row(0), R("a"));
  EXPECT_EQ(rs.row(1), R("b"));
  EXPECT_EQ(rs.row(2), R("c"));
}

TEST(ResultSetTest, CanonicalizeRankedSortsByDegreeThenValue) {
  ResultSet rs({"x"});
  rs.AddRankedRow(R("low"), 1, 0.2);
  rs.AddRankedRow(R("zz_high"), 3, 0.9);
  rs.AddRankedRow(R("aa_high"), 2, 0.9);
  rs.Canonicalize();
  EXPECT_EQ(rs.row(0), R("zz_high"));  // Tie on degree -> count desc first,
  EXPECT_EQ(rs.row(1), R("aa_high"));  // then value order.
  EXPECT_EQ(rs.row(2), R("low"));
  EXPECT_EQ(rs.counts()[0], 3u);  // Annotations permuted with the rows.
  EXPECT_EQ(rs.counts()[1], 2u);
  EXPECT_DOUBLE_EQ(rs.degrees()[2], 0.2);
}

TEST(ResultSetTest, SatisfactionDefaultsToOne) {
  ResultSet rs({"x"});
  rs.AddRow(R("a"));
  EXPECT_FALSE(rs.has_satisfactions());
  EXPECT_DOUBLE_EQ(rs.satisfaction(0), 1.0);
  rs.set_satisfactions({0.25});
  EXPECT_TRUE(rs.has_satisfactions());
  EXPECT_DOUBLE_EQ(rs.satisfaction(0), 0.25);
}

TEST(ResultSetTest, CanonicalizePermutesSatisfactions) {
  ResultSet rs({"x"});
  rs.AddRow(R("b"));
  rs.AddRow(R("a"));
  rs.set_satisfactions({0.5, 0.9});
  rs.Canonicalize();
  EXPECT_EQ(rs.row(0), R("a"));
  EXPECT_DOUBLE_EQ(rs.satisfaction(0), 0.9);
  EXPECT_DOUBLE_EQ(rs.satisfaction(1), 0.5);
}

TEST(ResultSetTest, DebugStringFormat) {
  ResultSet rs({"MV.title"});
  rs.AddRankedRow(R("The Quiet Comedy"), 3, 0.9894);
  std::string dump = rs.DebugString();
  EXPECT_NE(dump.find("MV.title\t#prefs\tdegree"), std::string::npos);
  EXPECT_NE(dump.find("'The Quiet Comedy'\t3\t0.9894"), std::string::npos);
}

TEST(ResultSetTest, DebugStringTruncates) {
  ResultSet rs({"x"});
  for (int i = 0; i < 10; ++i) rs.AddRow({Value::Int(i)});
  std::string dump = rs.DebugString(3);
  EXPECT_NE(dump.find("... (7 more)"), std::string::npos);
}

TEST(ResultSetTest, TruncateWithSatisfactions) {
  ResultSet rs({"x"});
  rs.AddRow(R("a"));
  rs.AddRow(R("b"));
  rs.set_satisfactions({0.1, 0.2});
  rs.Truncate(1);
  EXPECT_EQ(rs.num_rows(), 1u);
  EXPECT_TRUE(rs.has_satisfactions());
  EXPECT_DOUBLE_EQ(rs.satisfaction(0), 0.1);
}

}  // namespace
}  // namespace qp
