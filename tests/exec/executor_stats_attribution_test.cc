// Regression tests for ExecutorStats attribution: `disjuncts` must
// count one unit per conjunctive block *per part*, independent of which
// shared-core strategy (naive recursion, drive, merge) ran the part, and
// repeated / recursive executions must accumulate linearly — the
// shared-core residue paths once under-counted by attributing drive and
// merge residues to the core instead of their parts. The qp_exec_*
// registry mirrors and the "execution" trace span must report the same
// deltas as the caller's stats struct.

#include "common/test_util.h"
#include "gtest/gtest.h"
#include "qp/core/personalizer.h"
#include "qp/data/movie_db.h"
#include "qp/data/paper_example.h"
#include "qp/obs/metrics.h"
#include "qp/obs/trace.h"

namespace qp {
namespace {

PersonalizationOutcome PaperOutcome() {
  Schema schema = MovieSchema();
  auto graph = PersonalizationGraph::Build(&schema, JulieProfile());
  EXPECT_TRUE(graph.ok());
  Personalizer personalizer(&*graph);
  PersonalizationOptions options;
  options.criterion = InterestCriterion::TopCount(3);
  options.integration.min_satisfied = 2;
  auto outcome = personalizer.Personalize(TonightQuery(), options);
  EXPECT_TRUE(outcome.ok());
  return std::move(outcome).value();
}

TEST(ExecutorStatsAttributionTest, DisjunctCountIsStrategyIndependent) {
  auto db = BuildPaperDatabase();
  ASSERT_TRUE(db.ok());
  PersonalizationOutcome outcome = PaperOutcome();
  ASSERT_TRUE(outcome.mq.has_value());
  const size_t parts = outcome.mq->parts().size();
  ASSERT_GT(parts, 1u);

  Executor with(&*db);
  Executor without(&*db);
  without.set_shared_core(false);

  ExecutorStats with_stats;
  ExecutorStats without_stats;
  ASSERT_TRUE(with.Execute(*outcome.mq, &with_stats).ok());
  ASSERT_TRUE(without.Execute(*outcome.mq, &without_stats).ok());

  // Every part is one conjunctive block. Without the shared core each
  // part runs from scratch: exactly one disjunct per part.
  EXPECT_EQ(without_stats.disjuncts, parts);
  // With the shared core, drive/merge residues still count one disjunct
  // for their part (the regression: they used to be silent), and the
  // core materialization adds exactly one more when any part reused it.
  ASSERT_GE(with_stats.core_reuses, 1u);
  EXPECT_EQ(with_stats.disjuncts, parts + 1);
}

TEST(ExecutorStatsAttributionTest, SinglePartCompoundCountsOneDisjunct) {
  auto db = BuildPaperDatabase();
  ASSERT_TRUE(db.ok());
  CompoundQuery compound;
  SelectQuery part = TonightQuery();
  part.set_distinct(true);
  compound.AddPart(std::move(part), 0.9);

  Executor executor(&*db);
  ExecutorStats stats;
  ASSERT_TRUE(executor.Execute(compound, &stats).ok());
  EXPECT_EQ(stats.core_reuses, 0u);
  EXPECT_EQ(stats.disjuncts, 1u);
}

TEST(ExecutorStatsAttributionTest, RepeatedExecutionAccumulatesLinearly) {
  auto db = BuildPaperDatabase();
  ASSERT_TRUE(db.ok());
  PersonalizationOutcome outcome = PaperOutcome();
  ASSERT_TRUE(outcome.mq.has_value());

  Executor executor(&*db);
  ExecutorStats once;
  ASSERT_TRUE(executor.Execute(*outcome.mq, &once).ok());
  ASSERT_GT(once.disjuncts, 0u);
  ASSERT_GT(once.bindings, 0u);

  // A second run into the same struct must add exactly the same deltas —
  // no double-counting between the public wrapper and the recursive
  // frames it delegates to.
  ExecutorStats twice = once;
  ASSERT_TRUE(executor.Execute(*outcome.mq, &twice).ok());
  EXPECT_EQ(twice.disjuncts, 2 * once.disjuncts);
  EXPECT_EQ(twice.bindings, 2 * once.bindings);
  EXPECT_EQ(twice.raw_rows, 2 * once.raw_rows);
  EXPECT_EQ(twice.core_reuses, 2 * once.core_reuses);
}

TEST(ExecutorStatsAttributionTest, VectorizedEngineReportsIdenticalStats) {
  // The count model is engine-independent: the vectorized batch engine
  // must attribute disjuncts/bindings/raw_rows/core_reuses at exactly
  // the sites the tuple engine does, across naive, drive and merge
  // residue strategies and with the shared core disabled.
  auto db = BuildPaperDatabase();
  ASSERT_TRUE(db.ok());
  PersonalizationOutcome outcome = PaperOutcome();
  ASSERT_TRUE(outcome.mq.has_value());
  const size_t parts = outcome.mq->parts().size();

  for (bool shared_core : {true, false}) {
    Executor tuple(&*db);
    tuple.set_exec_strategy(ExecStrategy::kTuple);
    tuple.set_shared_core(shared_core);
    Executor vec(&*db);
    vec.set_exec_strategy(ExecStrategy::kVectorized);
    vec.set_shared_core(shared_core);

    ExecutorStats tuple_stats;
    ExecutorStats vec_stats;
    ASSERT_TRUE(tuple.Execute(*outcome.mq, &tuple_stats).ok());
    ASSERT_TRUE(vec.Execute(*outcome.mq, &vec_stats).ok());

    EXPECT_EQ(vec_stats.disjuncts, tuple_stats.disjuncts)
        << "shared_core=" << shared_core;
    EXPECT_EQ(vec_stats.bindings, tuple_stats.bindings)
        << "shared_core=" << shared_core;
    EXPECT_EQ(vec_stats.raw_rows, tuple_stats.raw_rows)
        << "shared_core=" << shared_core;
    EXPECT_EQ(vec_stats.core_reuses, tuple_stats.core_reuses)
        << "shared_core=" << shared_core;
    // And the absolute count model still holds on the vectorized path.
    if (shared_core) {
      ASSERT_GE(vec_stats.core_reuses, 1u);
      EXPECT_EQ(vec_stats.disjuncts, parts + 1);
    } else {
      EXPECT_EQ(vec_stats.disjuncts, parts);
    }
  }
}

TEST(ExecutorStatsAttributionTest, RegistryAndTraceMirrorStatsDeltas) {
  auto db = BuildPaperDatabase();
  ASSERT_TRUE(db.ok());
  PersonalizationOutcome outcome = PaperOutcome();
  ASSERT_TRUE(outcome.mq.has_value());

  obs::MetricsRegistry registry;
  obs::RequestTrace trace;
  Executor executor(&*db);
  executor.BindMetrics(&registry);
  executor.set_trace(&trace);

  ExecutorStats stats;
  ASSERT_TRUE(executor.Execute(*outcome.mq, &stats).ok());

  EXPECT_EQ(registry.counter("qp_exec_disjuncts_total")->Value(),
            stats.disjuncts);
  EXPECT_EQ(registry.counter("qp_exec_bindings_total")->Value(),
            stats.bindings);
  EXPECT_EQ(registry.counter("qp_exec_raw_rows_total")->Value(),
            stats.raw_rows);
  EXPECT_EQ(registry.counter("qp_exec_core_reuses_total")->Value(),
            stats.core_reuses);

  if (obs::kTracingCompiledIn) {
    const obs::TraceSpan* span = trace.FindSpan("execution");
    ASSERT_NE(span, nullptr);
    EXPECT_EQ(span->counter("disjuncts"), stats.disjuncts);
    EXPECT_EQ(span->counter("bindings"), stats.bindings);
    EXPECT_EQ(span->counter("core_reuses"), stats.core_reuses);
    // One "part" child span per MQ part.
    size_t part_spans = 0;
    for (const obs::TraceSpan& s : trace.spans()) {
      if (s.name == "part") ++part_spans;
    }
    EXPECT_EQ(part_spans, outcome.mq->parts().size());
  }

  // Mirrors accumulate across executions just like the struct does.
  ExecutorStats again;
  executor.set_trace(nullptr);
  ASSERT_TRUE(executor.Execute(*outcome.mq, &again).ok());
  EXPECT_EQ(registry.counter("qp_exec_disjuncts_total")->Value(),
            stats.disjuncts + again.disjuncts);
}

}  // namespace
}  // namespace qp
