// Cancellation-prefix property for the vectorized batch engine,
// mirroring the tuple-path sweep in executor_cancel_test.cc: at every
// poll budget the truncated result must be a sub-multiset of the full
// answer (a stopped batch step discards its in-flight batch, so only
// fully-joined rows surface), and an untruncated run must equal the full
// answer exactly. A chaos case additionally arms the exec.disjunct fault
// site and drives it through the batch loop.

#include <memory>
#include <unordered_map>

#include "common/test_util.h"
#include "gtest/gtest.h"
#include "qp/core/personalizer.h"
#include "qp/data/movie_db.h"
#include "qp/data/paper_example.h"
#include "qp/exec/executor.h"
#include "qp/query/sql_parser.h"
#include "qp/util/deadline.h"
#include "qp/util/fault_hub.h"

namespace qp {
namespace {

bool SubMultiset(const std::vector<Row>& part, const std::vector<Row>& whole) {
  std::unordered_map<Row, int, RowHash, RowEq> counts;
  for (const Row& row : whole) ++counts[row];
  for (const Row& row : part) {
    if (--counts[row] < 0) return false;
  }
  return true;
}

class VectorizedCancelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto db = BuildPaperDatabase();
    ASSERT_TRUE(db.ok()) << db.status();
    db_ = std::make_unique<Database>(std::move(db).value());
  }

  SelectQuery Parse(const std::string& sql) {
    auto query = ParseSelectQuery(sql);
    EXPECT_TRUE(query.ok()) << query.status();
    return std::move(query).value();
  }

  Executor MakeVec(const CancelToken* token = nullptr) {
    Executor executor(db_.get());
    executor.set_exec_strategy(ExecStrategy::kVectorized);
    if (token != nullptr) executor.set_cancel_token(token);
    return executor;
  }

  std::unique_ptr<Database> db_;
};

TEST_F(VectorizedCancelTest, PreCancelledSelectIsEmptyAndTruncated) {
  CancelToken token;
  token.Cancel();
  Executor executor = MakeVec(&token);
  auto result = executor.Execute(Parse("select MV.title from MOVIE MV"));
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->truncated());
  EXPECT_EQ(result->num_rows(), 0u);
}

TEST_F(VectorizedCancelTest, EveryCutIsASubMultisetOfTheFullAnswer) {
  // Two DNF conjuncts over a join: cancellation can land inside a batch
  // materialization, a gather step, between conjuncts, or after both.
  SelectQuery query = Parse(
      "select MV.title from MOVIE MV, GENRE GN where MV.mid=GN.mid and "
      "(GN.genre='comedy' or MV.year=2003)");
  Executor plain = MakeVec();
  auto full = plain.Execute(query);
  ASSERT_TRUE(full.ok());
  ASSERT_GT(full->num_rows(), 0u);

  bool saw_truncated = false;
  bool saw_full = false;
  for (int64_t budget = 0; budget < 400 && !saw_full; ++budget) {
    CancelToken token;
    token.set_poll_budget(budget);
    Executor executor = MakeVec(&token);
    auto cut = executor.Execute(query);
    ASSERT_TRUE(cut.ok()) << "budget " << budget;
    EXPECT_TRUE(SubMultiset(cut->rows(), full->rows()))
        << "budget " << budget << " produced a row the full run did not";
    if (cut->truncated()) {
      saw_truncated = true;
    } else {
      EXPECT_EQ(cut->num_rows(), full->num_rows()) << "budget " << budget;
      saw_full = true;
    }
  }
  EXPECT_TRUE(saw_truncated);
  EXPECT_TRUE(saw_full) << "no budget large enough to finish the run";
}

TEST_F(VectorizedCancelTest, CompoundQueryHonoursTheToken) {
  Schema schema = MovieSchema();
  auto graph = PersonalizationGraph::Build(&schema, JulieProfile());
  ASSERT_TRUE(graph.ok());
  Personalizer personalizer(&*graph);
  PersonalizationOptions options;
  options.criterion = InterestCriterion::TopCount(3);
  auto outcome = personalizer.Personalize(TonightQuery(), options);
  ASSERT_TRUE(outcome.ok());
  ASSERT_TRUE(outcome->mq.has_value());

  Executor plain = MakeVec();
  auto full = plain.Execute(*outcome->mq);
  ASSERT_TRUE(full.ok());
  EXPECT_FALSE(full->truncated());

  CancelToken cancelled;
  cancelled.Cancel();
  Executor executor = MakeVec(&cancelled);
  auto stopped = executor.Execute(*outcome->mq);
  ASSERT_TRUE(stopped.ok());
  EXPECT_TRUE(stopped->truncated());
  EXPECT_EQ(stopped->num_rows(), 0u);

  bool saw_full = false;
  for (int64_t budget = 0; budget < 600 && !saw_full; ++budget) {
    CancelToken token;
    token.set_poll_budget(budget);
    Executor bounded = MakeVec(&token);
    auto cut = bounded.Execute(*outcome->mq);
    ASSERT_TRUE(cut.ok()) << "budget " << budget;
    if (!cut->truncated()) {
      EXPECT_EQ(cut->DebugString(1000), full->DebugString(1000))
          << "budget " << budget;
      saw_full = true;
    } else {
      EXPECT_LE(cut->num_rows(), full->num_rows()) << "budget " << budget;
    }
  }
  EXPECT_TRUE(saw_full) << "no budget large enough to finish the run";
}

TEST_F(VectorizedCancelTest, SharedCoreAndFallbackBothTruncate) {
  Schema schema = MovieSchema();
  auto graph = PersonalizationGraph::Build(&schema, JulieProfile());
  ASSERT_TRUE(graph.ok());
  Personalizer personalizer(&*graph);
  PersonalizationOptions options;
  options.criterion = InterestCriterion::TopCount(3);
  auto outcome = personalizer.Personalize(TonightQuery(), options);
  ASSERT_TRUE(outcome.ok());
  ASSERT_TRUE(outcome->mq.has_value());

  for (bool shared_core : {true, false}) {
    CancelToken token;
    token.set_poll_budget(5);
    Executor executor = MakeVec(&token);
    executor.set_shared_core(shared_core);
    auto cut = executor.Execute(*outcome->mq);
    ASSERT_TRUE(cut.ok()) << "shared_core=" << shared_core;
    EXPECT_TRUE(cut->truncated()) << "shared_core=" << shared_core;
  }
}

TEST_F(VectorizedCancelTest, ChaosFaultSurfacesThroughBatchLoop) {
  // exec.disjunct armed in error mode: the fault fires inside
  // BuildConjunct before the batch loop runs a single step, and must
  // surface as the injected error through the vectorized path (engine
  // parity for chaos dispositions).
#ifdef QP_FAULTS_DISABLED
  GTEST_SKIP() << "fault injection compiled out";
#endif
  SelectQuery query = Parse(
      "select MV.title from MOVIE MV, GENRE GN where MV.mid=GN.mid");

  {
    ScopedFaultInjection chaos(11);
    FaultRule rule;
    rule.fire_on_nth = 1;
    rule.max_fires = 1;
    rule.mode = FaultMode::kError;
    FaultHub::Global()->SetRule("exec.disjunct", rule);
    Executor executor = MakeVec();
    auto result = executor.Execute(query);
    EXPECT_FALSE(result.ok());
    EXPECT_EQ(FaultHub::Global()->fires("exec.disjunct"), 1u);
  }

  // Disarmed again: the same executor path runs clean.
  Executor executor = MakeVec();
  auto result = executor.Execute(query);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->truncated());
}

}  // namespace
}  // namespace qp
