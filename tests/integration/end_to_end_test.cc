// End-to-end pipeline tests: generated database + generated profiles +
// random workload, driven through the Personalizer facade, checking the
// cross-module invariants the paper relies on.

#include "common/test_util.h"
#include "gtest/gtest.h"
#include "qp/core/personalizer.h"
#include "qp/data/movie_db.h"
#include "qp/data/paper_example.h"
#include "qp/data/workload.h"
#include "qp/query/sql_parser.h"
#include "qp/query/sql_writer.h"

namespace qp {
namespace {

using testing_util::SameRows;

class EndToEndTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  void SetUp() override {
    schema_ = MovieSchema();
    MovieDbConfig config;
    config.num_movies = 120;
    config.num_actors = 50;
    config.num_directors = 15;
    config.num_theatres = 8;
    config.num_days = 5;
    config.seed = GetParam();
    auto db = GenerateMovieDatabase(config);
    ASSERT_TRUE(db.ok());
    db_ = std::make_unique<Database>(std::move(db).value());
    auto pools = MovieCandidatePools(*db_);
    ASSERT_TRUE(pools.ok());
    profiles_ = std::make_unique<ProfileGenerator>(&schema_,
                                                   std::move(pools).value());
    workload_ = std::make_unique<WorkloadGenerator>(db_.get(),
                                                    GetParam() * 13 + 3);
  }

  Schema schema_;
  std::unique_ptr<Database> db_;
  std::unique_ptr<ProfileGenerator> profiles_;
  std::unique_ptr<WorkloadGenerator> workload_;
};

TEST_P(EndToEndTest, PipelineInvariantsHoldOnRandomWorkload) {
  Rng rng(GetParam() + 1000);
  Executor executor(db_.get());

  for (int trial = 0; trial < 8; ++trial) {
    ProfileGeneratorOptions options;
    options.num_selections = 20 + rng.Below(30);
    auto profile = profiles_->Generate(options, &rng);
    ASSERT_TRUE(profile.ok());
    // Profiles survive a serialize/parse round trip before use — the
    // personalization pipeline runs off the re-parsed profile, proving
    // the storage format carries everything needed.
    auto reparsed = UserProfile::Parse(profile->Serialize());
    ASSERT_TRUE(reparsed.ok()) << reparsed.status();
    auto graph = PersonalizationGraph::Build(&schema_, *reparsed);
    ASSERT_TRUE(graph.ok());
    Personalizer personalizer(&*graph);

    auto query = workload_->RandomQuery();
    ASSERT_TRUE(query.ok());

    PersonalizationOptions popts;
    size_t k = 1 + rng.Below(8);
    popts.criterion = InterestCriterion::TopCount(k);
    popts.integration.min_satisfied = 1;

    PersonalizationOutcome outcome;
    auto personalized = personalizer.PersonalizeAndExecute(
        *query, popts, *db_, &outcome);
    ASSERT_TRUE(personalized.ok()) << personalized.status();

    // Invariant 1: selected preferences are within K and sorted by
    // degree, all in (0, 1].
    EXPECT_LE(outcome.selected.size(), k);
    for (size_t i = 0; i < outcome.selected.size(); ++i) {
      EXPECT_GT(outcome.selected[i].doi(), 0.0);
      EXPECT_LE(outcome.selected[i].doi(), 1.0);
      if (i > 0) {
        EXPECT_GE(outcome.selected[i - 1].doi(), outcome.selected[i].doi());
      }
    }

    // Invariant 2: with L=1 the personalized result is a subset of the
    // original result (preferences only narrow the answer).
    SelectQuery original_distinct = *query;
    original_distinct.set_distinct(true);
    auto original = executor.Execute(original_distinct);
    ASSERT_TRUE(original.ok());
    for (const Row& row : personalized->rows()) {
      EXPECT_TRUE(original->Contains(row))
          << "personalized row not in original result\n"
          << ToSql(*query);
    }

    // Invariant 3: ranked output is ordered by non-increasing degree and
    // every row satisfies at least L=1 preferences.
    if (personalized->has_ranking()) {
      for (size_t i = 0; i < personalized->num_rows(); ++i) {
        if (i > 0) {
          EXPECT_GE(personalized->degrees()[i - 1],
                    personalized->degrees()[i]);
        }
        if (!outcome.selected.empty()) {
          EXPECT_GE(personalized->counts()[i], 1u);
          EXPECT_LE(personalized->counts()[i], outcome.selected.size());
        }
      }
    }
  }
}

TEST_P(EndToEndTest, IncreasingLShrinksResults) {
  Rng rng(GetParam() + 2000);
  ProfileGeneratorOptions options;
  options.num_selections = 40;
  auto profile = profiles_->Generate(options, &rng);
  ASSERT_TRUE(profile.ok());
  auto graph = PersonalizationGraph::Build(&schema_, *profile);
  ASSERT_TRUE(graph.ok());
  Personalizer personalizer(&*graph);

  auto query = workload_->RandomQuery();
  ASSERT_TRUE(query.ok());

  PersonalizationOptions popts;
  popts.criterion = InterestCriterion::TopCount(6);
  auto k_selected = personalizer.Personalize(*query, popts);
  ASSERT_TRUE(k_selected.ok());
  size_t k = k_selected->selected.size();
  if (k < 2) GTEST_SKIP() << "not enough related preferences";

  size_t previous = SIZE_MAX;
  for (size_t l = 1; l <= k; ++l) {
    popts.integration.min_satisfied = l;
    auto result = personalizer.PersonalizeAndExecute(*query, popts, *db_);
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_LE(result->num_rows(), previous) << "L=" << l;
    previous = result->num_rows();
  }
}

TEST_P(EndToEndTest, IncreasingKGrowsResults) {
  Rng rng(GetParam() + 3000);
  ProfileGeneratorOptions options;
  options.num_selections = 40;
  auto profile = profiles_->Generate(options, &rng);
  ASSERT_TRUE(profile.ok());
  auto graph = PersonalizationGraph::Build(&schema_, *profile);
  ASSERT_TRUE(graph.ok());
  Personalizer personalizer(&*graph);

  auto query = workload_->RandomQuery();
  ASSERT_TRUE(query.ok());

  size_t previous = 0;
  for (size_t k : {1u, 3u, 6u, 10u}) {
    PersonalizationOptions popts;
    popts.criterion = InterestCriterion::TopCount(k);
    popts.integration.min_satisfied = 1;
    auto result = personalizer.PersonalizeAndExecute(*query, popts, *db_);
    ASSERT_TRUE(result.ok()) << result.status();
    // More preferences with L=1 can only widen the disjunction.
    EXPECT_GE(result->num_rows(), previous) << "K=" << k;
    previous = result->num_rows();
  }
}

TEST_P(EndToEndTest, SqMatchesMqThroughFacade) {
  Rng rng(GetParam() + 4000);
  ProfileGeneratorOptions options;
  options.num_selections = 30;
  auto profile = profiles_->Generate(options, &rng);
  ASSERT_TRUE(profile.ok());
  auto graph = PersonalizationGraph::Build(&schema_, *profile);
  ASSERT_TRUE(graph.ok());
  Personalizer personalizer(&*graph);

  auto query = workload_->RandomQuery();
  ASSERT_TRUE(query.ok());

  PersonalizationOptions popts;
  popts.criterion = InterestCriterion::TopCount(4);
  popts.integration.min_satisfied = 1;
  popts.approach = IntegrationApproach::kMultipleQueries;
  auto mq_result = personalizer.PersonalizeAndExecute(*query, popts, *db_);
  popts.approach = IntegrationApproach::kSingleQuery;
  auto sq_result = personalizer.PersonalizeAndExecute(*query, popts, *db_);
  ASSERT_TRUE(mq_result.ok()) << mq_result.status();
  if (!sq_result.ok()) {
    ASSERT_EQ(sq_result.status().code(), StatusCode::kFailedPrecondition);
    GTEST_SKIP() << "conflicting preference set";
  }
  EXPECT_TRUE(SameRows(mq_result->rows(), sq_result->rows()));
}

TEST_P(EndToEndTest, PersonalizedSqlRoundTripsThroughParser) {
  Rng rng(GetParam() + 5000);
  ProfileGeneratorOptions options;
  options.num_selections = 30;
  auto profile = profiles_->Generate(options, &rng);
  ASSERT_TRUE(profile.ok());
  auto graph = PersonalizationGraph::Build(&schema_, *profile);
  ASSERT_TRUE(graph.ok());
  Personalizer personalizer(&*graph);
  auto query = workload_->RandomQuery();
  ASSERT_TRUE(query.ok());

  PersonalizationOptions popts;
  popts.criterion = InterestCriterion::TopCount(5);
  popts.integration.min_satisfied = 1;
  auto outcome = personalizer.Personalize(*query, popts);
  ASSERT_TRUE(outcome.ok()) << outcome.status();

  std::string sql = ToSql(*outcome->mq);
  auto parsed = ParseStatement(sql);
  ASSERT_TRUE(parsed.ok()) << parsed.status() << "\n" << sql;
  ASSERT_TRUE(parsed->is_compound());
  EXPECT_EQ(ToSql(parsed->compound()), sql);
}

TEST_P(EndToEndTest, GeneralizedModelKitchenSink) {
  // Profiles mixing equality, soft (near) and negative preferences,
  // personalized with dislikes enabled in both modes: the pipeline must
  // stay well-formed (no errors, ranked order non-increasing, results a
  // subset of the original, vetoed modes a subset of penalty mode).
  Rng rng(GetParam() + 6000);
  Executor executor(db_.get());

  for (int trial = 0; trial < 6; ++trial) {
    ProfileGeneratorOptions options;
    options.num_selections = 30;
    options.near_fraction = 0.5;
    options.negative_fraction = 0.25;
    auto profile = profiles_->Generate(options, &rng);
    ASSERT_TRUE(profile.ok());
    // Storage round trip with the extended entry kinds.
    auto reparsed = UserProfile::Parse(profile->Serialize());
    ASSERT_TRUE(reparsed.ok()) << reparsed.status();
    auto graph = PersonalizationGraph::Build(&schema_, *reparsed);
    ASSERT_TRUE(graph.ok()) << graph.status();
    Personalizer personalizer(&*graph);

    auto query = workload_->RandomQuery();
    ASSERT_TRUE(query.ok());

    PersonalizationOptions popts;
    popts.criterion = InterestCriterion::TopCount(4);
    popts.integration.min_satisfied = 1;
    popts.max_negative = 3;

    popts.integration.negative_mode = NegativeMode::kPenalty;
    auto penalty = personalizer.PersonalizeAndExecute(*query, popts, *db_);
    ASSERT_TRUE(penalty.ok()) << penalty.status();

    popts.integration.negative_mode = NegativeMode::kVeto;
    auto veto = personalizer.PersonalizeAndExecute(*query, popts, *db_);
    ASSERT_TRUE(veto.ok()) << veto.status();

    SelectQuery distinct_original = *query;
    distinct_original.set_distinct(true);
    auto original = executor.Execute(distinct_original);
    ASSERT_TRUE(original.ok());

    EXPECT_LE(veto->num_rows(), penalty->num_rows());
    for (const Row& row : veto->rows()) {
      EXPECT_TRUE(penalty->Contains(row));
    }
    for (const Row& row : penalty->rows()) {
      EXPECT_TRUE(original->Contains(row));
    }
    for (size_t i = 1; i < penalty->num_rows(); ++i) {
      EXPECT_GE(penalty->degrees()[i - 1], penalty->degrees()[i]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EndToEndTest,
                         ::testing::Values(1001, 2002, 3003));

TEST(PaperScenarioTest, JulieAndRobDiffer) {
  auto db = BuildPaperDatabase();
  ASSERT_TRUE(db.ok());
  Schema schema = MovieSchema();
  auto julie_graph = PersonalizationGraph::Build(&schema, JulieProfile());
  auto rob_graph = PersonalizationGraph::Build(&schema, RobProfile());
  ASSERT_TRUE(julie_graph.ok());
  ASSERT_TRUE(rob_graph.ok());

  PersonalizationOptions popts;
  popts.criterion = InterestCriterion::TopCount(2);
  popts.integration.min_satisfied = 1;

  Personalizer julie(&*julie_graph);
  Personalizer rob(&*rob_graph);
  auto julie_result = julie.PersonalizeAndExecute(TonightQuery(), popts, *db);
  auto rob_result = rob.PersonalizeAndExecute(TonightQuery(), popts, *db);
  ASSERT_TRUE(julie_result.ok());
  ASSERT_TRUE(rob_result.ok());
  EXPECT_FALSE(SameRows(julie_result->rows(), rob_result->rows()));
}

}  // namespace
}  // namespace qp
