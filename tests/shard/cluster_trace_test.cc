// End-to-end cluster tracing: one request through the sharded front end
// must produce ONE connected span tree — a single trace_id shared by the
// router fragment and the shard fragment, the router span parenting the
// shard span, and the pipeline spans (selection, execution, storage)
// hanging underneath. Also: head sampling at the router edge (rate 0
// traces nothing; tail rules resurrect shed requests), and batch fan-out
// producing one router fragment per request.

#include <memory>
#include <string>
#include <vector>

#include "common/test_util.h"
#include "gtest/gtest.h"
#include "qp/data/movie_db.h"
#include "qp/data/workload.h"
#include "qp/obs/trace.h"
#include "qp/pref/profile_generator.h"
#include "qp/shard/sharded_service.h"
#include "qp/storage/fault_injection.h"

namespace qp {
namespace shard {
namespace {

class ClusterTraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!obs::kTracingCompiledIn) {
      GTEST_SKIP() << "observability compiled out";
    }
    MovieDbConfig config;
    config.num_movies = 200;
    config.num_actors = 100;
    config.num_directors = 30;
    config.num_theatres = 6;
    config.num_days = 3;
    config.seed = 20040308;
    QP_ASSERT_OK_AND_ASSIGN(Database db, GenerateMovieDatabase(config));
    db_ = std::make_unique<Database>(std::move(db));
    QP_ASSERT_OK_AND_ASSIGN(auto pools, MovieCandidatePools(*db_));
    generator_ = std::make_unique<ProfileGenerator>(&db_->schema(),
                                                    std::move(pools));
  }

  ShardedOptions Options(size_t num_shards) {
    ShardedOptions options;
    options.num_shards = num_shards;
    options.dir = "cluster";
    options.service.num_workers = 2;
    options.service.storage.fs = &fs_;
    options.service.storage.background_compaction = false;
    return options;
  }

  std::unique_ptr<ShardedPersonalizationService> MustOpen(
      ShardedOptions options) {
    auto sharded_or =
        ShardedPersonalizationService::Open(db_.get(), std::move(options));
    EXPECT_TRUE(sharded_or.ok()) << sharded_or.status();
    return sharded_or.ok() ? std::move(sharded_or).value() : nullptr;
  }

  UserProfile MakeProfile(uint64_t seed) {
    Rng rng(seed);
    ProfileGeneratorOptions options;
    options.num_selections = 20;
    auto profile = generator_->Generate(options, &rng);
    EXPECT_TRUE(profile.ok()) << profile.status();
    return std::move(profile).value();
  }

  PersonalizationRequest Request(const std::string& user_id,
                                 const SelectQuery& query) {
    PersonalizationRequest request;
    request.user_id = user_id;
    request.query = query;
    request.options.criterion = InterestCriterion::TopCount(4);
    return request;
  }

  SelectQuery AnyQuery() {
    WorkloadGenerator workload(db_.get(), 9);
    auto queries = workload.RandomQueries(1);
    EXPECT_TRUE(queries.ok()) << queries.status();
    return std::move(queries).value()[0];
  }

  std::unique_ptr<Database> db_;
  std::unique_ptr<ProfileGenerator> generator_;
  storage::FaultInjectingFileSystem fs_;
};

/// Finds the span named `name` across every fragment; returns the
/// owning fragment too.
const obs::TraceSpan* FindSpan(
    const std::vector<std::shared_ptr<const obs::RequestTrace>>& fragments,
    std::string_view name,
    const obs::RequestTrace** owner = nullptr) {
  for (const auto& fragment : fragments) {
    if (const obs::TraceSpan* span = fragment->FindSpan(name)) {
      if (owner != nullptr) *owner = fragment.get();
      return span;
    }
  }
  return nullptr;
}

TEST_F(ClusterTraceTest, OneRequestYieldsOneConnectedSpanTree) {
  auto sharded = MustOpen(Options(2));
  ASSERT_NE(sharded, nullptr);
  obs::FragmentTraceSink sink;
  sharded->set_trace_sink(&sink);
  QP_ASSERT_OK(sharded->PutProfile("julie", MakeProfile(1)));

  PersonalizationResponse response =
      sharded->Personalize(Request("julie", AnyQuery()));
  QP_ASSERT_OK(response.status);

  // Exactly one trace, in >= 2 fragments (router + shard).
  std::vector<uint64_t> trace_ids = sink.TraceIds();
  ASSERT_EQ(trace_ids.size(), 1u);
  auto fragments = sink.Fragments(trace_ids[0]);
  ASSERT_GE(fragments.size(), 2u);
  for (const auto& fragment : fragments) {
    EXPECT_EQ(fragment->trace_id(), trace_ids[0]);
  }

  // The router span is the root of the whole tree...
  const obs::RequestTrace* router_fragment = nullptr;
  const obs::TraceSpan* router_span =
      FindSpan(fragments, "router", &router_fragment);
  ASSERT_NE(router_span, nullptr);
  ASSERT_NE(router_fragment, nullptr);
  EXPECT_EQ(router_fragment->root_parent_span_id(), 0u);
  EXPECT_EQ(router_span->parent_span_id, 0u);
  EXPECT_EQ(router_span->counter("shard"), sharded->ShardFor("julie"));

  // ...the shard fragment hangs under the router span...
  const obs::RequestTrace* shard_fragment = nullptr;
  const obs::TraceSpan* shard_span =
      FindSpan(fragments, "shard", &shard_fragment);
  ASSERT_NE(shard_span, nullptr);
  ASSERT_NE(shard_fragment, nullptr);
  EXPECT_NE(shard_fragment, router_fragment);
  EXPECT_EQ(shard_fragment->root_parent_span_id(), router_span->span_id);
  EXPECT_EQ(shard_span->parent_span_id, router_span->span_id);
  EXPECT_EQ(shard_span->counter("id"), sharded->ShardFor("julie"));

  // ...and the pipeline spans live inside the shard fragment, nested
  // under the shard span (selection / execution / storage lookups).
  for (const char* name :
       {"profile_lookup", "preference_selection", "integration"}) {
    const obs::TraceSpan* span = shard_fragment->FindSpan(name);
    ASSERT_NE(span, nullptr) << name;
    EXPECT_GT(span->depth, shard_span->depth) << name;
  }
}

TEST_F(ClusterTraceTest, ZeroHeadRateTracesNothing) {
  ShardedOptions options = Options(2);
  options.service.sampling.head_rate = 0.0;
  // Every tail rule off: nothing should survive.
  options.service.sampling.keep_shed = false;
  options.service.sampling.keep_deadline_exceeded = false;
  options.service.sampling.keep_degraded = false;
  options.service.sampling.keep_errors = false;
  options.service.sampling.keep_fault_fired = false;
  auto sharded = MustOpen(std::move(options));
  ASSERT_NE(sharded, nullptr);
  obs::FragmentTraceSink sink;
  sharded->set_trace_sink(&sink);
  QP_ASSERT_OK(sharded->PutProfile("julie", MakeProfile(1)));

  for (int i = 0; i < 8; ++i) {
    QP_ASSERT_OK(sharded->Personalize(Request("julie", AnyQuery())).status);
  }
  EXPECT_TRUE(sink.TraceIds().empty());
}

TEST_F(ClusterTraceTest, BatchFanOutSharesNothingAcrossRequests) {
  auto sharded = MustOpen(Options(2));
  ASSERT_NE(sharded, nullptr);
  obs::FragmentTraceSink sink(128);
  sharded->set_trace_sink(&sink);
  SelectQuery query = AnyQuery();
  std::vector<PersonalizationRequest> requests;
  for (int i = 0; i < 6; ++i) {
    std::string user = "user" + std::to_string(i);
    QP_ASSERT_OK(sharded->PutProfile(user, MakeProfile(i + 1)));
    requests.push_back(Request(user, query));
  }
  auto responses = sharded->PersonalizeBatchAndWait(std::move(requests));
  ASSERT_EQ(responses.size(), 6u);
  for (const auto& response : responses) QP_ASSERT_OK(response.status);

  // One distinct trace per request, each a connected router+shard tree.
  std::vector<uint64_t> trace_ids = sink.TraceIds();
  EXPECT_EQ(trace_ids.size(), 6u);
  for (uint64_t trace_id : trace_ids) {
    auto fragments = sink.Fragments(trace_id);
    ASSERT_GE(fragments.size(), 2u) << std::hex << trace_id;
    const obs::TraceSpan* router_span = FindSpan(fragments, "router");
    const obs::TraceSpan* shard_span = FindSpan(fragments, "shard");
    ASSERT_NE(router_span, nullptr);
    ASSERT_NE(shard_span, nullptr);
    EXPECT_EQ(shard_span->parent_span_id, router_span->span_id);
  }
}

TEST_F(ClusterTraceTest, UnsampledRequestsStillServe) {
  // head_rate 0 with a sink attached must not perturb results: the
  // response matches an untraced cluster's row for row.
  SelectQuery query = AnyQuery();
  UserProfile profile = MakeProfile(1);

  ShardedOptions untraced = Options(2);
  untraced.dir = "cluster-untraced";
  auto baseline = MustOpen(std::move(untraced));
  ASSERT_NE(baseline, nullptr);
  QP_ASSERT_OK(baseline->PutProfile("julie", profile));
  PersonalizationResponse expected =
      baseline->Personalize(Request("julie", query));
  QP_ASSERT_OK(expected.status);

  ShardedOptions traced = Options(2);
  traced.service.sampling.head_rate = 0.0;
  auto sharded = MustOpen(std::move(traced));
  ASSERT_NE(sharded, nullptr);
  obs::FragmentTraceSink sink;
  sharded->set_trace_sink(&sink);
  QP_ASSERT_OK(sharded->PutProfile("julie", profile));
  PersonalizationResponse response =
      sharded->Personalize(Request("julie", query));
  QP_ASSERT_OK(response.status);
  EXPECT_EQ(response.results.num_rows(), expected.results.num_rows());
  EXPECT_TRUE(sink.TraceIds().empty());
}

}  // namespace
}  // namespace shard
}  // namespace qp
