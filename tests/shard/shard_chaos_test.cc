// Shard chaos suite: seeded kill/recover schedules and router fault
// injection against a live sharded cluster under concurrent traffic and
// mutations. The contract per trial:
//
//   - survivors serve at full fidelity while other shards are down: a
//     golden user on a never-killed shard always gets a clean answer;
//   - requests touching a dead shard are shed with Status::Unavailable —
//     never a wrong answer, never a crash, never a hang;
//   - zero lost acknowledged mutations: after recovering every shard,
//     the cluster state equals the shadow of every acknowledged
//     Put/Remove — and so does a full close-and-reopen of the cluster
//     directory tree.
//
// Trial count comes from $QP_SHARD_CHAOS_TRIALS (default 8). Every trial
// prints its seed first so a failure names the exact replay.

#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/test_util.h"
#include "gtest/gtest.h"
#include "qp/data/movie_db.h"
#include "qp/data/workload.h"
#include "qp/pref/profile_generator.h"
#include "qp/shard/sharded_service.h"
#include "qp/storage/fault_injection.h"
#include "qp/storage/record.h"
#include "qp/util/fault_hub.h"
#include "qp/util/random.h"

namespace qp {
namespace shard {
namespace {

int TrialCount() {
  const char* env = std::getenv("QP_SHARD_CHAOS_TRIALS");
  if (env == nullptr) return 8;
  int trials = std::atoi(env);
  return trials > 0 ? trials : 8;
}

class ShardChaosTest : public ::testing::Test {
 protected:
  static constexpr size_t kShards = 3;

  void SetUp() override {
    MovieDbConfig config;
    config.num_movies = 120;
    config.num_actors = 60;
    config.num_directors = 20;
    config.num_theatres = 6;
    config.num_days = 3;
    config.seed = 20040308;
    QP_ASSERT_OK_AND_ASSIGN(Database db, GenerateMovieDatabase(config));
    db_ = std::make_unique<Database>(std::move(db));
    QP_ASSERT_OK_AND_ASSIGN(auto pools, MovieCandidatePools(*db_));
    generator_ = std::make_unique<ProfileGenerator>(&db_->schema(),
                                                    std::move(pools));
    WorkloadGenerator workload(db_.get(), 77);
    QP_ASSERT_OK_AND_ASSIGN(queries_, workload.RandomQueries(4));
  }

  ShardedOptions Options(storage::FaultInjectingFileSystem* fs) {
    ShardedOptions options;
    options.num_shards = kShards;
    options.dir = "cluster";
    options.service.num_workers = 2;
    options.service.storage.fs = fs;
    options.service.storage.background_compaction = false;
    // Small hot budget: cold loads (the "shard.load" site) happen under
    // real traffic, not just in targeted unit tests.
    options.service.storage.hot_capacity = 3;
    return options;
  }

  UserProfile MakeProfile(uint64_t seed) {
    Rng rng(seed);
    ProfileGeneratorOptions options;
    options.num_selections = 8;
    auto profile = generator_->Generate(options, &rng);
    EXPECT_TRUE(profile.ok()) << profile.status();
    return profile.ok() ? std::move(profile).value() : UserProfile();
  }

  PersonalizationRequest Request(const std::string& user_id,
                                 size_t query_index) {
    PersonalizationRequest request;
    request.user_id = user_id;
    request.query = queries_[query_index % queries_.size()];
    request.options.criterion = InterestCriterion::TopCount(4);
    request.execute = false;
    return request;
  }

  /// First "<prefix><i>" user id that hashes to `shard`.
  static std::string UserOnShard(const ShardedPersonalizationService& sharded,
                                 const std::string& prefix, size_t shard) {
    for (size_t i = 0; i < 10000; ++i) {
      std::string user_id = prefix + std::to_string(i);
      if (sharded.ShardFor(user_id) == shard) return user_id;
    }
    ADD_FAILURE() << "no " << prefix << "* user hashed to shard " << shard;
    return prefix;
  }

  std::unique_ptr<Database> db_;
  std::unique_ptr<ProfileGenerator> generator_;
  std::vector<SelectQuery> queries_;
};

TEST_F(ShardChaosTest, KillRecoverSchedulesLoseNoAcknowledgedMutation) {
  const int trials = TrialCount();
  const uint64_t base_seed = 0x54a2d;
  for (int trial = 0; trial < trials; ++trial) {
    const uint64_t seed = base_seed + trial;
    std::fprintf(stderr, "[shard-chaos] trial %d seed=%llu\n", trial,
                 static_cast<unsigned long long>(seed));
    SCOPED_TRACE("shard-chaos seed=" + std::to_string(seed));

    storage::FaultInjectingFileSystem fs;
    auto sharded_or =
        ShardedPersonalizationService::Open(db_.get(), Options(&fs));
    ASSERT_TRUE(sharded_or.ok()) << sharded_or.status();
    auto sharded = std::move(sharded_or).value();

    // Shard 0 is never killed; the golden user living there (outside the
    // mutator's u* namespace, so never mutated) must get a clean full
    // answer on every single request of the trial.
    const std::string golden = UserOnShard(*sharded, "golden", 0);
    std::map<std::string, UserProfile> shadow;  // Acknowledged truth.
    {
      UserProfile profile = MakeProfile(seed);
      QP_ASSERT_OK(sharded->PutProfile(golden, profile));
      shadow[golden] = std::move(profile);
    }
    for (size_t i = 0; i < 12; ++i) {
      std::string user = "u" + std::to_string(i);
      UserProfile profile = MakeProfile(seed * 31 + i + 1);
      QP_ASSERT_OK(sharded->PutProfile(user, profile));
      shadow[user] = std::move(profile);
    }

    Rng chaos_rng(seed ^ 0x5eed);
    std::mutex shadow_mutex;
    for (int round = 0; round < 3; ++round) {
      // The kill schedule for this round: a random non-zero subset of
      // the killable shards goes down mid-traffic.
      std::thread killer([&] {
        int kills = 1 + static_cast<int>(chaos_rng.Below(2));
        for (int k = 0; k < kills; ++k) {
          size_t victim = 1 + chaos_rng.Below(kShards - 1);
          EXPECT_TRUE(sharded->KillShard(victim).ok());
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
      });

      // Mutations race the kills; only acknowledged ones enter the
      // shadow. A shed mutation (shard already down) is a clean refusal.
      Rng mutation_rng(seed * 977 + round);
      std::thread mutator([&] {
        for (int m = 0; m < 10; ++m) {
          std::string user = "u" + std::to_string(mutation_rng.Below(12));
          if (mutation_rng.Below(5) == 0) {
            Status removed = sharded->RemoveProfile(user);
            if (removed.ok()) {
              std::lock_guard<std::mutex> lock(shadow_mutex);
              shadow.erase(user);
            } else {
              // Dead shard (shed) or an earlier Remove won (NotFound).
              EXPECT_TRUE(removed.code() == StatusCode::kUnavailable ||
                          removed.code() == StatusCode::kNotFound)
                  << removed.message();
            }
          } else {
            UserProfile profile =
                MakeProfile(seed * 131 + round * 17 + m);
            Status put = sharded->PutProfile(user, profile);
            if (put.ok()) {
              std::lock_guard<std::mutex> lock(shadow_mutex);
              shadow[user] = std::move(profile);
            } else {
              EXPECT_EQ(put.code(), StatusCode::kUnavailable)
                  << put.message();
            }
          }
        }
      });

      // Traffic over every user, golden included, while shards die.
      std::vector<PersonalizationRequest> requests;
      for (int i = 0; i < 16; ++i) {
        if (i % 4 == 0) {
          requests.push_back(Request(golden, round * 16 + i));
        } else {
          requests.push_back(
              Request("u" + std::to_string(i % 12), round * 16 + i));
        }
      }
      std::vector<PersonalizationResponse> responses =
          sharded->PersonalizeBatchAndWait(requests);
      killer.join();
      mutator.join();

      ASSERT_EQ(responses.size(), requests.size());
      for (size_t i = 0; i < responses.size(); ++i) {
        if (requests[i].user_id == golden) {
          // The never-killed shard serves at full fidelity throughout.
          ASSERT_TRUE(responses[i].status.ok())
              << "golden user failed during chaos: " << responses[i].status;
          EXPECT_EQ(responses[i].disposition, RequestDisposition::kFull);
        } else if (!responses[i].status.ok()) {
          // Requests that met a dead shard shed cleanly; a removed user
          // is a clean NotFound. Nothing else is acceptable.
          EXPECT_TRUE(
              responses[i].status.code() == StatusCode::kUnavailable ||
              responses[i].status.code() == StatusCode::kNotFound)
              << responses[i].status;
          if (responses[i].status.code() == StatusCode::kUnavailable) {
            EXPECT_EQ(responses[i].disposition, RequestDisposition::kShed);
          }
        }
      }

      // Heal every shard before the next round; recovery replays each
      // dead shard's WAL with no mutations in flight on it.
      for (size_t s = 0; s < kShards; ++s) {
        QP_ASSERT_OK(sharded->RecoverShard(s));
      }
      ASSERT_EQ(sharded->alive_shards(), kShards);
      if (::testing::Test::HasFailure()) break;
    }
    if (::testing::Test::HasFailure()) {
      std::fprintf(stderr, "[shard-chaos] FAILED at seed=%llu\n",
                   static_cast<unsigned long long>(seed));
      return;
    }

    // Zero lost acknowledged mutations: the live cluster equals the
    // shadow exactly...
    size_t population = 0;
    for (size_t s = 0; s < kShards; ++s) {
      population += sharded->Shard(s)->profiles().size();
    }
    EXPECT_EQ(population, shadow.size());
    for (const auto& [user, profile] : shadow) {
      auto snapshot = sharded->GetProfile(user);
      ASSERT_TRUE(snapshot.ok())
          << "acknowledged user " << user << " lost: " << snapshot.status();
      EXPECT_TRUE(storage::ProfilesEqual(*snapshot.value().profile, profile))
          << "acknowledged state of " << user << " diverged";
    }

    // ...and so does a cold restart of the whole cluster from disk.
    sharded.reset();
    auto reopened_or =
        ShardedPersonalizationService::Open(db_.get(), Options(&fs));
    ASSERT_TRUE(reopened_or.ok()) << reopened_or.status();
    auto reopened = std::move(reopened_or).value();
    for (const auto& [user, profile] : shadow) {
      auto snapshot = reopened->GetProfile(user);
      ASSERT_TRUE(snapshot.ok()) << "user " << user << " lost on reopen";
      EXPECT_TRUE(storage::ProfilesEqual(*snapshot.value().profile, profile));
    }
  }
}

TEST_F(ShardChaosTest, RouterFaultSchedulesShedCleanlyAndHeal) {
  const int trials = TrialCount();
  const uint64_t base_seed = 0xf0a17;
  const std::vector<std::string> shard_sites = {"shard.route", "shard.load"};
  for (int trial = 0; trial < trials; ++trial) {
    const uint64_t seed = base_seed + trial;
    std::fprintf(stderr, "[shard-chaos] route trial %d seed=%llu\n", trial,
                 static_cast<unsigned long long>(seed));
    SCOPED_TRACE("route-chaos seed=" + std::to_string(seed));

    storage::FaultInjectingFileSystem fs;
    auto sharded_or =
        ShardedPersonalizationService::Open(db_.get(), Options(&fs));
    ASSERT_TRUE(sharded_or.ok()) << sharded_or.status();
    auto sharded = std::move(sharded_or).value();

    std::map<std::string, UserProfile> shadow;
    for (size_t i = 0; i < 10; ++i) {
      std::string user = "u" + std::to_string(i);
      UserProfile profile = MakeProfile(seed * 31 + i);
      QP_ASSERT_OK(sharded->PutProfile(user, profile));
      shadow[user] = std::move(profile);
    }

    // Read-only traffic under a random shard.route/shard.load schedule:
    // every response resolves, failures are injected ones, nothing is
    // silently wrong (execute=false responses are checked by the cache
    // equivalence tests; here the property is crash-freedom + healing).
    FaultHub::Global()->ArmRandom(seed, shard_sites);
    for (int round = 0; round < 4; ++round) {
      std::vector<PersonalizationRequest> requests;
      for (int i = 0; i < 12; ++i) {
        requests.push_back(
            Request("u" + std::to_string(i % 10), round * 12 + i));
      }
      std::vector<PersonalizationResponse> responses =
          sharded->PersonalizeBatchAndWait(requests);
      ASSERT_EQ(responses.size(), requests.size());
    }
    const uint64_t route_fires = FaultHub::Global()->fires("shard.route");
    const uint64_t load_fires = FaultHub::Global()->fires("shard.load");
    FaultHub::Global()->Reset();

    // Faults gone: every user personalizes cleanly and no acknowledged
    // profile was disturbed by the injected load/route failures.
    for (size_t i = 0; i < 10; ++i) {
      std::string user = "u" + std::to_string(i);
      PersonalizationResponse response =
          sharded->Personalize(Request(user, i));
      ASSERT_TRUE(response.status.ok())
          << user << " after heal: " << response.status;
      auto snapshot = sharded->GetProfile(user);
      ASSERT_TRUE(snapshot.ok()) << snapshot.status();
      EXPECT_TRUE(
          storage::ProfilesEqual(*snapshot.value().profile, shadow[user]));
    }
    std::fprintf(stderr,
                 "[shard-chaos] seed=%llu route_fires=%llu load_fires=%llu\n",
                 static_cast<unsigned long long>(seed),
                 static_cast<unsigned long long>(route_fires),
                 static_cast<unsigned long long>(load_fires));
  }
}

}  // namespace
}  // namespace shard
}  // namespace qp
