// Tiered hot/cold DurableProfileStore tests: bounded residency under a
// hot budget, cold loads that reproduce evicted state byte-identically,
// upsert/remove of cold users, checkpoint merges of hot + cold entries,
// WAL-overlay recovery, and the "shard.load" fault site.

#include <string>
#include <vector>

#include "common/test_util.h"
#include "gtest/gtest.h"
#include "qp/data/movie_db.h"
#include "qp/data/paper_example.h"
#include "qp/storage/durable_profile_store.h"
#include "qp/storage/fault_injection.h"
#include "qp/storage/record.h"
#include "qp/util/fault_hub.h"

namespace qp {
namespace storage {
namespace {

class TieredStoreTest : public ::testing::Test {
 protected:
  TieredStoreTest() : schema_(MovieSchema()) {}

  StorageOptions Options(size_t hot_capacity) {
    StorageOptions options;
    options.dir = "db";
    options.fs = &fs_;
    options.background_compaction = false;
    options.hot_capacity = hot_capacity;
    return options;
  }

  std::unique_ptr<DurableProfileStore> MustOpen(StorageOptions options) {
    auto store_or = DurableProfileStore::Open(&schema_, std::move(options));
    EXPECT_TRUE(store_or.ok()) << store_or.status();
    return store_or.ok() ? std::move(store_or).value() : nullptr;
  }

  /// Alternates the two paper fixtures so neighboring users never
  /// serialize to the same bytes.
  UserProfile ProfileFor(size_t index) {
    return index % 2 == 0 ? JulieProfile() : RobProfile();
  }

  static std::string UserId(size_t index) {
    return "user" + std::to_string(index);
  }

  Schema schema_;
  FaultInjectingFileSystem fs_;
};

TEST_F(TieredStoreTest, ResidencyIsBoundedByHotCapacity) {
  constexpr size_t kUsers = 10;
  constexpr size_t kCapacity = 3;
  auto store = MustOpen(Options(kCapacity));
  ASSERT_NE(store, nullptr);
  for (size_t i = 0; i < kUsers; ++i) {
    QP_ASSERT_OK(store->Put(UserId(i), ProfileFor(i)));
    EXPECT_LE(store->tier_stats().hot_resident, kCapacity);
  }
  TierStats stats = store->tier_stats();
  EXPECT_TRUE(stats.enabled);
  EXPECT_EQ(stats.hot_capacity, kCapacity);
  EXPECT_EQ(stats.hot_resident + stats.cold_users, kUsers);
  EXPECT_GE(stats.evictions, kUsers - kCapacity);
  EXPECT_EQ(store->size(), kUsers);

  // Every user — resident or cold — reads back equal to what was put,
  // and the budget holds throughout.
  for (size_t i = 0; i < kUsers; ++i) {
    auto snapshot = store->Get(UserId(i));
    ASSERT_TRUE(snapshot.ok()) << snapshot.status();
    EXPECT_TRUE(ProfilesEqual(*snapshot->profile, ProfileFor(i)));
    EXPECT_LE(store->tier_stats().hot_resident, kCapacity);
  }
  stats = store->tier_stats();
  EXPECT_GT(stats.cold_loads, 0u);
}

TEST_F(TieredStoreTest, ColdReloadIsByteIdentical) {
  auto store = MustOpen(Options(1));
  ASSERT_NE(store, nullptr);
  const std::string julie_bytes = JulieProfile().Serialize();
  QP_ASSERT_OK(store->Put("julie", JulieProfile()));
  QP_ASSERT_OK(store->Put("rob", RobProfile()));  // Evicts julie.
  EXPECT_EQ(store->tier_stats().hot_resident, 1u);

  // Reload from the WAL overlay (no snapshot yet).
  auto reloaded = store->Get("julie");
  ASSERT_TRUE(reloaded.ok()) << reloaded.status();
  EXPECT_EQ(reloaded->profile->Serialize(), julie_bytes);
  EXPECT_TRUE(ProfilesEqual(*reloaded->profile, JulieProfile()));

  // Now through a checkpointed snapshot body ("rob" is hot, "julie"
  // went cold again when rob's reload evicted her).
  auto rob = store->Get("rob");
  ASSERT_TRUE(rob.ok()) << rob.status();
  QP_ASSERT_OK(store->Checkpoint());
  // And once more through the raw-byte-copy checkpoint path: a second
  // checkpoint copies the cold, overlay-free entry verbatim.
  QP_ASSERT_OK(store->Put("rob", RobProfile()));
  QP_ASSERT_OK(store->Checkpoint());
  reloaded = store->Get("julie");
  ASSERT_TRUE(reloaded.ok()) << reloaded.status();
  EXPECT_EQ(reloaded->profile->Serialize(), julie_bytes);
}

TEST_F(TieredStoreTest, ReloadCarriesLargerEpoch) {
  auto store = MustOpen(Options(1));
  ASSERT_NE(store, nullptr);
  QP_ASSERT_OK(store->Put("julie", JulieProfile()));
  auto before = store->Get("julie");
  ASSERT_TRUE(before.ok());
  QP_ASSERT_OK(store->Put("rob", RobProfile()));  // Evicts julie.
  auto after = store->Get("julie");               // Cold reload.
  ASSERT_TRUE(after.ok());
  EXPECT_GT(after->epoch, before->epoch);
}

TEST_F(TieredStoreTest, UpsertOfColdUserMergesEvictedState) {
  auto store = MustOpen(Options(1));
  ASSERT_NE(store, nullptr);
  QP_ASSERT_OK(store->Put("julie", JulieProfile()));
  QP_ASSERT_OK(store->Put("rob", RobProfile()));  // Evicts julie.

  // Upsert one of Rob's preferences onto cold Julie: the result must be
  // Julie's full evicted profile plus the addition, not the addition
  // over an empty profile.
  const size_t julie_size = JulieProfile().preferences().size();
  std::vector<AtomicPreference> extra = {RobProfile().preferences().front()};
  QP_ASSERT_OK(store->Upsert("julie", extra));
  auto merged = store->Get("julie");
  ASSERT_TRUE(merged.ok()) << merged.status();
  EXPECT_GT(merged->profile->preferences().size(), julie_size - 1);
  UserProfile expected = JulieProfile();
  expected.AddOrUpdate(extra.front());
  EXPECT_TRUE(ProfilesEqual(*merged->profile, expected));
}

TEST_F(TieredStoreTest, RemoveOfColdUserSticksAcrossReopen) {
  {
    auto store = MustOpen(Options(1));
    ASSERT_NE(store, nullptr);
    QP_ASSERT_OK(store->Put("julie", JulieProfile()));
    QP_ASSERT_OK(store->Put("rob", RobProfile()));  // Evicts julie.
    QP_ASSERT_OK(store->Remove("julie"));           // Cold remove.
    EXPECT_EQ(store->Get("julie").status().code(), StatusCode::kNotFound);
    EXPECT_EQ(store->size(), 1u);
    QP_ASSERT_OK(store->Close());
  }
  auto reopened = MustOpen(Options(1));
  ASSERT_NE(reopened, nullptr);
  EXPECT_EQ(reopened->size(), 1u);
  EXPECT_EQ(reopened->Get("julie").status().code(), StatusCode::kNotFound);
  auto rob = reopened->Get("rob");
  ASSERT_TRUE(rob.ok()) << rob.status();
  EXPECT_TRUE(ProfilesEqual(*rob->profile, RobProfile()));
}

TEST_F(TieredStoreTest, RecoveryIndexesSnapshotWithoutMaterializing) {
  constexpr size_t kUsers = 8;
  {
    auto store = MustOpen(Options(2));
    ASSERT_NE(store, nullptr);
    for (size_t i = 0; i < kUsers; ++i) {
      QP_ASSERT_OK(store->Put(UserId(i), ProfileFor(i)));
    }
    QP_ASSERT_OK(store->Checkpoint());
    // Two post-checkpoint mutations land in the WAL overlay.
    QP_ASSERT_OK(store->Remove(UserId(0)));
    QP_ASSERT_OK(store->Put(UserId(1), RobProfile()));
    QP_ASSERT_OK(store->Close());
  }
  auto reopened = MustOpen(Options(2));
  ASSERT_NE(reopened, nullptr);
  // Nothing is resident after a tiered recovery; the population is known.
  TierStats stats = reopened->tier_stats();
  EXPECT_EQ(stats.hot_resident, 0u);
  EXPECT_EQ(reopened->size(), kUsers - 1);
  EXPECT_EQ(reopened->Get(UserId(0)).status().code(), StatusCode::kNotFound);
  auto overlaid = reopened->Get(UserId(1));
  ASSERT_TRUE(overlaid.ok()) << overlaid.status();
  EXPECT_TRUE(ProfilesEqual(*overlaid->profile, RobProfile()));
  for (size_t i = 2; i < kUsers; ++i) {
    auto snapshot = reopened->Get(UserId(i));
    ASSERT_TRUE(snapshot.ok()) << snapshot.status();
    EXPECT_TRUE(ProfilesEqual(*snapshot->profile, ProfileFor(i)));
  }
}

TEST_F(TieredStoreTest, TieredCheckpointReadableByUntieredStore) {
  constexpr size_t kUsers = 6;
  {
    auto store = MustOpen(Options(2));
    ASSERT_NE(store, nullptr);
    for (size_t i = 0; i < kUsers; ++i) {
      QP_ASSERT_OK(store->Put(UserId(i), ProfileFor(i)));
    }
    // The merge has all three entry kinds: hot users, cold users with
    // empty overlays (after this checkpoint), and — after the upsert —
    // a cold user with a non-empty overlay for the second checkpoint.
    QP_ASSERT_OK(store->Checkpoint());
    std::vector<AtomicPreference> extra = {RobProfile().preferences().front()};
    QP_ASSERT_OK(store->Upsert(UserId(0), extra));
    QP_ASSERT_OK(store->Get(UserId(3)).status());
    QP_ASSERT_OK(store->Checkpoint());
    QP_ASSERT_OK(store->Close());
  }
  // An untiered reopen parses the merged snapshot wholesale: every user
  // must be present and equal to its logical state.
  auto plain = MustOpen(Options(0));
  ASSERT_NE(plain, nullptr);
  EXPECT_EQ(plain->size(), kUsers);
  UserProfile expected0 = ProfileFor(0);
  expected0.AddOrUpdate(RobProfile().preferences().front());
  auto user0 = plain->Get(UserId(0));
  ASSERT_TRUE(user0.ok()) << user0.status();
  EXPECT_TRUE(ProfilesEqual(*user0->profile, expected0));
  for (size_t i = 1; i < kUsers; ++i) {
    auto snapshot = plain->Get(UserId(i));
    ASSERT_TRUE(snapshot.ok()) << snapshot.status();
    EXPECT_TRUE(ProfilesEqual(*snapshot->profile, ProfileFor(i)));
  }
}

TEST_F(TieredStoreTest, AllPagesEveryUserThroughTheBudget) {
  constexpr size_t kUsers = 7;
  auto store = MustOpen(Options(2));
  ASSERT_NE(store, nullptr);
  for (size_t i = 0; i < kUsers; ++i) {
    QP_ASSERT_OK(store->Put(UserId(i), ProfileFor(i)));
  }
  auto all = store->All();
  ASSERT_EQ(all.size(), kUsers);
  for (size_t i = 1; i < all.size(); ++i) {
    EXPECT_LT(all[i - 1].first, all[i].first);  // Sorted, no duplicates.
  }
  for (const auto& [user_id, snapshot] : all) {
    ASSERT_NE(snapshot.profile, nullptr);
    EXPECT_FALSE(snapshot.profile->preferences().empty());
  }
  EXPECT_LE(store->tier_stats().hot_resident, 2u);
}

TEST_F(TieredStoreTest, ShardLoadFaultSiteFailsColdLoads) {
#ifdef QP_FAULTS_DISABLED
  GTEST_SKIP() << "fault injection compiled out";
#endif
  auto store = MustOpen(Options(1));
  ASSERT_NE(store, nullptr);
  QP_ASSERT_OK(store->Put("julie", JulieProfile()));
  QP_ASSERT_OK(store->Put("rob", RobProfile()));  // Evicts julie.

  {
    ScopedFaultInjection chaos(42);
    FaultRule rule;
    rule.fire_every = 1;  // Every cold load fails.
    FaultHub::Global()->SetRule("shard.load", rule);
    auto blocked = store->Get("julie");
    EXPECT_FALSE(blocked.ok());
    EXPECT_GE(store->tier_stats().load_failures, 1u);
    // Hot reads are unaffected while loads fail.
    auto rob = store->Get("rob");
    ASSERT_TRUE(rob.ok()) << rob.status();
  }
  // Disarmed again: the cold load heals with no residue.
  auto healed = store->Get("julie");
  ASSERT_TRUE(healed.ok()) << healed.status();
  EXPECT_TRUE(ProfilesEqual(*healed->profile, JulieProfile()));
}

TEST_F(TieredStoreTest, HotCapacityRequiresDirectory) {
  // An in-memory store ignores hot_capacity (nothing to page from).
  DurableProfileStore store(&schema_);
  EXPECT_FALSE(store.tier_stats().enabled);
}

}  // namespace
}  // namespace storage
}  // namespace qp
