// RoutingTable / migration-journal unit tests: stable hashing, legacy
// routing compatibility, minimal-movement reshard planning, and the
// crash-safe persistence round trips the live migrator builds on.

#include <set>
#include <string>
#include <vector>

#include "common/test_util.h"
#include "gtest/gtest.h"
#include "qp/shard/routing_table.h"
#include "qp/storage/fault_injection.h"
#include "qp/util/file.h"

namespace qp {
namespace shard {
namespace {

TEST(RouteHashTest, IsStableAndSpreadsUsers) {
  // FNV-1a is a pure function of the id: same value on every call (and,
  // unlike std::hash, on every platform/run — reopening a cluster must
  // route every user back to the directory that holds their profile).
  EXPECT_EQ(RouteHash("julie"), RouteHash("julie"));
  EXPECT_NE(RouteHash("julie"), RouteHash("rob"));

  // 64 partitions over a few hundred users: every partition inhabited.
  std::set<size_t> hit;
  for (int i = 0; i < 640; ++i) {
    hit.insert(RouteHash("user" + std::to_string(i)) % 64);
  }
  EXPECT_EQ(hit.size(), 64u);
}

TEST(RoutingTableTest, UniformMatchesLegacyHashRouterForDividingCounts) {
  // owner[p] = p % N with P = 64 partitions routes identically to the
  // pre-partition router (hash % N) whenever N divides P — existing
  // power-of-two clusters keep their user placement.
  for (size_t shards : {1u, 2u, 4u, 8u}) {
    RoutingTable table = RoutingTable::Uniform(64, shards);
    for (int i = 0; i < 200; ++i) {
      std::string user = "user" + std::to_string(i);
      EXPECT_EQ(table.ShardFor(user), RouteHash(user) % shards)
          << "user " << user << " with " << shards << " shards";
    }
  }
}

TEST(RoutingTableTest, PartitionCountsSumToPartitionCount) {
  RoutingTable table = RoutingTable::Uniform(64, 3);
  std::vector<size_t> counts = table.PartitionCounts();
  ASSERT_EQ(counts.size(), 3u);
  EXPECT_EQ(counts[0] + counts[1] + counts[2], 64u);
}

TEST(PlanReshardTest, GrowMovesOnlyWhatBalanceRequires) {
  RoutingTable current = RoutingTable::Uniform(64, 2);
  QP_ASSERT_OK_AND_ASSIGN(RoutingTable plan, PlanReshard(current, 4));
  EXPECT_EQ(plan.num_shards, 4u);

  std::vector<size_t> counts = plan.PartitionCounts();
  for (size_t shard = 0; shard < 4; ++shard) {
    EXPECT_EQ(counts[shard], 16u) << "shard " << shard;
  }
  // 2 -> 4 moves exactly half the partitions: the survivors keep their
  // balanced share in place.
  size_t moved = 0;
  for (size_t p = 0; p < 64; ++p) {
    if (plan.owner[p] != current.owner[p]) ++moved;
  }
  EXPECT_EQ(moved, 32u);

  // Deterministic: equal inputs, identical plan.
  QP_ASSERT_OK_AND_ASSIGN(RoutingTable again, PlanReshard(current, 4));
  EXPECT_EQ(again.owner, plan.owner);
}

TEST(PlanReshardTest, ShrinkMovesOnlyRetiredShardsPartitions) {
  RoutingTable current = RoutingTable::Uniform(64, 4);
  QP_ASSERT_OK_AND_ASSIGN(RoutingTable plan, PlanReshard(current, 2));
  std::vector<size_t> counts = plan.PartitionCounts();
  ASSERT_EQ(counts.size(), 2u);
  EXPECT_EQ(counts[0], 32u);
  EXPECT_EQ(counts[1], 32u);
  for (size_t p = 0; p < 64; ++p) {
    EXPECT_LT(plan.owner[p], 2u);
    if (current.owner[p] < 2) {
      // Partitions on surviving shards never move on a shrink.
      EXPECT_EQ(plan.owner[p], current.owner[p]) << "partition " << p;
    }
  }
}

TEST(PlanReshardTest, RejectsDegenerateTargets) {
  RoutingTable current = RoutingTable::Uniform(8, 2);
  EXPECT_FALSE(PlanReshard(current, 0).ok());
  EXPECT_FALSE(PlanReshard(current, 9).ok());  // More shards than partitions.
  EXPECT_TRUE(PlanReshard(current, 8).ok());
}

TEST(RoutingPersistenceTest, RoundTripsThroughDisk) {
  storage::FaultInjectingFileSystem fs;
  QP_ASSERT_OK(fs.CreateDir("cluster"));
  RoutingTable table = RoutingTable::Uniform(16, 3);
  table.version = 7;
  table.owner[5] = 2;
  QP_ASSERT_OK(WriteRoutingTable(&fs, "cluster", table));

  QP_ASSERT_OK_AND_ASSIGN(RoutingTable loaded,
                          ReadRoutingTable(&fs, "cluster"));
  EXPECT_EQ(loaded.version, 7u);
  EXPECT_EQ(loaded.num_shards, 3u);
  EXPECT_EQ(loaded.owner, table.owner);
}

TEST(RoutingPersistenceTest, MissingFileIsNotFoundCorruptionIsParseError) {
  storage::FaultInjectingFileSystem fs;
  QP_ASSERT_OK(fs.CreateDir("cluster"));
  EXPECT_EQ(ReadRoutingTable(&fs, "cluster").status().code(),
            StatusCode::kNotFound);

  QP_ASSERT_OK(WriteFileAtomic(&fs, JoinPath("cluster", kRoutingFileName),
                               "not a routing table"));
  EXPECT_EQ(ReadRoutingTable(&fs, "cluster").status().code(),
            StatusCode::kParseError);

  // An owner pointing past the shard count must not load: routing to a
  // shard that cannot exist is corruption, not configuration.
  QP_ASSERT_OK(WriteFileAtomic(&fs, JoinPath("cluster", kRoutingFileName),
                               "qp-routing v1\nversion 1\nshards 2\n"
                               "owner 0 1 5\n"));
  EXPECT_EQ(ReadRoutingTable(&fs, "cluster").status().code(),
            StatusCode::kParseError);
}

TEST(MigrationJournalTest, RoundTripsAndEmptyListRemovesFile) {
  storage::FaultInjectingFileSystem fs;
  QP_ASSERT_OK(fs.CreateDir("cluster"));

  // Absent file = empty journal (a cluster that never migrated).
  QP_ASSERT_OK_AND_ASSIGN(auto empty, ReadMigrationJournal(&fs, "cluster"));
  EXPECT_TRUE(empty.empty());

  std::vector<MigrationJournalEntry> entries = {{5, 0, 2}, {9, 1, 3}};
  QP_ASSERT_OK(WriteMigrationJournal(&fs, "cluster", entries));
  QP_ASSERT_OK_AND_ASSIGN(auto loaded, ReadMigrationJournal(&fs, "cluster"));
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded[0].partition, 5u);
  EXPECT_EQ(loaded[0].source, 0u);
  EXPECT_EQ(loaded[0].target, 2u);
  EXPECT_EQ(loaded[1].partition, 9u);

  // Writing the empty list removes the file entirely: no journal, no
  // resolution work at the next open.
  QP_ASSERT_OK(WriteMigrationJournal(&fs, "cluster", {}));
  EXPECT_FALSE(fs.Exists(JoinPath("cluster", kMigrationFileName)));
  QP_ASSERT_OK_AND_ASSIGN(auto cleared, ReadMigrationJournal(&fs, "cluster"));
  EXPECT_TRUE(cleared.empty());
}

TEST(MigrationJournalTest, CorruptJournalIsParseError) {
  storage::FaultInjectingFileSystem fs;
  QP_ASSERT_OK(fs.CreateDir("cluster"));
  QP_ASSERT_OK(WriteFileAtomic(&fs, JoinPath("cluster", kMigrationFileName),
                               "qp-migration v1\nmigrate 1 nope 2\n"));
  EXPECT_EQ(ReadMigrationJournal(&fs, "cluster").status().code(),
            StatusCode::kParseError);
}

}  // namespace
}  // namespace shard
}  // namespace qp
