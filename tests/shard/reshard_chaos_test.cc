// Reshard chaos suite: live N->M resharding under armed migrate.* /
// shard.route fault schedules, concurrent mutating traffic, and shard
// kills landing mid-migration. The contract per trial, whatever the
// Reshard() call itself returned:
//
//   - zero lost acknowledged mutations: a cold reopen of the cluster
//     directory serves exactly the shadow of every acknowledged
//     Put/Remove — nothing lost, nothing resurrected, nothing doubled;
//   - exactly one owner per user: the per-shard resident sets are
//     pairwise disjoint and their union is the shadow, every user on
//     the shard the (recovered) routing table names;
//   - the routing version only ever moves forward, live and across the
//     reopen.
//
// Fault sites are restricted to the migration machine plus the router
// (the WAL itself stays healthy), so "acknowledged" is unambiguous:
// every mutation either acked and must survive, or failed cleanly and
// must not exist.
//
// Trial count comes from $QP_RESHARD_TRIALS (default 6). Every trial
// prints its seed first so a failure names the exact replay.

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/test_util.h"
#include "gtest/gtest.h"
#include "qp/data/movie_db.h"
#include "qp/pref/profile_generator.h"
#include "qp/shard/sharded_service.h"
#include "qp/storage/fault_injection.h"
#include "qp/storage/record.h"
#include "qp/util/fault_hub.h"
#include "qp/util/random.h"

namespace qp {
namespace shard {
namespace {

int TrialCount() {
  const char* env = std::getenv("QP_RESHARD_TRIALS");
  if (env == nullptr) return 6;
  int trials = std::atoi(env);
  return trials > 0 ? trials : 6;
}

/// The armed sites: the whole migration state machine plus the router.
/// Deliberately NOT the storage sites — a healthy WAL keeps the
/// acknowledged set exact, which is what the strict post-reopen
/// equality below depends on.
const std::vector<std::string> kChaosSites = {
    "migrate.copy", "migrate.tail", "migrate.apply", "migrate.cutover",
    "migrate.journal", "shard.route"};

class ReshardChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MovieDbConfig config;
    config.num_movies = 120;
    config.num_actors = 60;
    config.num_directors = 20;
    config.num_theatres = 6;
    config.num_days = 3;
    config.seed = 20040308;
    QP_ASSERT_OK_AND_ASSIGN(Database db, GenerateMovieDatabase(config));
    db_ = std::make_unique<Database>(std::move(db));
    QP_ASSERT_OK_AND_ASSIGN(auto pools, MovieCandidatePools(*db_));
    generator_ = std::make_unique<ProfileGenerator>(&db_->schema(),
                                                    std::move(pools));
  }

  ShardedOptions Options(storage::FaultInjectingFileSystem* fs,
                         size_t num_workers = 2) {
    ShardedOptions options;
    options.num_shards = 2;
    options.num_partitions = 16;
    options.dir = "cluster";
    options.service.num_workers = num_workers;
    options.service.storage.fs = fs;
    options.service.storage.background_compaction = false;
    options.migration.backoff = std::chrono::milliseconds(0);
    options.migration.backoff_max = std::chrono::milliseconds(1);
    options.migration.max_attempts = 3;
    options.migration.dual_write_hold = std::chrono::milliseconds(1);
    return options;
  }

  UserProfile MakeProfile(uint64_t seed) {
    Rng rng(seed);
    ProfileGeneratorOptions options;
    options.num_selections = 8;
    auto profile = generator_->Generate(options, &rng);
    EXPECT_TRUE(profile.ok()) << profile.status();
    return profile.ok() ? std::move(profile).value() : UserProfile();
  }

  std::unique_ptr<Database> db_;
  std::unique_ptr<ProfileGenerator> generator_;
};

TEST_F(ReshardChaosTest, ReshardUnderFaultsKillsAndTrafficLosesNothing) {
  const int trials = TrialCount();
  const uint64_t base_seed = 0x4e5a4d;
  for (int trial = 0; trial < trials; ++trial) {
    const uint64_t seed = base_seed + trial;
    std::fprintf(stderr, "[reshard-chaos] trial %d seed=%llu\n", trial,
                 static_cast<unsigned long long>(seed));
    SCOPED_TRACE("reshard-chaos seed=" + std::to_string(seed));

    storage::FaultInjectingFileSystem fs;
    auto sharded_or =
        ShardedPersonalizationService::Open(db_.get(), Options(&fs));
    ASSERT_TRUE(sharded_or.ok()) << sharded_or.status();
    auto sharded = std::move(sharded_or).value();

    std::map<std::string, UserProfile> shadow;
    for (size_t i = 0; i < 16; ++i) {
      std::string user = "u" + std::to_string(i);
      UserProfile profile = MakeProfile(seed * 31 + i);
      QP_ASSERT_OK(sharded->PutProfile(user, profile));
      shadow[user] = std::move(profile);
    }
    const uint64_t version_start = sharded->routing_version();

    Rng plan_rng(seed ^ 0x9e37);
    const size_t target_shards = 1 + plan_rng.Below(4);  // 1..4

    FaultHub::Global()->ArmRandom(seed, kChaosSites);

    // Monotonicity is sampled continuously by the mutator below.
    std::atomic<uint64_t> max_version{version_start};
    std::atomic<bool> done{false};

    // Kills land mid-migration; every victim is recovered so the
    // migrator's retries can eventually see a live shard again. The
    // shard count moves under our feet (a shrink retires slots), so a
    // kill/recover landing on a just-retired index is a clean refusal,
    // not a test failure.
    std::thread chaos([&] {
      Rng chaos_rng(seed ^ 0x5eed);
      for (int k = 0; k < 3 && !done.load(std::memory_order_relaxed); ++k) {
        size_t victim = chaos_rng.Below(4);
        if (!sharded->KillShard(victim).ok()) continue;  // Retired slot.
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        (void)sharded->RecoverShard(victim);
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });

    // Mutations race the whole migration; only acks enter the shadow.
    std::mutex shadow_mutex;
    std::thread mutator([&] {
      Rng mutation_rng(seed * 977 + 7);
      for (int m = 0; m < 60; ++m) {
        uint64_t version = sharded->routing_version();
        uint64_t seen = max_version.load(std::memory_order_relaxed);
        EXPECT_GE(version, seen) << "routing version went backwards";
        while (version > seen &&
               !max_version.compare_exchange_weak(
                   seen, version, std::memory_order_relaxed)) {
        }

        std::string user = "u" + std::to_string(mutation_rng.Below(16));
        if (mutation_rng.Below(6) == 0) {
          Status removed = sharded->RemoveProfile(user);
          if (removed.ok()) {
            std::lock_guard<std::mutex> lock(shadow_mutex);
            shadow.erase(user);
          } else {
            EXPECT_TRUE(removed.code() == StatusCode::kUnavailable ||
                        removed.code() == StatusCode::kNotFound)
                << removed.message();
          }
        } else {
          UserProfile profile = MakeProfile(seed * 131 + m);
          Status put = sharded->PutProfile(user, profile);
          if (put.ok()) {
            std::lock_guard<std::mutex> lock(shadow_mutex);
            shadow[user] = std::move(profile);
          } else {
            EXPECT_EQ(put.code(), StatusCode::kUnavailable) << put.message();
          }
        }
      }
    });

    // The reshard itself may fail under this schedule (faults exhaust
    // retries, a killed shard outlives the backoff budget) — that must
    // be a clean, invariant-preserving failure, never corruption.
    Status resharded = sharded->Reshard(target_shards);
    done.store(true, std::memory_order_relaxed);
    mutator.join();
    chaos.join();
    std::fprintf(
        stderr, "[reshard-chaos] seed=%llu target=%zu reshard=%s\n",
        static_cast<unsigned long long>(seed), target_shards,
        resharded.ok() ? "ok" : resharded.message().c_str());

    FaultHub::Global()->Reset();
    for (size_t s = 0; s < sharded->num_shards(); ++s) {
      QP_ASSERT_OK(sharded->RecoverShard(s));
    }

    // Live: every acknowledged profile serves through the router,
    // bit-identical, and the version never regressed.
    EXPECT_GE(sharded->routing_version(),
              max_version.load(std::memory_order_relaxed));
    for (const auto& [user, profile] : shadow) {
      auto snapshot = sharded->GetProfile(user);
      ASSERT_TRUE(snapshot.ok())
          << "acknowledged user " << user << " lost live: "
          << snapshot.status();
      EXPECT_TRUE(storage::ProfilesEqual(*snapshot.value().profile, profile))
          << "acknowledged state of " << user << " diverged live";
    }
    const uint64_t version_live = sharded->routing_version();

    // Cold restart: reopen resolves any journaled in-flight migration,
    // after which the strict invariants hold — exact shadow equality
    // and exactly one owner per user.
    sharded.reset();
    auto reopened_or =
        ShardedPersonalizationService::Open(db_.get(), Options(&fs));
    ASSERT_TRUE(reopened_or.ok()) << reopened_or.status();
    auto reopened = std::move(reopened_or).value();
    EXPECT_GE(reopened->routing_version(), version_live);

    for (const auto& [user, profile] : shadow) {
      auto snapshot = reopened->GetProfile(user);
      ASSERT_TRUE(snapshot.ok())
          << "acknowledged user " << user << " lost on reopen: "
          << snapshot.status();
      EXPECT_TRUE(storage::ProfilesEqual(*snapshot.value().profile, profile))
          << "acknowledged state of " << user << " diverged on reopen";
    }
    std::set<std::string> resident;
    for (size_t s = 0; s < reopened->num_shards(); ++s) {
      auto service = reopened->Shard(s);
      ASSERT_NE(service, nullptr) << "shard " << s;
      for (const std::string& user : service->profiles().Users()) {
        EXPECT_TRUE(resident.insert(user).second)
            << user << " resident on two shards after reopen";
        EXPECT_EQ(reopened->ShardFor(user), s)
            << user << " resident off its owner shard";
      }
    }
    std::set<std::string> expected;
    for (const auto& [user, profile] : shadow) expected.insert(user);
    EXPECT_EQ(resident, expected)
        << "resident set != acknowledged set after reopen";

    if (::testing::Test::HasFailure()) {
      std::fprintf(stderr, "[reshard-chaos] FAILED at seed=%llu\n",
                   static_cast<unsigned long long>(seed));
      testing_util::DumpFlightRecorderSnapshot("reshard-chaos");
      return;
    }
  }
}

TEST_F(ReshardChaosTest, SameSeedSameMigrationSameFinalState) {
  // Determinism pins the replay story: a single-threaded reshard under
  // an armed schedule fires the same faults at the same call indices,
  // takes the same abort/commit decisions, and lands the same final
  // state on both runs.
  struct RunRecord {
    StatusCode reshard_code = StatusCode::kOk;
    std::map<std::string, uint64_t> fires;
    uint64_t migrated = 0;
    uint64_t aborted = 0;
    uint64_t version = 0;
    std::vector<uint32_t> owner;
    std::map<std::string, std::string> final_state;
  };
  auto run = [&](uint64_t seed) {
    RunRecord record;
    storage::FaultInjectingFileSystem fs;
    auto sharded_or = ShardedPersonalizationService::Open(
        db_.get(), Options(&fs, /*num_workers=*/1));
    EXPECT_TRUE(sharded_or.ok()) << sharded_or.status();
    if (!sharded_or.ok()) return record;
    auto sharded = std::move(sharded_or).value();
    for (size_t i = 0; i < 12; ++i) {
      UserProfile profile = MakeProfile(seed * 31 + i);
      EXPECT_TRUE(
          sharded->PutProfile("u" + std::to_string(i), profile).ok());
    }

    FaultHub::Global()->ArmRandom(seed, kChaosSites);
    record.reshard_code = sharded->Reshard(3).code();
    for (const std::string& site : kChaosSites) {
      record.fires[site] = FaultHub::Global()->fires(site);
    }
    FaultHub::Global()->Reset();

    MigrationStats migration = sharded->migration_stats();
    record.migrated = migration.partitions_migrated;
    record.aborted = migration.partitions_aborted;
    RoutingTable table = sharded->routing();
    record.version = table.version;
    record.owner = table.owner;
    for (size_t i = 0; i < 12; ++i) {
      std::string user = "u" + std::to_string(i);
      auto snapshot = sharded->GetProfile(user);
      if (snapshot.ok()) {
        record.final_state[user] = snapshot.value().profile->Serialize();
      }
    }
    return record;
  };

  RunRecord first = run(0x4e5af);
  RunRecord second = run(0x4e5af);
  EXPECT_EQ(first.reshard_code, second.reshard_code);
  EXPECT_EQ(first.fires, second.fires);
  EXPECT_EQ(first.migrated, second.migrated);
  EXPECT_EQ(first.aborted, second.aborted);
  EXPECT_EQ(first.version, second.version);
  EXPECT_EQ(first.owner, second.owner);
  EXPECT_EQ(first.final_state, second.final_state);
  ASSERT_EQ(first.final_state.size(), 12u);
}

}  // namespace
}  // namespace shard
}  // namespace qp
