// Live-resharding functional tests: grow and shrink preserve every
// acknowledged profile with exactly one owner per user, the persisted
// routing table outlives (and overrides) stale open options, a faulted
// cutover aborts cleanly and converges on retry, journaled migrations
// resolve both ways after a crash, and the dual-write window mirrors
// concurrent mutations without losing an ack.

#include <algorithm>
#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/test_util.h"
#include "gtest/gtest.h"
#include "qp/data/movie_db.h"
#include "qp/pref/profile_generator.h"
#include "qp/shard/sharded_service.h"
#include "qp/storage/durable_profile_store.h"
#include "qp/storage/fault_injection.h"
#include "qp/storage/record.h"
#include "qp/util/fault_hub.h"

namespace qp {
namespace shard {
namespace {

class ReshardTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MovieDbConfig config;
    config.num_movies = 120;
    config.num_actors = 60;
    config.num_directors = 20;
    config.num_theatres = 6;
    config.num_days = 3;
    config.seed = 20040308;
    QP_ASSERT_OK_AND_ASSIGN(Database db, GenerateMovieDatabase(config));
    db_ = std::make_unique<Database>(std::move(db));
    QP_ASSERT_OK_AND_ASSIGN(auto pools, MovieCandidatePools(*db_));
    generator_ = std::make_unique<ProfileGenerator>(&db_->schema(),
                                                    std::move(pools));
  }

  ShardedOptions Options(size_t num_shards, size_t num_partitions = 16) {
    ShardedOptions options;
    options.num_shards = num_shards;
    options.num_partitions = num_partitions;
    options.dir = "cluster";
    options.service.num_workers = 2;
    options.service.storage.fs = &fs_;
    options.service.storage.background_compaction = false;
    options.migration.backoff = std::chrono::milliseconds(0);
    return options;
  }

  std::unique_ptr<ShardedPersonalizationService> MustOpen(
      ShardedOptions options) {
    auto sharded_or =
        ShardedPersonalizationService::Open(db_.get(), std::move(options));
    EXPECT_TRUE(sharded_or.ok()) << sharded_or.status();
    return sharded_or.ok() ? std::move(sharded_or).value() : nullptr;
  }

  UserProfile MakeProfile(uint64_t seed) {
    Rng rng(seed);
    ProfileGeneratorOptions options;
    options.num_selections = 8;
    auto profile = generator_->Generate(options, &rng);
    EXPECT_TRUE(profile.ok()) << profile.status();
    return profile.ok() ? std::move(profile).value() : UserProfile();
  }

  /// Populates `count` users and returns the acknowledged shadow.
  std::map<std::string, UserProfile> Populate(
      ShardedPersonalizationService* sharded, size_t count, uint64_t seed) {
    std::map<std::string, UserProfile> shadow;
    for (size_t i = 0; i < count; ++i) {
      std::string user = "u" + std::to_string(i);
      UserProfile profile = MakeProfile(seed + i);
      EXPECT_TRUE(sharded->PutProfile(user, profile).ok());
      shadow[user] = std::move(profile);
    }
    return shadow;
  }

  /// The zero-loss + one-owner check: every shadow user reads back equal
  /// through the router, and the union of per-shard resident sets is
  /// exactly the shadow keys with no user on two shards.
  void ExpectExactlyShadow(ShardedPersonalizationService* sharded,
                           const std::map<std::string, UserProfile>& shadow) {
    for (const auto& [user, profile] : shadow) {
      auto snapshot = sharded->GetProfile(user);
      ASSERT_TRUE(snapshot.ok())
          << "acknowledged user " << user << " lost: " << snapshot.status();
      EXPECT_TRUE(storage::ProfilesEqual(*snapshot.value().profile, profile))
          << "acknowledged state of " << user << " diverged";
    }
    std::set<std::string> resident;
    for (size_t s = 0; s < sharded->num_shards(); ++s) {
      auto service = sharded->Shard(s);
      ASSERT_NE(service, nullptr) << "shard " << s;
      for (const std::string& user : service->profiles().Users()) {
        EXPECT_TRUE(resident.insert(user).second)
            << user << " resident on two shards";
        EXPECT_EQ(sharded->ShardFor(user), s)
            << user << " resident off its owner shard";
      }
    }
    std::set<std::string> expected;
    for (const auto& [user, profile] : shadow) expected.insert(user);
    EXPECT_EQ(resident, expected);
  }

  std::unique_ptr<Database> db_;
  std::unique_ptr<ProfileGenerator> generator_;
  storage::FaultInjectingFileSystem fs_;
};

TEST_F(ReshardTest, GrowPreservesEveryUserWithExactlyOneOwner) {
  auto sharded = MustOpen(Options(2));
  ASSERT_NE(sharded, nullptr);
  auto shadow = Populate(sharded.get(), 24, 1000);
  const uint64_t version_before = sharded->routing_version();

  QP_ASSERT_OK(sharded->Reshard(4));

  EXPECT_EQ(sharded->num_shards(), 4u);
  EXPECT_GT(sharded->routing_version(), version_before);
  // 16 partitions over 4 shards: perfectly balanced, 8 partitions moved.
  std::vector<size_t> counts = sharded->routing().PartitionCounts();
  ASSERT_EQ(counts.size(), 4u);
  for (size_t s = 0; s < 4; ++s) EXPECT_EQ(counts[s], 4u) << "shard " << s;
  MigrationStats migration = sharded->migration_stats();
  EXPECT_EQ(migration.partitions_migrated, 8u);
  EXPECT_EQ(migration.partitions_aborted, 0u);
  EXPECT_EQ(migration.active, 0u);
  ExpectExactlyShadow(sharded.get(), shadow);

  // Resharding to the current count converges as a no-op.
  QP_ASSERT_OK(sharded->Reshard(4));
  EXPECT_EQ(sharded->migration_stats().partitions_migrated, 8u);
}

TEST_F(ReshardTest, ShrinkDrainsRetiredShardsAndTearsThemDown) {
  auto sharded = MustOpen(Options(4));
  ASSERT_NE(sharded, nullptr);
  auto shadow = Populate(sharded.get(), 24, 2000);

  QP_ASSERT_OK(sharded->Reshard(2));

  EXPECT_EQ(sharded->num_shards(), 2u);
  std::vector<size_t> counts = sharded->routing().PartitionCounts();
  ASSERT_EQ(counts.size(), 2u);
  EXPECT_EQ(counts[0], 8u);
  EXPECT_EQ(counts[1], 8u);
  ExpectExactlyShadow(sharded.get(), shadow);

  // And back up: the retired directories are re-opened and re-populated
  // purely through migration.
  QP_ASSERT_OK(sharded->Reshard(3));
  EXPECT_EQ(sharded->num_shards(), 3u);
  ExpectExactlyShadow(sharded.get(), shadow);
}

TEST_F(ReshardTest, ReopenAfterReshardRoutingFileWinsOverStaleOptions) {
  auto sharded = MustOpen(Options(2));
  ASSERT_NE(sharded, nullptr);
  auto shadow = Populate(sharded.get(), 16, 3000);
  QP_ASSERT_OK(sharded->Reshard(4));
  const uint64_t version = sharded->routing_version();
  sharded.reset();

  // Reopening with the stale fresh-cluster seed (2 shards): the
  // persisted ROUTING file is the truth.
  auto reopened = MustOpen(Options(2));
  ASSERT_NE(reopened, nullptr);
  EXPECT_EQ(reopened->num_shards(), 4u);
  EXPECT_GE(reopened->routing_version(), version);
  ExpectExactlyShadow(reopened.get(), shadow);
}

TEST_F(ReshardTest, CutoverFaultAbortsCleanlyAndRetryConverges) {
#ifdef QP_FAULTS_DISABLED
  GTEST_SKIP() << "fault injection compiled out";
#endif
  ShardedOptions options = Options(2);
  options.migration.max_attempts = 2;
  auto sharded = MustOpen(std::move(options));
  ASSERT_NE(sharded, nullptr);
  auto shadow = Populate(sharded.get(), 16, 4000);

  {
    ScopedFaultInjection chaos(11);
    FaultRule rule;
    rule.fire_every = 1;
    FaultHub::Global()->SetRule("migrate.cutover", rule);
    Status failed = sharded->Reshard(4);
    EXPECT_FALSE(failed.ok());
  }

  // Every migration aborted at its commit point: routing never flipped,
  // every user still serves from its source shard, nothing was lost —
  // and no partition is left mid-flight.
  MigrationStats aborted = sharded->migration_stats();
  EXPECT_EQ(aborted.partitions_migrated, 0u);
  EXPECT_EQ(aborted.partitions_aborted, 8u);
  EXPECT_EQ(aborted.active, 0u);
  EXPECT_GE(aborted.retries, 8u);
  ExpectExactlyShadow(sharded.get(), shadow);

  // Disarmed, the same reshard converges: already-correct partitions
  // no-op, the aborted ones migrate.
  QP_ASSERT_OK(sharded->Reshard(4));
  EXPECT_EQ(sharded->num_shards(), 4u);
  EXPECT_EQ(sharded->migration_stats().partitions_migrated, 8u);
  ExpectExactlyShadow(sharded.get(), shadow);
}

TEST_F(ReshardTest, TailApplyFaultRetriesWithoutLosingAckedMutations) {
#ifdef QP_FAULTS_DISABLED
  GTEST_SKIP() << "fault injection compiled out";
#endif
  auto sharded = MustOpen(Options(2));
  ASSERT_NE(sharded, nullptr);
  auto shadow = Populate(sharded.get(), 24, 9000);

  // One transient target-side failure on the first tail-replayed record:
  // the retry must re-apply that record, not resume past it.
  ScopedFaultInjection chaos(17);
  FaultRule rule;
  rule.fire_on_nth = 1;
  rule.max_fires = 1;
  FaultHub::Global()->SetRule("migrate.apply", rule);

  // The mutator only *creates* users, each with a single acknowledged
  // write landing past the copy watermark: a tail record the retry
  // skips is that user lost outright, never masked by a later write.
  std::mutex shadow_mutex;
  std::atomic<bool> done{false};
  std::thread mutator([&] {
    uint64_t k = 0;
    while (!done.load(std::memory_order_relaxed)) {
      std::string user = "tail-m" + std::to_string(k);
      UserProfile profile = MakeProfile(9100 + k);
      Status put = sharded->PutProfile(user, profile);
      ASSERT_TRUE(put.ok()) << put;  // No error faults armed on the ack path.
      std::lock_guard<std::mutex> lock(shadow_mutex);
      shadow[user] = std::move(profile);
      ++k;
    }
  });

  // Reshard back and forth until a tail round actually hit the fault
  // (ctest's timeout is the backstop; in practice the first pass fires).
  size_t next = 4;
  while (FaultHub::Global()->fires("migrate.apply") == 0) {
    QP_ASSERT_OK(sharded->Reshard(next));
    next = next == 4 ? 2 : 4;
  }
  done.store(true, std::memory_order_relaxed);
  mutator.join();

  EXPECT_GE(FaultHub::Global()->fires("migrate.apply"), 1u);
  ExpectExactlyShadow(sharded.get(), shadow);
}

TEST_F(ReshardTest, CopyRestartAfterWalRotationDropsPartialCopy) {
#ifdef QP_FAULTS_DISABLED
  GTEST_SKIP() << "fault injection compiled out";
#endif
  auto sharded = MustOpen(Options(2));
  ASSERT_NE(sharded, nullptr);
  auto shadow = Populate(sharded.get(), 24, 10000);

  // Every tail round stalls at entry, holding each migration in its
  // tail phase long enough for the remove + checkpoint below to land
  // between the copy pass and the next tail read.
  ScopedFaultInjection chaos(19);
  FaultRule stall;
  stall.fire_every = 1;
  stall.mode = FaultMode::kDelay;
  stall.delay = std::chrono::microseconds(50000);
  FaultHub::Global()->SetRule("migrate.tail", stall);

  // Each pass: pick a victim whose partition the plan moves, reshard in
  // the background, wait for the copy pass to land the victim on the
  // target, then remove the victim (acknowledged by the source) and
  // checkpoint the source so the WAL tail — carrying the remove —
  // rotates away. The migration's next tail read gets OutOfRange and
  // must restart its copy from scratch; resuming over the partial copy
  // would resurrect the deleted victim after cutover. The stall above
  // makes the window land in practice on the first pass; if scheduling
  // starved it, reshard back and try again (ctest timeout backstop).
  size_t grow = 4;
  while (sharded->migration_stats().copy_restarts == 0) {
    RoutingTable current = sharded->routing();
    auto plan_or = PlanReshard(current, grow);
    QP_ASSERT_OK(plan_or.status());
    std::string victim;
    for (const auto& [user, profile] : shadow) {
      const size_t p = sharded->PartitionFor(user);
      if (plan_or.value().owner[p] != current.owner[p]) {
        victim = user;
        break;
      }
    }
    ASSERT_FALSE(victim.empty());
    const size_t victim_partition = sharded->PartitionFor(victim);
    const uint32_t source = current.owner[victim_partition];
    const uint32_t target = plan_or.value().owner[victim_partition];

    std::thread resharder([&, grow] {
      Status resharded = sharded->Reshard(grow);
      EXPECT_TRUE(resharded.ok()) << resharded;
    });
    for (;;) {
      auto target_svc = sharded->Shard(target);
      if (target_svc != nullptr && target_svc->profiles().Get(victim).ok()) {
        break;
      }
      std::this_thread::yield();
    }
    QP_ASSERT_OK(sharded->RemoveProfile(victim));
    shadow.erase(victim);
    QP_ASSERT_OK(sharded->Shard(source)->profiles().Checkpoint());
    resharder.join();
    grow = grow == 4 ? 2 : 4;
  }

  EXPECT_GE(sharded->migration_stats().copy_restarts, 1u);
  ExpectExactlyShadow(sharded.get(), shadow);
}

TEST_F(ReshardTest, JournalResolutionDropsUncommittedPartialCopy) {
  auto sharded = MustOpen(Options(2));
  ASSERT_NE(sharded, nullptr);
  auto shadow = Populate(sharded.get(), 8, 5000);
  const std::string user = "u0";
  const uint32_t partition =
      static_cast<uint32_t>(sharded->PartitionFor(user));
  const uint32_t source = static_cast<uint32_t>(sharded->ShardFor(user));
  const uint32_t target = 1 - source;
  sharded.reset();

  // Simulate a crash mid-copy: the target shard holds a partial copy of
  // the user, the journal records the in-flight migration, but ROUTING
  // was never flipped — the cutover did not commit.
  {
    storage::StorageOptions store_options;
    store_options.dir = "cluster/shard-" + std::to_string(target);
    store_options.fs = &fs_;
    store_options.background_compaction = false;
    QP_ASSERT_OK_AND_ASSIGN(
        auto store, storage::DurableProfileStore::Open(&db_->schema(),
                                                       store_options));
    QP_ASSERT_OK(store->Put(user, shadow[user]));
  }
  QP_ASSERT_OK(WriteMigrationJournal(&fs_, "cluster",
                                     {{partition, source, target}}));

  // Reopen: the migration never happened. The partial copy is dropped,
  // the journal is cleared, the source still owns and serves the user.
  auto reopened = MustOpen(Options(2));
  ASSERT_NE(reopened, nullptr);
  EXPECT_FALSE(fs_.Exists("cluster/MIGRATION"));
  EXPECT_EQ(reopened->ShardFor(user), source);
  ExpectExactlyShadow(reopened.get(), shadow);
}

TEST_F(ReshardTest, JournalResolutionFinishesCommittedCutover) {
  auto sharded = MustOpen(Options(2));
  ASSERT_NE(sharded, nullptr);
  auto shadow = Populate(sharded.get(), 8, 6000);
  const std::string user = "u0";
  const uint32_t partition =
      static_cast<uint32_t>(sharded->PartitionFor(user));
  const uint32_t source = static_cast<uint32_t>(sharded->ShardFor(user));
  const uint32_t target = 1 - source;
  // Collect everyone sharing the user's partition: the owner flip moves
  // them all together.
  std::vector<std::string> comoving;
  for (const auto& [id, profile] : shadow) {
    if (sharded->PartitionFor(id) == partition) comoving.push_back(id);
  }
  sharded.reset();

  // Simulate a crash between cutover commit and source cleanup: the
  // target holds the full partition copy, ROUTING has the flipped owner
  // persisted, the journal entry is still there, and the source still
  // holds its stale copies.
  {
    storage::StorageOptions store_options;
    store_options.dir = "cluster/shard-" + std::to_string(target);
    store_options.fs = &fs_;
    store_options.background_compaction = false;
    QP_ASSERT_OK_AND_ASSIGN(
        auto store, storage::DurableProfileStore::Open(&db_->schema(),
                                                       store_options));
    for (const std::string& id : comoving) {
      QP_ASSERT_OK(store->Put(id, shadow[id]));
    }
  }
  QP_ASSERT_OK_AND_ASSIGN(RoutingTable table,
                          ReadRoutingTable(&fs_, "cluster"));
  table.owner[partition] = target;
  ++table.version;
  QP_ASSERT_OK(WriteRoutingTable(&fs_, "cluster", table));
  QP_ASSERT_OK(WriteMigrationJournal(&fs_, "cluster",
                                     {{partition, source, target}}));

  // Reopen: the cutover committed, so resolution finishes the cleanup —
  // the stale source copies vanish, the journal clears, the target
  // serves the whole partition.
  auto reopened = MustOpen(Options(2));
  ASSERT_NE(reopened, nullptr);
  EXPECT_FALSE(fs_.Exists("cluster/MIGRATION"));
  EXPECT_EQ(reopened->ShardFor(user), target);
  ExpectExactlyShadow(reopened.get(), shadow);
}

TEST_F(ReshardTest, DualWriteWindowMirrorsConcurrentMutations) {
  ShardedOptions options = Options(2, /*num_partitions=*/8);
  options.migration.dual_write_hold = std::chrono::milliseconds(25);
  auto sharded = MustOpen(std::move(options));
  ASSERT_NE(sharded, nullptr);
  auto shadow = Populate(sharded.get(), 12, 7000);

  // A mutator hammers every user while the reshard holds each
  // partition's dual-write window open: mutations landing in the window
  // are acknowledged by the source and mirrored to the target, so after
  // cutover the target serves the freshest acknowledged state.
  std::mutex shadow_mutex;
  std::atomic<bool> done{false};
  std::thread mutator([&] {
    uint64_t round = 0;
    while (!done.load(std::memory_order_relaxed)) {
      for (size_t i = 0; i < 12; ++i) {
        std::string user = "u" + std::to_string(i);
        UserProfile profile = MakeProfile(8000 + round * 31 + i);
        Status put = sharded->PutProfile(user, profile);
        ASSERT_TRUE(put.ok()) << put;  // No faults armed: every ack lands.
        std::lock_guard<std::mutex> lock(shadow_mutex);
        shadow[user] = std::move(profile);
      }
      ++round;
    }
  });

  Status resharded = sharded->Reshard(4);
  done.store(true, std::memory_order_relaxed);
  mutator.join();
  QP_ASSERT_OK(resharded);

  EXPECT_GE(sharded->migration_stats().dual_writes, 1u);
  ExpectExactlyShadow(sharded.get(), shadow);
}

}  // namespace
}  // namespace shard
}  // namespace qp
