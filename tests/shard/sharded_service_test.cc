// ShardedPersonalizationService tests: stable routing that partitions
// users across shard directories, cluster results identical to a single
// unsharded service, per-user cache invalidation staying on the owner
// shard, kill/recover fault containment, router fault sites, and the
// per-shard span in request traces.

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/test_util.h"
#include "gtest/gtest.h"
#include "qp/data/movie_db.h"
#include "qp/data/paper_example.h"
#include "qp/data/workload.h"
#include "qp/obs/trace.h"
#include "qp/pref/profile_generator.h"
#include "qp/shard/sharded_service.h"
#include "qp/storage/fault_injection.h"
#include "qp/util/fault_hub.h"

namespace qp {
namespace shard {
namespace {

class ShardedServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MovieDbConfig config;
    config.num_movies = 200;
    config.num_actors = 100;
    config.num_directors = 30;
    config.num_theatres = 6;
    config.num_days = 3;
    config.seed = 20040308;
    QP_ASSERT_OK_AND_ASSIGN(Database db, GenerateMovieDatabase(config));
    db_ = std::make_unique<Database>(std::move(db));
    QP_ASSERT_OK_AND_ASSIGN(auto pools, MovieCandidatePools(*db_));
    generator_ = std::make_unique<ProfileGenerator>(&db_->schema(),
                                                    std::move(pools));
  }

  ShardedOptions Options(size_t num_shards) {
    ShardedOptions options;
    options.num_shards = num_shards;
    options.dir = "cluster";
    options.service.num_workers = 2;
    options.service.storage.fs = &fs_;
    options.service.storage.background_compaction = false;
    return options;
  }

  std::unique_ptr<ShardedPersonalizationService> MustOpen(
      ShardedOptions options) {
    auto sharded_or =
        ShardedPersonalizationService::Open(db_.get(), std::move(options));
    EXPECT_TRUE(sharded_or.ok()) << sharded_or.status();
    return sharded_or.ok() ? std::move(sharded_or).value() : nullptr;
  }

  UserProfile MakeProfile(uint64_t seed) {
    Rng rng(seed);
    ProfileGeneratorOptions options;
    options.num_selections = 20;
    auto profile = generator_->Generate(options, &rng);
    EXPECT_TRUE(profile.ok()) << profile.status();
    return std::move(profile).value();
  }

  PersonalizationRequest Request(const std::string& user_id,
                                 const SelectQuery& query) {
    PersonalizationRequest request;
    request.user_id = user_id;
    request.query = query;
    request.options.criterion = InterestCriterion::TopCount(4);
    return request;
  }

  /// First user id (user0, user1, ...) that the cluster routes to
  /// `shard`; every shard owns one within a few dozen probes.
  static std::string UserOnShard(const ShardedPersonalizationService& sharded,
                                 size_t shard) {
    for (size_t i = 0; i < 1000; ++i) {
      std::string user_id = "user" + std::to_string(i);
      if (sharded.ShardFor(user_id) == shard) return user_id;
    }
    ADD_FAILURE() << "no user hashed to shard " << shard;
    return "";
  }

  std::unique_ptr<Database> db_;
  std::unique_ptr<ProfileGenerator> generator_;
  storage::FaultInjectingFileSystem fs_;
};

TEST_F(ShardedServiceTest, RoutingPartitionsUsersAcrossShardDirectories) {
  constexpr size_t kShards = 3;
  constexpr size_t kUsers = 24;
  auto sharded = MustOpen(Options(kShards));
  ASSERT_NE(sharded, nullptr);

  std::vector<size_t> expected_sizes(kShards, 0);
  for (size_t u = 0; u < kUsers; ++u) {
    std::string user_id = "user" + std::to_string(u);
    // The assignment is a pure function of the id: stable across calls.
    EXPECT_EQ(sharded->ShardFor(user_id), sharded->ShardFor(user_id));
    ASSERT_LT(sharded->ShardFor(user_id), kShards);
    QP_ASSERT_OK(sharded->PutProfile(user_id, MakeProfile(u + 1)));
    ++expected_sizes[sharded->ShardFor(user_id)];
  }

  // Each shard's store holds exactly the users that hash to it —
  // nothing more, nothing less.
  size_t total = 0;
  for (size_t s = 0; s < kShards; ++s) {
    auto service = sharded->Shard(s);
    ASSERT_NE(service, nullptr);
    EXPECT_EQ(service->profiles().size(), expected_sizes[s]) << "shard " << s;
    EXPECT_TRUE(service->profiles().durable());
    total += service->profiles().size();
  }
  EXPECT_EQ(total, kUsers);

  // With 24 users over 3 shards, every shard should own someone.
  for (size_t s = 0; s < kShards; ++s) {
    EXPECT_GT(expected_sizes[s], 0u) << "shard " << s;
  }

  // Reads route back to the owner.
  for (size_t u = 0; u < kUsers; ++u) {
    auto snapshot = sharded->GetProfile("user" + std::to_string(u));
    ASSERT_TRUE(snapshot.ok()) << snapshot.status();
  }
}

TEST_F(ShardedServiceTest, ClusterMatchesSingleServiceResults) {
  constexpr size_t kUsers = 6;
  auto sharded = MustOpen(Options(3));
  ASSERT_NE(sharded, nullptr);

  WorkloadGenerator workload(db_.get(), 7);
  QP_ASSERT_OK_AND_ASSIGN(std::vector<SelectQuery> queries,
                          workload.RandomQueries(3));

  // One unsharded service with the same profiles is the ground truth.
  PersonalizationService single(db_.get(), ServiceOptions{.num_workers = 2});
  std::vector<PersonalizationRequest> requests;
  for (size_t u = 0; u < kUsers; ++u) {
    std::string user_id = "user" + std::to_string(u);
    UserProfile profile = MakeProfile(u + 1);
    QP_ASSERT_OK(single.profiles().Put(user_id, profile));
    QP_ASSERT_OK(sharded->PutProfile(user_id, std::move(profile)));
    for (const SelectQuery& query : queries) {
      requests.push_back(Request(user_id, query));
    }
  }

  std::vector<PersonalizationResponse> expected =
      single.PersonalizeBatchAndWait(requests);
  std::vector<PersonalizationResponse> actual =
      sharded->PersonalizeBatchAndWait(requests);
  ASSERT_EQ(actual.size(), expected.size());
  for (size_t i = 0; i < actual.size(); ++i) {
    ASSERT_TRUE(actual[i].status.ok())
        << "request " << i << ": " << actual[i].status;
    EXPECT_EQ(actual[i].results.DebugString(1000),
              expected[i].results.DebugString(1000))
        << "request " << i;
  }

  // Singles agree too (and hit the per-shard selection caches).
  for (const PersonalizationRequest& request : requests) {
    PersonalizationResponse response = sharded->Personalize(request);
    ASSERT_TRUE(response.status.ok()) << response.status;
    EXPECT_TRUE(response.cache_hit);
  }
}

TEST_F(ShardedServiceTest, MutationInvalidatesOnlyThatUsersSelections) {
  auto sharded = MustOpen(Options(2));
  ASSERT_NE(sharded, nullptr);
  // Two users on the SAME shard: the sharpest version of the property —
  // invalidation must discriminate by user even within one cache.
  std::string user_a = UserOnShard(*sharded, 0);
  std::string user_b = UserOnShard(*sharded, 0);
  for (size_t i = 0; user_b == user_a && i < 1000; ++i) {
    std::string candidate = "user" + std::to_string(1000 + i);
    if (sharded->ShardFor(candidate) == 0) user_b = candidate;
  }
  ASSERT_NE(user_a, user_b);
  QP_ASSERT_OK(sharded->PutProfile(user_a, MakeProfile(1)));
  QP_ASSERT_OK(sharded->PutProfile(user_b, MakeProfile(2)));

  WorkloadGenerator workload(db_.get(), 11);
  QP_ASSERT_OK_AND_ASSIGN(std::vector<SelectQuery> queries,
                          workload.RandomQueries(1));
  PersonalizationRequest request_a = Request(user_a, queries[0]);
  PersonalizationRequest request_b = Request(user_b, queries[0]);
  request_a.execute = false;
  request_b.execute = false;

  // Warm both users' selections.
  QP_ASSERT_OK(sharded->Personalize(request_a).status);
  QP_ASSERT_OK(sharded->Personalize(request_b).status);
  EXPECT_TRUE(sharded->Personalize(request_a).cache_hit);
  EXPECT_TRUE(sharded->Personalize(request_b).cache_hit);

  // Mutating A drops A's entries — and ONLY A's.
  QP_ASSERT_OK(sharded->UpsertProfile(
      user_a, {MakeProfile(3).preferences().front()}));
  EXPECT_GE(sharded->stats().router.invalidated_entries, 1u);
  PersonalizationResponse after_a = sharded->Personalize(request_a);
  QP_ASSERT_OK(after_a.status);
  EXPECT_FALSE(after_a.cache_hit);
  PersonalizationResponse after_b = sharded->Personalize(request_b);
  QP_ASSERT_OK(after_b.status);
  EXPECT_TRUE(after_b.cache_hit);
}

TEST_F(ShardedServiceTest, KillShardShedsOnlyItsUsersAndRecoverHeals) {
  auto sharded = MustOpen(Options(2));
  ASSERT_NE(sharded, nullptr);
  std::string on_dead = UserOnShard(*sharded, 0);
  std::string on_alive = UserOnShard(*sharded, 1);
  UserProfile dead_profile = MakeProfile(1);
  QP_ASSERT_OK(sharded->PutProfile(on_dead, dead_profile));
  QP_ASSERT_OK(sharded->PutProfile(on_alive, MakeProfile(2)));

  WorkloadGenerator workload(db_.get(), 5);
  QP_ASSERT_OK_AND_ASSIGN(std::vector<SelectQuery> queries,
                          workload.RandomQueries(1));

  QP_ASSERT_OK(sharded->KillShard(0));
  EXPECT_FALSE(sharded->IsShardAlive(0));
  EXPECT_TRUE(sharded->IsShardAlive(1));
  EXPECT_EQ(sharded->alive_shards(), 1u);
  EXPECT_EQ(sharded->Shard(0), nullptr);
  QP_ASSERT_OK(sharded->KillShard(0));  // Idempotent.

  // Dead shard's user: shed, not an error in another shard's lap.
  PersonalizationResponse shed =
      sharded->Personalize(Request(on_dead, queries[0]));
  EXPECT_FALSE(shed.status.ok());
  EXPECT_EQ(shed.disposition, RequestDisposition::kShed);
  EXPECT_EQ(shed.status.code(), StatusCode::kUnavailable);
  Status blocked = sharded->PutProfile(on_dead, MakeProfile(3));
  EXPECT_EQ(blocked.code(), StatusCode::kUnavailable);
  EXPECT_FALSE(sharded->GetProfile(on_dead).ok());

  // The survivor serves at full fidelity.
  PersonalizationResponse served =
      sharded->Personalize(Request(on_alive, queries[0]));
  QP_ASSERT_OK(served.status);
  EXPECT_EQ(served.disposition, RequestDisposition::kFull);

  // Batches shed per-request, order preserved.
  std::vector<PersonalizationResponse> responses =
      sharded->PersonalizeBatchAndWait(
          {Request(on_dead, queries[0]), Request(on_alive, queries[0])});
  ASSERT_EQ(responses.size(), 2u);
  EXPECT_EQ(responses[0].disposition, RequestDisposition::kShed);
  QP_ASSERT_OK(responses[1].status);

  // Stats rows reflect liveness.
  ShardedStats stats = sharded->stats();
  ASSERT_EQ(stats.shards.size(), 2u);
  EXPECT_FALSE(stats.shards[0].alive);
  EXPECT_TRUE(stats.shards[1].alive);
  EXPECT_EQ(stats.router.shard_kills, 1u);
  EXPECT_GE(stats.router.shed, 3u);

  // Recovery replays shard 0's WAL: the acknowledged profile is intact.
  QP_ASSERT_OK(sharded->RecoverShard(0));
  EXPECT_TRUE(sharded->IsShardAlive(0));
  QP_ASSERT_OK(sharded->RecoverShard(0));  // Idempotent.
  QP_ASSERT_OK_AND_ASSIGN(ProfileSnapshot snapshot,
                          sharded->GetProfile(on_dead));
  EXPECT_TRUE(storage::ProfilesEqual(*snapshot.profile, dead_profile));
  PersonalizationResponse healed =
      sharded->Personalize(Request(on_dead, queries[0]));
  QP_ASSERT_OK(healed.status);
  EXPECT_EQ(sharded->stats().router.shard_recoveries, 1u);
}

TEST_F(ShardedServiceTest, RouteFaultSiteShedsRequestsAndMutations) {
#ifdef QP_FAULTS_DISABLED
  GTEST_SKIP() << "fault injection compiled out";
#endif
  auto sharded = MustOpen(Options(2));
  ASSERT_NE(sharded, nullptr);
  QP_ASSERT_OK(sharded->PutProfile("julie", MakeProfile(1)));
  WorkloadGenerator workload(db_.get(), 3);
  QP_ASSERT_OK_AND_ASSIGN(std::vector<SelectQuery> queries,
                          workload.RandomQueries(1));

  {
    ScopedFaultInjection chaos(7);
    FaultRule rule;
    rule.fire_every = 1;
    FaultHub::Global()->SetRule("shard.route", rule);
    PersonalizationResponse shed =
        sharded->Personalize(Request("julie", queries[0]));
    EXPECT_EQ(shed.disposition, RequestDisposition::kShed);
    EXPECT_EQ(sharded->PutProfile("julie", MakeProfile(2)).code(),
              StatusCode::kUnavailable);
    EXPECT_EQ(sharded->RemoveProfile("julie").code(),
              StatusCode::kUnavailable);
  }
  // Disarmed: everything heals, and the faulted mutations never landed.
  QP_ASSERT_OK_AND_ASSIGN(ProfileSnapshot snapshot,
                          sharded->GetProfile("julie"));
  EXPECT_TRUE(storage::ProfilesEqual(*snapshot.profile, MakeProfile(1)));
  PersonalizationResponse ok =
      sharded->Personalize(Request("julie", queries[0]));
  QP_ASSERT_OK(ok.status);
  EXPECT_GE(sharded->stats().router.shed, 3u);
}

TEST_F(ShardedServiceTest, TracesCarryTheShardSpan) {
  if (!obs::kTracingCompiledIn) GTEST_SKIP() << "tracing compiled out";
  auto sharded = MustOpen(Options(3));
  ASSERT_NE(sharded, nullptr);
  // The router and the shard each deliver their own fragment of the
  // distributed trace; the fragment sink groups them by trace_id.
  obs::FragmentTraceSink sink;
  sharded->set_trace_sink(&sink);
  QP_ASSERT_OK(sharded->PutProfile("julie", MakeProfile(1)));

  WorkloadGenerator workload(db_.get(), 9);
  QP_ASSERT_OK_AND_ASSIGN(std::vector<SelectQuery> queries,
                          workload.RandomQueries(1));
  QP_ASSERT_OK(sharded->Personalize(Request("julie", queries[0])).status);

  auto find_shard_span = [&]() -> const obs::TraceSpan* {
    for (const auto& fragment : sink.Last()) {
      if (const obs::TraceSpan* span = fragment->FindSpan("shard");
          span != nullptr) {
        return span;
      }
    }
    return nullptr;
  };
  const obs::TraceSpan* span = find_shard_span();
  ASSERT_NE(span, nullptr);
  EXPECT_EQ(span->counter("id"), sharded->ShardFor("julie"));

  // A shard recovered later inherits the sink.
  QP_ASSERT_OK(sharded->KillShard(sharded->ShardFor("julie")));
  QP_ASSERT_OK(sharded->RecoverShard(sharded->ShardFor("julie")));
  QP_ASSERT_OK(sharded->Personalize(Request("julie", queries[0])).status);
  EXPECT_NE(find_shard_span(), nullptr);
}

TEST_F(ShardedServiceTest, TieredShardsBoundResidencyClusterWide) {
  constexpr size_t kUsers = 40;
  constexpr size_t kHotCapacity = 4;
  ShardedOptions options = Options(2);
  options.service.storage.hot_capacity = kHotCapacity;
  auto sharded = MustOpen(std::move(options));
  ASSERT_NE(sharded, nullptr);

  for (size_t u = 0; u < kUsers; ++u) {
    QP_ASSERT_OK(
        sharded->PutProfile("user" + std::to_string(u), MakeProfile(u + 1)));
  }
  ShardedStats stats = sharded->stats();
  size_t population = 0;
  for (const ShardRow& row : stats.shards) {
    ASSERT_TRUE(row.alive);
    EXPECT_TRUE(row.stats.tier.enabled);
    EXPECT_LE(row.stats.tier.hot_resident, kHotCapacity)
        << "shard " << row.shard_id;
    population += row.stats.tier.hot_resident + row.stats.tier.cold_users;
  }
  EXPECT_EQ(population, kUsers);

  // Cold users still personalize — the shard pages them in on demand.
  WorkloadGenerator workload(db_.get(), 13);
  QP_ASSERT_OK_AND_ASSIGN(std::vector<SelectQuery> queries,
                          workload.RandomQueries(1));
  for (size_t u = 0; u < kUsers; ++u) {
    PersonalizationResponse response =
        sharded->Personalize(Request("user" + std::to_string(u), queries[0]));
    ASSERT_TRUE(response.status.ok()) << response.status;
  }
}

TEST_F(ShardedServiceTest, OpenValidatesOptions) {
  ShardedOptions no_dir = Options(2);
  no_dir.dir.clear();
  EXPECT_EQ(ShardedPersonalizationService::Open(db_.get(), no_dir)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  ShardedOptions zero = Options(0);
  EXPECT_EQ(
      ShardedPersonalizationService::Open(db_.get(), zero).status().code(),
      StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace shard
}  // namespace qp
