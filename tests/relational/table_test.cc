#include "qp/relational/table.h"

#include "common/test_util.h"
#include "gtest/gtest.h"

namespace qp {
namespace {

TableSchema PersonSchema() {
  return TableSchema(
      "PERSON", {{"id", DataType::kInt64}, {"name", DataType::kString}},
      {"id"});
}

TEST(TableTest, InsertAndRead) {
  Table table(PersonSchema());
  QP_EXPECT_OK(table.Insert({Value::Int(1), Value::Str("ann")}));
  QP_EXPECT_OK(table.Insert({Value::Int(2), Value::Str("bob")}));
  EXPECT_EQ(table.num_rows(), 2u);
  EXPECT_EQ(table.At(0, 1), Value::Str("ann"));
  EXPECT_EQ(table.At(1, 0), Value::Int(2));
}

TEST(TableTest, InsertRejectsWrongArity) {
  Table table(PersonSchema());
  EXPECT_EQ(table.Insert({Value::Int(1)}).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(
      table.Insert({Value::Int(1), Value::Str("x"), Value::Int(2)}).code(),
      StatusCode::kInvalidArgument);
}

TEST(TableTest, InsertRejectsWrongType) {
  Table table(PersonSchema());
  EXPECT_EQ(table.Insert({Value::Str("oops"), Value::Str("x")}).code(),
            StatusCode::kInvalidArgument);
}

TEST(TableTest, InsertAcceptsNulls) {
  Table table(PersonSchema());
  QP_EXPECT_OK(table.Insert({Value::Int(1), Value::Null()}));
  EXPECT_TRUE(table.At(0, 1).is_null());
}

TEST(TableTest, LookupFindsMatches) {
  Table table(PersonSchema());
  QP_EXPECT_OK(table.Insert({Value::Int(1), Value::Str("ann")}));
  QP_EXPECT_OK(table.Insert({Value::Int(2), Value::Str("bob")}));
  QP_EXPECT_OK(table.Insert({Value::Int(3), Value::Str("ann")}));

  const auto& hits = table.Lookup(1, Value::Str("ann"));
  EXPECT_EQ(hits.size(), 2u);
  EXPECT_EQ(table.Lookup(1, Value::Str("zed")).size(), 0u);
  EXPECT_EQ(table.Lookup(0, Value::Int(2)).size(), 1u);
}

TEST(TableTest, IndexMaintainedAcrossInserts) {
  Table table(PersonSchema());
  QP_EXPECT_OK(table.Insert({Value::Int(1), Value::Str("ann")}));
  // Build the index now...
  EXPECT_EQ(table.Lookup(1, Value::Str("ann")).size(), 1u);
  // ...then insert more rows; the index must stay current.
  QP_EXPECT_OK(table.Insert({Value::Int(2), Value::Str("ann")}));
  QP_EXPECT_OK(table.Insert({Value::Int(3), Value::Str("bob")}));
  EXPECT_EQ(table.Lookup(1, Value::Str("ann")).size(), 2u);
  EXPECT_EQ(table.Lookup(1, Value::Str("bob")).size(), 1u);
}

TEST(TableTest, LookupEmptyTable) {
  Table table(PersonSchema());
  EXPECT_EQ(table.Lookup(0, Value::Int(1)).size(), 0u);
}

TEST(TableTest, LookupCoercesNumericKeys) {
  Table table(PersonSchema());
  QP_EXPECT_OK(table.Insert({Value::Int(5), Value::Str("x")}));
  // Real(5.0) equals Int(5) and must hash alike, so the index finds it.
  EXPECT_EQ(table.Lookup(0, Value::Real(5.0)).size(), 1u);
}

TEST(TableTest, RowsAccessor) {
  Table table(PersonSchema());
  QP_EXPECT_OK(table.Insert({Value::Int(1), Value::Str("a")}));
  ASSERT_EQ(table.rows().size(), 1u);
  EXPECT_EQ(table.rows()[0][1], Value::Str("a"));
}

}  // namespace
}  // namespace qp
