#include "qp/relational/schema.h"

#include "common/test_util.h"
#include "gtest/gtest.h"
#include "qp/data/movie_db.h"

namespace qp {
namespace {

TableSchema TwoColumnTable(const std::string& name) {
  return TableSchema(name,
                     {{"id", DataType::kInt64}, {"name", DataType::kString}},
                     {"id"});
}

TEST(TableSchemaTest, ColumnLookup) {
  TableSchema t = TwoColumnTable("T");
  EXPECT_EQ(t.name(), "T");
  EXPECT_EQ(t.num_columns(), 2u);
  EXPECT_EQ(t.ColumnIndex("id"), 0u);
  EXPECT_EQ(t.ColumnIndex("name"), 1u);
  EXPECT_FALSE(t.ColumnIndex("missing").has_value());
  EXPECT_TRUE(t.HasColumn("name"));
  EXPECT_FALSE(t.HasColumn("nope"));
}

TEST(TableSchemaTest, PrimaryKeyResolved) {
  TableSchema t = TwoColumnTable("T");
  ASSERT_EQ(t.primary_key().size(), 1u);
  EXPECT_EQ(t.primary_key()[0], 0u);
}

TEST(SchemaTest, AddTableRejectsDuplicates) {
  Schema schema;
  QP_EXPECT_OK(schema.AddTable(TwoColumnTable("A")));
  Status s = schema.AddTable(TwoColumnTable("A"));
  EXPECT_EQ(s.code(), StatusCode::kAlreadyExists);
}

TEST(SchemaTest, AddTableRejectsDuplicateColumns) {
  Schema schema;
  Status s = schema.AddTable(TableSchema(
      "B", {{"x", DataType::kInt64}, {"x", DataType::kInt64}}, {}));
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(SchemaTest, FindTable) {
  Schema schema;
  QP_EXPECT_OK(schema.AddTable(TwoColumnTable("A")));
  EXPECT_NE(schema.FindTable("A"), nullptr);
  EXPECT_EQ(schema.FindTable("Z"), nullptr);
  EXPECT_TRUE(schema.GetTable("A").ok());
  EXPECT_EQ(schema.GetTable("Z").status().code(), StatusCode::kNotFound);
}

TEST(SchemaTest, AttributeChecks) {
  Schema schema;
  QP_EXPECT_OK(schema.AddTable(TwoColumnTable("A")));
  EXPECT_TRUE(schema.HasAttribute({"A", "id"}));
  EXPECT_FALSE(schema.HasAttribute({"A", "zz"}));
  EXPECT_FALSE(schema.HasAttribute({"B", "id"}));
  EXPECT_EQ(schema.AttributeType({"A", "name"}).value(), DataType::kString);
  EXPECT_FALSE(schema.AttributeType({"A", "zz"}).ok());
}

TEST(SchemaTest, ForeignKeyCardinalities) {
  Schema schema;
  QP_EXPECT_OK(schema.AddTable(TwoColumnTable("PARENT")));
  QP_EXPECT_OK(schema.AddTable(TableSchema(
      "CHILD", {{"id", DataType::kInt64}, {"parent_id", DataType::kInt64}},
      {"id"})));
  QP_EXPECT_OK(
      schema.AddForeignKey({"CHILD", "parent_id"}, {"PARENT", "id"}));

  // Child -> parent is to-one; parent -> child is to-many.
  EXPECT_EQ(
      schema.JoinCardinalityFrom({"CHILD", "parent_id"}, {"PARENT", "id"})
          .value(),
      JoinCardinality::kToOne);
  EXPECT_EQ(
      schema.JoinCardinalityFrom({"PARENT", "id"}, {"CHILD", "parent_id"})
          .value(),
      JoinCardinality::kToMany);
}

TEST(SchemaTest, AddJoinValidation) {
  Schema schema;
  QP_EXPECT_OK(schema.AddTable(TwoColumnTable("A")));
  QP_EXPECT_OK(schema.AddTable(TwoColumnTable("B")));

  // Unknown attribute.
  EXPECT_EQ(schema
                .AddJoin({"A", "zz"}, {"B", "id"}, JoinCardinality::kToOne,
                         JoinCardinality::kToMany)
                .code(),
            StatusCode::kNotFound);
  // Type mismatch.
  EXPECT_EQ(schema
                .AddJoin({"A", "id"}, {"B", "name"}, JoinCardinality::kToOne,
                         JoinCardinality::kToMany)
                .code(),
            StatusCode::kInvalidArgument);
  // Self join.
  EXPECT_EQ(schema
                .AddJoin({"A", "id"}, {"A", "id"}, JoinCardinality::kToOne,
                         JoinCardinality::kToOne)
                .code(),
            StatusCode::kInvalidArgument);
  // Valid, then duplicate.
  QP_EXPECT_OK(schema.AddJoin({"A", "id"}, {"B", "id"},
                              JoinCardinality::kToOne,
                              JoinCardinality::kToOne));
  EXPECT_EQ(schema
                .AddJoin({"B", "id"}, {"A", "id"}, JoinCardinality::kToOne,
                         JoinCardinality::kToOne)
                .code(),
            StatusCode::kAlreadyExists);
}

TEST(SchemaTest, FindJoinEitherOrientation) {
  Schema schema;
  QP_EXPECT_OK(schema.AddTable(TwoColumnTable("A")));
  QP_EXPECT_OK(schema.AddTable(TwoColumnTable("B")));
  QP_EXPECT_OK(schema.AddForeignKey({"A", "id"}, {"B", "id"}));
  EXPECT_NE(schema.FindJoin({"A", "id"}, {"B", "id"}), nullptr);
  EXPECT_NE(schema.FindJoin({"B", "id"}, {"A", "id"}), nullptr);
  EXPECT_EQ(schema.FindJoin({"A", "name"}, {"B", "id"}), nullptr);
}

TEST(SchemaTest, JoinsFromListsBothEndpoints) {
  Schema schema = MovieSchema();
  auto from_movie = schema.JoinsFrom("MOVIE");
  // MOVIE participates in 4 declared joins (PLAY, CAST, DIRECTED, GENRE).
  EXPECT_EQ(from_movie.size(), 4u);
  for (const auto& join : from_movie) {
    EXPECT_EQ(join.from.table, "MOVIE");
    // From the primary-key side every traversal is to-many.
    EXPECT_EQ(join.cardinality, JoinCardinality::kToMany);
  }
  auto from_play = schema.JoinsFrom("PLAY");
  EXPECT_EQ(from_play.size(), 2u);
  for (const auto& join : from_play) {
    EXPECT_EQ(join.cardinality, JoinCardinality::kToOne);
  }
}

TEST(SchemaTest, MovieSchemaShape) {
  Schema schema = MovieSchema();
  EXPECT_EQ(schema.tables().size(), 8u);
  EXPECT_EQ(schema.joins().size(), 7u);
  EXPECT_TRUE(schema.HasAttribute({"GENRE", "genre"}));
  EXPECT_TRUE(schema.HasAttribute({"THEATRE", "region"}));
}

TEST(JoinCardinalityTest, Names) {
  EXPECT_STREQ(JoinCardinalityName(JoinCardinality::kToOne), "to-one");
  EXPECT_STREQ(JoinCardinalityName(JoinCardinality::kToMany), "to-many");
}

}  // namespace
}  // namespace qp
