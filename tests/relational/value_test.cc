#include "qp/relational/value.h"

#include <unordered_set>

#include "gtest/gtest.h"

namespace qp {
namespace {

TEST(ValueTest, DefaultIsNull) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.type(), DataType::kNull);
}

TEST(ValueTest, FactoriesAndAccessors) {
  EXPECT_EQ(Value::Int(42).as_int(), 42);
  EXPECT_EQ(Value::Int(42).type(), DataType::kInt64);
  EXPECT_DOUBLE_EQ(Value::Real(2.5).as_double(), 2.5);
  EXPECT_EQ(Value::Real(2.5).type(), DataType::kDouble);
  EXPECT_EQ(Value::Str("abc").as_string(), "abc");
  EXPECT_EQ(Value::Str("abc").type(), DataType::kString);
  EXPECT_TRUE(Value::Null().is_null());
}

TEST(ValueTest, AsNumericCoercesInt) {
  EXPECT_DOUBLE_EQ(Value::Int(3).AsNumeric(), 3.0);
  EXPECT_DOUBLE_EQ(Value::Real(3.5).AsNumeric(), 3.5);
}

TEST(ValueTest, EqualitySameType) {
  EXPECT_EQ(Value::Int(1), Value::Int(1));
  EXPECT_NE(Value::Int(1), Value::Int(2));
  EXPECT_EQ(Value::Str("a"), Value::Str("a"));
  EXPECT_NE(Value::Str("a"), Value::Str("b"));
  EXPECT_EQ(Value::Null(), Value::Null());
}

TEST(ValueTest, EqualityCrossNumericTypes) {
  EXPECT_EQ(Value::Int(2), Value::Real(2.0));
  EXPECT_NE(Value::Int(2), Value::Real(2.5));
}

TEST(ValueTest, StringsNeverEqualNumbers) {
  EXPECT_NE(Value::Str("2"), Value::Int(2));
  EXPECT_NE(Value::Str("2"), Value::Real(2.0));
  EXPECT_NE(Value::Null(), Value::Int(0));
  EXPECT_NE(Value::Null(), Value::Str(""));
}

TEST(ValueTest, HashConsistentWithEquality) {
  // Values that compare equal must hash equal (required by hash joins).
  EXPECT_EQ(Value::Int(2).Hash(), Value::Real(2.0).Hash());
  EXPECT_EQ(Value::Str("x").Hash(), Value::Str("x").Hash());
  EXPECT_EQ(Value::Null().Hash(), Value::Null().Hash());
}

TEST(ValueTest, UsableInUnorderedSet) {
  std::unordered_set<Value, ValueHash> set;
  set.insert(Value::Int(1));
  set.insert(Value::Int(1));
  set.insert(Value::Str("1"));
  set.insert(Value::Null());
  EXPECT_EQ(set.size(), 3u);
  EXPECT_TRUE(set.contains(Value::Real(1.0)));  // Equal to Int(1).
}

TEST(ValueTest, ToStringRendering) {
  EXPECT_EQ(Value::Int(7).ToString(), "7");
  EXPECT_EQ(Value::Str("hi").ToString(), "'hi'");
  EXPECT_EQ(Value::Null().ToString(), "NULL");
  EXPECT_EQ(Value::Real(0.5).ToString(), "0.5");
}

TEST(ValueTest, SqlLiteralEscapesQuotes) {
  EXPECT_EQ(Value::Str("O'Hara").ToSqlLiteral(), "'O''Hara'");
  EXPECT_EQ(Value::Str("plain").ToSqlLiteral(), "'plain'");
  EXPECT_EQ(Value::Int(3).ToSqlLiteral(), "3");
}

TEST(ValueTest, OrderingRanksNullNumbersStrings) {
  EXPECT_LT(Value::Null(), Value::Int(0));
  EXPECT_LT(Value::Int(5), Value::Str("a"));
  EXPECT_LT(Value::Int(1), Value::Int(2));
  EXPECT_LT(Value::Real(1.5), Value::Int(2));
  EXPECT_LT(Value::Str("a"), Value::Str("b"));
  EXPECT_FALSE(Value::Null() < Value::Null());
}

TEST(DataTypeTest, Names) {
  EXPECT_STREQ(DataTypeName(DataType::kInt64), "int64");
  EXPECT_STREQ(DataTypeName(DataType::kString), "string");
  EXPECT_STREQ(DataTypeName(DataType::kDouble), "double");
  EXPECT_STREQ(DataTypeName(DataType::kNull), "null");
}

}  // namespace
}  // namespace qp
