#include "qp/relational/csv.h"

#include <cstdio>
#include <filesystem>

#include "common/test_util.h"
#include "gtest/gtest.h"
#include "qp/data/movie_db.h"

namespace qp {
namespace {

TableSchema MixedSchema() {
  return TableSchema("T",
                     {{"id", DataType::kInt64},
                      {"name", DataType::kString},
                      {"score", DataType::kDouble}},
                     {"id"});
}

TEST(CsvTest, RendersHeaderAndRows) {
  Table table(MixedSchema());
  QP_ASSERT_OK(table.Insert(
      {Value::Int(1), Value::Str("plain"), Value::Real(0.5)}));
  EXPECT_EQ(TableToCsv(table), "id,name,score\n1,\"plain\",0.5\n");
}

TEST(CsvTest, QuotesSpecialCharacters) {
  Table table(MixedSchema());
  QP_ASSERT_OK(table.Insert(
      {Value::Int(1), Value::Str("a,b \"c\"\nd"), Value::Real(1.0)}));
  std::string csv = TableToCsv(table);
  EXPECT_NE(csv.find("\"a,b \"\"c\"\"\nd\""), std::string::npos) << csv;
}

TEST(CsvTest, NullVersusEmptyString) {
  Table table(MixedSchema());
  QP_ASSERT_OK(table.Insert({Value::Int(1), Value::Null(), Value::Null()}));
  QP_ASSERT_OK(table.Insert(
      {Value::Int(2), Value::Str(""), Value::Real(2.0)}));
  std::string csv = TableToCsv(table);
  EXPECT_NE(csv.find("1,,\n"), std::string::npos) << csv;
  EXPECT_NE(csv.find("2,\"\",2\n"), std::string::npos) << csv;

  Table reloaded(MixedSchema());
  QP_ASSERT_OK(AppendCsvToTable(&reloaded, csv));
  ASSERT_EQ(reloaded.num_rows(), 2u);
  EXPECT_TRUE(reloaded.At(0, 1).is_null());
  EXPECT_EQ(reloaded.At(1, 1), Value::Str(""));
}

TEST(CsvTest, RoundTripPreservesValues) {
  Table table(MixedSchema());
  QP_ASSERT_OK(table.Insert(
      {Value::Int(-7), Value::Str("O'Hara, \"Kit\""), Value::Real(0.25)}));
  QP_ASSERT_OK(table.Insert(
      {Value::Int(42), Value::Str("line\nbreak"), Value::Null()}));

  Table reloaded(MixedSchema());
  QP_ASSERT_OK(AppendCsvToTable(&reloaded, TableToCsv(table)));
  ASSERT_EQ(reloaded.num_rows(), table.num_rows());
  for (RowId r = 0; r < table.num_rows(); ++r) {
    for (size_t c = 0; c < 3; ++c) {
      EXPECT_EQ(reloaded.At(r, c), table.At(r, c)) << r << "," << c;
    }
  }
}

TEST(CsvTest, HeaderValidation) {
  Table table(MixedSchema());
  EXPECT_EQ(AppendCsvToTable(&table, "id,wrong,score\n1,\"a\",2\n").code(),
            StatusCode::kParseError);
  EXPECT_EQ(AppendCsvToTable(&table, "id,name\n1,\"a\"\n").code(),
            StatusCode::kParseError);
  EXPECT_EQ(AppendCsvToTable(&table, "").code(), StatusCode::kParseError);
}

TEST(CsvTest, ArityAndTypeErrors) {
  Table table(MixedSchema());
  EXPECT_EQ(AppendCsvToTable(&table, "id,name,score\n1,\"a\"\n").code(),
            StatusCode::kParseError);
  EXPECT_EQ(
      AppendCsvToTable(&table, "id,name,score\nnot_an_int,\"a\",2\n").code(),
      StatusCode::kParseError);
  EXPECT_EQ(
      AppendCsvToTable(&table, "id,name,score\n1,\"a\",not_a_double\n")
          .code(),
      StatusCode::kParseError);
}

TEST(CsvTest, UnterminatedQuoteFails) {
  Table table(MixedSchema());
  EXPECT_EQ(AppendCsvToTable(&table, "id,name,score\n1,\"oops,2\n").code(),
            StatusCode::kParseError);
}

TEST(CsvTest, SkipsBlankLines) {
  Table table(MixedSchema());
  QP_ASSERT_OK(AppendCsvToTable(
      &table, "id,name,score\n\n1,\"a\",2\n\n2,\"b\",3\n"));
  EXPECT_EQ(table.num_rows(), 2u);
}

TEST(CsvTest, HandlesCrLf) {
  Table table(MixedSchema());
  QP_ASSERT_OK(AppendCsvToTable(
      &table, "id,name,score\r\n1,\"a\",2\r\n2,\"b\",3\r\n"));
  EXPECT_EQ(table.num_rows(), 2u);
}

TEST(CsvTest, MissingTrailingNewlineAccepted) {
  Table table(MixedSchema());
  QP_ASSERT_OK(AppendCsvToTable(&table, "id,name,score\n1,\"a\",2"));
  EXPECT_EQ(table.num_rows(), 1u);
}

TEST(CsvTest, DatabaseSaveLoadRoundTrip) {
  MovieDbConfig config;
  config.num_movies = 40;
  config.num_actors = 20;
  config.num_directors = 8;
  config.num_theatres = 4;
  auto original = GenerateMovieDatabase(config);
  ASSERT_TRUE(original.ok());

  std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "qp_csv_test";
  std::filesystem::remove_all(dir);
  QP_ASSERT_OK(SaveDatabaseCsv(*original, dir.string()));

  Database reloaded(MovieSchema());
  QP_ASSERT_OK(LoadDatabaseCsv(&reloaded, dir.string()));
  EXPECT_EQ(reloaded.TotalRows(), original->TotalRows());
  for (const TableSchema& schema : reloaded.schema().tables()) {
    const Table* a = original->GetTable(schema.name()).value();
    const Table* b = reloaded.GetTable(schema.name()).value();
    ASSERT_EQ(a->num_rows(), b->num_rows()) << schema.name();
    for (RowId r = 0; r < a->num_rows(); ++r) {
      for (size_t c = 0; c < schema.num_columns(); ++c) {
        ASSERT_EQ(a->At(r, c), b->At(r, c))
            << schema.name() << " row " << r << " col " << c;
      }
    }
  }
  std::filesystem::remove_all(dir);
}

TEST(CsvTest, LoadMissingDirectoryFails) {
  Database db(MovieSchema());
  EXPECT_EQ(LoadDatabaseCsv(&db, "/nonexistent/qp_dir").code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace qp
