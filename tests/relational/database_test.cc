#include "qp/relational/database.h"

#include "common/test_util.h"
#include "gtest/gtest.h"
#include "qp/data/movie_db.h"

namespace qp {
namespace {

TEST(DatabaseTest, CreatesTablesFromSchema) {
  Database db(MovieSchema());
  EXPECT_TRUE(db.GetTable("MOVIE").ok());
  EXPECT_TRUE(db.GetTable("GENRE").ok());
  EXPECT_EQ(db.GetTable("NOPE").status().code(), StatusCode::kNotFound);
}

TEST(DatabaseTest, InsertRoutesToTable) {
  Database db(MovieSchema());
  QP_EXPECT_OK(db.Insert(
      "MOVIE", {Value::Int(1), Value::Str("Solaris"), Value::Int(1972)}));
  EXPECT_EQ(db.GetTable("MOVIE").value()->num_rows(), 1u);
  EXPECT_EQ(db.TotalRows(), 1u);
}

TEST(DatabaseTest, InsertUnknownTableFails) {
  Database db(MovieSchema());
  EXPECT_EQ(db.Insert("NOPE", {}).code(), StatusCode::kNotFound);
}

TEST(DatabaseTest, InsertPropagatesTypeErrors) {
  Database db(MovieSchema());
  EXPECT_EQ(db.Insert("MOVIE", {Value::Str("bad-mid"), Value::Str("t"),
                                Value::Int(2000)})
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(DatabaseTest, TotalRowsSumsTables) {
  Database db(MovieSchema());
  QP_EXPECT_OK(db.Insert("ACTOR", {Value::Int(1), Value::Str("a")}));
  QP_EXPECT_OK(db.Insert("ACTOR", {Value::Int(2), Value::Str("b")}));
  QP_EXPECT_OK(db.Insert("DIRECTOR", {Value::Int(1), Value::Str("d")}));
  EXPECT_EQ(db.TotalRows(), 3u);
}

}  // namespace
}  // namespace qp
