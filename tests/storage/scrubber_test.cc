// The background integrity scrubber: re-verifies the committed
// generation on disk (snapshot CRC, WAL frame CRCs) and the in-memory
// profile invariants, quarantines profiles that fail, and repairs them
// from durable truth (last good snapshot + WAL replay).

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/test_util.h"
#include "gtest/gtest.h"
#include "qp/data/movie_db.h"
#include "qp/data/paper_example.h"
#include "qp/obs/metrics.h"
#include "qp/storage/durable_profile_store.h"
#include "qp/storage/fault_injection.h"
#include "qp/storage/record.h"
#include "qp/storage/scrub.h"
#include "qp/storage/snapshot.h"
#include "qp/util/clock.h"
#include "qp/util/file.h"
#include "qp/util/status.h"

namespace qp {
namespace storage {
namespace {

/// A profile that passes no schema validation: its preference names a
/// relation the movie schema does not have.
UserProfile BogusProfile() {
  UserProfile profile;
  profile.AddOrUpdate(AtomicPreference::Selection(
      AttributeRef{"NO_SUCH_TABLE", "attr"}, Value::Str("x"), 0.5));
  return profile;
}

class ScrubberTest : public ::testing::Test {
 protected:
  ScrubberTest() : schema_(MovieSchema()) {}

  StorageOptions Options() {
    StorageOptions options;
    options.dir = "db";
    options.fs = &fs_;
    options.background_compaction = false;
    options.metrics = &metrics_;
    return options;
  }

  std::unique_ptr<DurableProfileStore> MustOpen(StorageOptions options) {
    auto store_or = DurableProfileStore::Open(&schema_, std::move(options));
    EXPECT_TRUE(store_or.ok()) << store_or.status();
    return store_or.ok() ? std::move(store_or).value() : nullptr;
  }

  Schema schema_;
  FaultInjectingFileSystem fs_;
  obs::MetricsRegistry metrics_;
};

TEST(CheckProfileInvariantsTest, AcceptsValidProfileWithMatchingGraph) {
  Schema schema = MovieSchema();
  UserProfile julie = JulieProfile();
  QP_ASSERT_OK_AND_ASSIGN(PersonalizationGraph graph,
                          PersonalizationGraph::Build(&schema, julie));
  QP_ASSERT_OK(CheckProfileInvariants(schema, julie, &graph));
}

TEST(CheckProfileInvariantsTest, RejectsSchemaViolations) {
  Schema schema = MovieSchema();
  EXPECT_FALSE(CheckProfileInvariants(schema, BogusProfile(), nullptr).ok());
}

TEST(CheckProfileInvariantsTest, RejectsGraphOutOfSyncWithProfile) {
  Schema schema = MovieSchema();
  UserProfile julie = JulieProfile();
  QP_ASSERT_OK_AND_ASSIGN(PersonalizationGraph julie_graph,
                          PersonalizationGraph::Build(&schema, julie));
  // A valid profile paired with another profile's graph: every edge is
  // individually fine, but the counts no longer mirror the profile.
  UserProfile grown = julie;
  grown.AddOrUpdate(AtomicPreference::Selection(
      AttributeRef{"GENRE", "genre"}, Value::Str("noir"), 0.15));
  Status status = CheckProfileInvariants(schema, grown, &julie_graph);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("out of sync"), std::string::npos);
}

TEST_F(ScrubberTest, CleanStorePassesScrub) {
  auto store = MustOpen(Options());
  ASSERT_NE(store, nullptr);
  QP_ASSERT_OK(store->Put("julie", JulieProfile()));
  QP_ASSERT_OK(store->Put("rob", RobProfile()));

  ScrubReport report;
  QP_ASSERT_OK(store->ScrubOnce(&report));
  EXPECT_TRUE(report.snapshot_verified);
  EXPECT_EQ(report.wal_frames_verified, 2u);
  EXPECT_EQ(report.disk_corruptions, 0u);
  EXPECT_EQ(report.invariant_violations, 0u);
  EXPECT_TRUE(report.corrupt_users.empty());

  StorageStats stats = store->storage_stats();
  EXPECT_EQ(stats.scrubs, 1u);
  EXPECT_EQ(stats.scrub_corruptions, 0u);
  EXPECT_EQ(stats.quarantined_profiles, 0u);
  EXPECT_TRUE(stats.last_scrub_error.empty());
  EXPECT_EQ(metrics_.counter("qp_storage_scrubs_total")->Value(), 1u);
}

TEST_F(ScrubberTest, InMemoryCorruptionIsQuarantinedAndRepaired) {
  auto store = MustOpen(Options());
  ASSERT_NE(store, nullptr);
  QP_ASSERT_OK(store->Put("julie", JulieProfile()));
  QP_ASSERT_OK(store->Put("rob", RobProfile()));

  store->CorruptInMemoryForTest("julie", BogusProfile());

  ScrubReport report;
  QP_ASSERT_OK(store->ScrubOnce(&report));
  EXPECT_EQ(report.invariant_violations, 1u);
  ASSERT_EQ(report.corrupt_users.size(), 1u);
  EXPECT_EQ(report.corrupt_users[0], "julie");
  EXPECT_EQ(report.quarantined, 1u);
  EXPECT_EQ(report.repaired, 1u);
  EXPECT_EQ(report.repair_failures, 0u);

  // Auto-repair rebuilt julie from durable truth and lifted the
  // quarantine; rob was never touched.
  EXPECT_FALSE(store->IsQuarantined("julie"));
  QP_ASSERT_OK_AND_ASSIGN(ProfileSnapshot julie, store->Get("julie"));
  EXPECT_TRUE(ProfilesEqual(*julie.profile, JulieProfile()));

  StorageStats stats = store->storage_stats();
  EXPECT_EQ(stats.scrub_corruptions, 1u);
  EXPECT_EQ(stats.repairs, 1u);
  EXPECT_EQ(stats.quarantined_profiles, 0u);
  EXPECT_EQ(metrics_.counter("qp_storage_repairs_total")->Value(), 1u);

  // The next pass is clean: the damage does not re-register.
  QP_ASSERT_OK(store->ScrubOnce(&report));
  EXPECT_EQ(report.invariant_violations, 0u);
}

TEST_F(ScrubberTest, WithoutAutoRepairCorruptProfilesStayQuarantined) {
  StorageOptions options = Options();
  options.scrub_auto_repair = false;
  auto store = MustOpen(std::move(options));
  ASSERT_NE(store, nullptr);
  QP_ASSERT_OK(store->Put("julie", JulieProfile()));
  store->CorruptInMemoryForTest("julie", BogusProfile());

  ScrubReport report;
  QP_ASSERT_OK(store->ScrubOnce(&report));
  EXPECT_EQ(report.quarantined, 1u);
  EXPECT_EQ(report.repaired, 0u);
  EXPECT_TRUE(store->IsQuarantined("julie"));
  EXPECT_EQ(store->QuarantinedUsers(), std::vector<std::string>{"julie"});
  EXPECT_EQ(store->storage_stats().quarantined_profiles, 1u);
  EXPECT_EQ(metrics_.gauge("qp_storage_quarantined_profiles")->Value(), 1.0);

  // A fresh (valid) Put heals the profile; the next pass releases it.
  QP_ASSERT_OK(store->Put("julie", JulieProfile()));
  QP_ASSERT_OK(store->ScrubOnce(&report));
  EXPECT_FALSE(store->IsQuarantined("julie"));
  EXPECT_EQ(metrics_.gauge("qp_storage_quarantined_profiles")->Value(), 0.0);
}

TEST_F(ScrubberTest, ExplicitRepairUserRestoresDurableTruth) {
  auto store = MustOpen(Options());
  ASSERT_NE(store, nullptr);
  QP_ASSERT_OK(store->Put("julie", JulieProfile()));
  store->CorruptInMemoryForTest("julie", BogusProfile());
  QP_ASSERT_OK(store->RepairUser("julie"));
  QP_ASSERT_OK_AND_ASSIGN(ProfileSnapshot julie, store->Get("julie"));
  EXPECT_TRUE(ProfilesEqual(*julie.profile, JulieProfile()));

  // A user whose durable truth is "absent" is repaired by removal.
  store->CorruptInMemoryForTest("ghost", BogusProfile());
  QP_ASSERT_OK(store->RepairUser("ghost"));
  EXPECT_FALSE(store->Get("ghost").ok());
}

TEST_F(ScrubberTest, SnapshotBitFlipIsDetectedAndRepaired) {
  auto store = MustOpen(Options());
  ASSERT_NE(store, nullptr);
  QP_ASSERT_OK(store->Put("julie", JulieProfile()));
  QP_ASSERT_OK(store->Put("rob", RobProfile()));
  QP_ASSERT_OK(store->Checkpoint());
  const uint64_t seqno = store->storage_stats().last_appended_seqno;

  QP_ASSERT_OK(
      fs_.FlipBit(JoinPath("db", SnapshotFileName(seqno)), 20, 3));

  ScrubReport report;
  QP_ASSERT_OK(store->ScrubOnce(&report));
  EXPECT_FALSE(report.snapshot_verified);
  EXPECT_GE(report.disk_corruptions, 1u);
  EXPECT_EQ(report.repaired, 1u);
  EXPECT_FALSE(report.first_error.empty());
  EXPECT_FALSE(store->storage_stats().last_scrub_error.empty());

  // The repair rewrote the committed generation from the (intact)
  // in-memory state: the next pass is clean and a reopen sees everything.
  QP_ASSERT_OK(store->ScrubOnce(&report));
  EXPECT_EQ(report.disk_corruptions, 0u);
  EXPECT_TRUE(report.snapshot_verified);
  QP_ASSERT_OK(store->Close());
  store = MustOpen(Options());
  ASSERT_NE(store, nullptr);
  EXPECT_EQ(store->size(), 2u);
  QP_ASSERT_OK_AND_ASSIGN(ProfileSnapshot julie, store->Get("julie"));
  EXPECT_TRUE(ProfilesEqual(*julie.profile, JulieProfile()));
}

TEST_F(ScrubberTest, MidLogWalBitFlipIsDetectedAndRepaired) {
  auto store = MustOpen(Options());
  ASSERT_NE(store, nullptr);
  QP_ASSERT_OK(store->Put("julie", JulieProfile()));
  QP_ASSERT_OK(store->Put("rob", RobProfile()));
  QP_ASSERT_OK(store->Put("kim", UserProfile()));

  // Damage the first record's payload: later frames stay valid, so this
  // reads as mid-log corruption, not a torn tail.
  QP_ASSERT_OK(fs_.FlipBit(JoinPath("db", WalFileName(1)), 30, 5));

  ScrubReport report;
  QP_ASSERT_OK(store->ScrubOnce(&report));
  EXPECT_GE(report.disk_corruptions, 1u);
  EXPECT_EQ(report.repaired, 1u);

  // In-memory state was never damaged; the rotation preserved it all.
  QP_ASSERT_OK(store->ScrubOnce(&report));
  EXPECT_EQ(report.disk_corruptions, 0u);
  QP_ASSERT_OK(store->Close());
  store = MustOpen(Options());
  ASSERT_NE(store, nullptr);
  EXPECT_EQ(store->size(), 3u);
  QP_ASSERT_OK_AND_ASSIGN(ProfileSnapshot rob, store->Get("rob"));
  EXPECT_TRUE(ProfilesEqual(*rob.profile, RobProfile()));
}

TEST_F(ScrubberTest, BackgroundScrubberFindsDamageOnItsOwn) {
  FakeClock clock;
  StorageOptions options = Options();
  options.scrub_interval = std::chrono::milliseconds(5);
  options.clock = &clock;
  auto store = MustOpen(std::move(options));
  ASSERT_NE(store, nullptr);
  QP_ASSERT_OK(store->Put("julie", JulieProfile()));
  store->CorruptInMemoryForTest("julie", BogusProfile());

  // No explicit ScrubOnce: the cadence thread must detect and repair.
  // Its interval waits consult the injected clock, so the test advances
  // fake time instead of sleeping; the yield gives the scrub thread a
  // chance to run between advances (ctest's timeout is the backstop).
  for (;;) {
    StorageStats stats = store->storage_stats();
    if (stats.repairs > 0 && stats.quarantined_profiles == 0) break;
    clock.Advance(std::chrono::milliseconds(5));
    std::this_thread::yield();
  }
  StorageStats stats = store->storage_stats();
  EXPECT_GT(stats.scrubs, 0u);
  EXPECT_GE(stats.scrub_corruptions, 1u);
  EXPECT_GT(stats.repairs, 0u);
  EXPECT_EQ(stats.quarantined_profiles, 0u);
  QP_ASSERT_OK_AND_ASSIGN(ProfileSnapshot julie, store->Get("julie"));
  EXPECT_TRUE(ProfilesEqual(*julie.profile, JulieProfile()));
  QP_ASSERT_OK(store->Close());  // Clean shutdown with the thread running.
}

TEST_F(ScrubberTest, ScrubWorksOnInMemoryStore) {
  // A pass-through store (no directory) still checks memory invariants.
  DurableProfileStore store(&schema_);
  QP_ASSERT_OK(store.Put("julie", JulieProfile()));
  store.CorruptInMemoryForTest("julie", BogusProfile());
  ScrubReport report;
  QP_ASSERT_OK(store.ScrubOnce(&report));
  EXPECT_EQ(report.invariant_violations, 1u);
  // No durable truth to repair from: the profile stays quarantined.
  EXPECT_TRUE(store.IsQuarantined("julie"));
}

}  // namespace
}  // namespace storage
}  // namespace qp
