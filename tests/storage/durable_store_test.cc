// DurableProfileStore tests: write-through logging, recovery across
// reopen, checkpointing, torn-tail truncation, mid-log corruption
// detection, Remove/epoch semantics and concurrent mutators (run under
// -DQP_SANITIZE=thread to prove data-race freedom).

#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/test_util.h"
#include "gtest/gtest.h"
#include "qp/data/movie_db.h"
#include "qp/data/paper_example.h"
#include "qp/service/service.h"
#include "qp/storage/durable_profile_store.h"
#include "qp/storage/fault_injection.h"
#include "qp/storage/record.h"
#include "qp/storage/snapshot.h"

namespace qp {
namespace storage {
namespace {

class DurableStoreTest : public ::testing::Test {
 protected:
  DurableStoreTest() : schema_(MovieSchema()) {}

  StorageOptions Options() {
    StorageOptions options;
    options.dir = "db";
    options.fs = &fs_;
    options.background_compaction = false;
    return options;
  }

  std::unique_ptr<DurableProfileStore> MustOpen(StorageOptions options) {
    auto store_or = DurableProfileStore::Open(&schema_, std::move(options));
    EXPECT_TRUE(store_or.ok()) << store_or.status();
    return store_or.ok() ? std::move(store_or).value() : nullptr;
  }

  std::string WalPath(uint64_t first_seqno) {
    return JoinPath("db", WalFileName(first_seqno));
  }

  Schema schema_;
  FaultInjectingFileSystem fs_;
};

TEST_F(DurableStoreTest, InMemoryPassThrough) {
  DurableProfileStore store(&schema_);
  EXPECT_FALSE(store.durable());
  QP_ASSERT_OK(store.Put("julie", JulieProfile()));
  QP_ASSERT_OK(store.Remove("julie"));
  EXPECT_EQ(store.Remove("julie").code(), StatusCode::kNotFound);
  EXPECT_FALSE(store.Checkpoint().ok());  // Nothing to checkpoint into.
  QP_ASSERT_OK(store.Sync());

  StorageStats stats = store.storage_stats();
  EXPECT_FALSE(stats.durable);
  EXPECT_EQ(stats.records_appended, 0u);
}

TEST_F(DurableStoreTest, FreshDirectoryIsInitialized) {
  auto store = MustOpen(Options());
  ASSERT_NE(store, nullptr);
  EXPECT_TRUE(store->durable());
  EXPECT_TRUE(fs_.Exists("db/MANIFEST"));
  EXPECT_TRUE(fs_.Exists(WalPath(1)));
  EXPECT_EQ(store->size(), 0u);

  QP_ASSERT_OK(store->Put("julie", JulieProfile()));
  QP_ASSERT_OK(store->Put("rob", RobProfile()));
  StorageStats stats = store->storage_stats();
  EXPECT_TRUE(stats.durable);
  EXPECT_EQ(stats.records_appended, 2u);
  EXPECT_EQ(stats.last_appended_seqno, 2u);
  EXPECT_EQ(stats.last_synced_seqno, 2u);  // kEveryRecord default.
  EXPECT_GT(stats.wal_segment_bytes, 0u);
}

TEST_F(DurableStoreTest, ReopenRecoversAllMutationKinds) {
  UserProfile expected_julie = JulieProfile();
  AtomicPreference extra = AtomicPreference::Selection(
      AttributeRef{"GENRE", "genre"}, Value::Str("western"), 0.25);
  expected_julie.AddOrUpdate(extra);

  {
    auto store = MustOpen(Options());
    ASSERT_NE(store, nullptr);
    QP_ASSERT_OK(store->Put("julie", JulieProfile()));
    QP_ASSERT_OK(store->Put("rob", RobProfile()));
    QP_ASSERT_OK(store->Upsert("julie", {extra}));
    QP_ASSERT_OK(store->Remove("rob"));
    QP_ASSERT_OK(store->Close());
  }

  auto store = MustOpen(Options());
  ASSERT_NE(store, nullptr);
  EXPECT_EQ(store->size(), 1u);
  EXPECT_FALSE(store->Get("rob").ok());
  QP_ASSERT_OK_AND_ASSIGN(ProfileSnapshot julie, store->Get("julie"));
  EXPECT_TRUE(ProfilesEqual(*julie.profile, expected_julie));

  StorageStats stats = store->storage_stats();
  EXPECT_EQ(stats.records_replayed, 4u);
  EXPECT_EQ(stats.snapshot_users_loaded, 0u);
  EXPECT_EQ(stats.torn_bytes_truncated, 0u);
  EXPECT_GE(stats.recovery_millis, 0.0);

  // The recovered store continues the sequence instead of reusing it.
  QP_ASSERT_OK(store->Put("alice", RobProfile()));
  EXPECT_EQ(store->storage_stats().last_appended_seqno, 5u);
}

TEST_F(DurableStoreTest, CheckpointTruncatesTheWal) {
  auto store = MustOpen(Options());
  ASSERT_NE(store, nullptr);
  QP_ASSERT_OK(store->Put("julie", JulieProfile()));
  QP_ASSERT_OK(store->Put("rob", RobProfile()));
  EXPECT_GT(store->storage_stats().wal_segment_bytes, 0u);

  QP_ASSERT_OK(store->Checkpoint());
  StorageStats stats = store->storage_stats();
  EXPECT_EQ(stats.checkpoints, 1u);
  EXPECT_EQ(stats.wal_segment_bytes, 0u);  // Fresh segment.
  // Old generation files are gone, new ones exist.
  EXPECT_FALSE(fs_.Exists(WalPath(1)));
  EXPECT_TRUE(fs_.Exists(WalPath(3)));
  EXPECT_TRUE(fs_.Exists(JoinPath("db", SnapshotFileName(2))));

  // A second checkpoint with nothing new is a no-op.
  QP_ASSERT_OK(store->Checkpoint());
  EXPECT_EQ(store->storage_stats().checkpoints, 1u);

  QP_ASSERT_OK(store->Put("alice", JulieProfile()));
  QP_ASSERT_OK(store->Close());

  // Recovery = snapshot + WAL tail.
  auto reopened = MustOpen(Options());
  ASSERT_NE(reopened, nullptr);
  EXPECT_EQ(reopened->size(), 3u);
  StorageStats recovered = reopened->storage_stats();
  EXPECT_EQ(recovered.snapshot_users_loaded, 2u);
  EXPECT_EQ(recovered.records_replayed, 1u);
  QP_ASSERT_OK_AND_ASSIGN(ProfileSnapshot julie, reopened->Get("julie"));
  EXPECT_TRUE(ProfilesEqual(*julie.profile, JulieProfile()));
}

TEST_F(DurableStoreTest, TornFinalRecordIsSilentlyTruncated) {
  {
    auto store = MustOpen(Options());
    ASSERT_NE(store, nullptr);
    QP_ASSERT_OK(store->Put("julie", JulieProfile()));
    // The next append persists only 5 bytes — a crash mid-write. The
    // writer reports the failure and refuses further appends.
    fs_.InjectShortWrite(WalPath(1), 5);
    EXPECT_FALSE(store->Put("rob", RobProfile()).ok());
    EXPECT_FALSE(store->Put("again", RobProfile()).ok());
  }

  auto store = MustOpen(Options());
  ASSERT_NE(store, nullptr);
  EXPECT_EQ(store->size(), 1u);
  QP_ASSERT_OK(store->Get("julie").status());
  StorageStats stats = store->storage_stats();
  EXPECT_EQ(stats.records_replayed, 1u);
  EXPECT_EQ(stats.torn_bytes_truncated, 5u);

  // Recovery rewrote the segment without the torn fragment, so a second
  // recovery is clean.
  QP_ASSERT_OK(store->Put("rob", RobProfile()));
  QP_ASSERT_OK(store->Close());
  auto again = MustOpen(Options());
  ASSERT_NE(again, nullptr);
  EXPECT_EQ(again->size(), 2u);
  EXPECT_EQ(again->storage_stats().torn_bytes_truncated, 0u);
}

TEST_F(DurableStoreTest, FailedRecoveryNeverLosesDurableRecords) {
  {
    auto store = MustOpen(Options());
    ASSERT_NE(store, nullptr);
    QP_ASSERT_OK(store->Put("julie", JulieProfile()));
    QP_ASSERT_OK(store->Put("rob", RobProfile()));
    QP_ASSERT_OK(store->Close());
  }
  // A torn tail whose garbage made it to the platter before the crash.
  {
    auto file_or = fs_.NewWritableFile(WalPath(1), /*truncate=*/false);
    QP_ASSERT_OK(file_or.status());
    QP_ASSERT_OK((*file_or)->Append("torn"));
    QP_ASSERT_OK((*file_or)->Sync());
    QP_ASSERT_OK((*file_or)->Close());
  }
  QP_ASSERT_OK_AND_ASSIGN(size_t synced_before, fs_.SyncedSize(WalPath(1)));
  QP_ASSERT_OK_AND_ASSIGN(std::string content_before,
                          fs_.ReadFile(WalPath(1)));

  // Recovery drops the torn tail via temp file + rename; with fsync
  // failing, the open fails *without* having touched the segment — the
  // durable copy of every acknowledged record survives for a retry.
  fs_.SetSyncFailure(true);
  EXPECT_FALSE(DurableProfileStore::Open(&schema_, Options()).ok());
  QP_ASSERT_OK_AND_ASSIGN(size_t synced_after, fs_.SyncedSize(WalPath(1)));
  EXPECT_EQ(synced_after, synced_before);
  QP_ASSERT_OK_AND_ASSIGN(std::string content_after,
                          fs_.ReadFile(WalPath(1)));
  EXPECT_EQ(content_after, content_before);

  fs_.SetSyncFailure(false);
  auto store = MustOpen(Options());
  ASSERT_NE(store, nullptr);
  EXPECT_EQ(store->size(), 2u);
  EXPECT_EQ(store->storage_stats().torn_bytes_truncated, 4u);
}

TEST_F(DurableStoreTest, CheckpointFailureIsRecordedAndClears) {
  auto store = MustOpen(Options());
  ASSERT_NE(store, nullptr);
  QP_ASSERT_OK(store->Put("julie", JulieProfile()));
  QP_ASSERT_OK(store->Put("rob", RobProfile()));

  // The snapshot write fails (disk full, say); the WAL is untouched, so
  // the store keeps serving and logging on the old generation, and the
  // failure is visible in the stats instead of vanishing.
  fs_.InjectShortWrite(JoinPath("db", SnapshotFileName(2)), 0);
  EXPECT_FALSE(store->Checkpoint().ok());
  StorageStats stats = store->storage_stats();
  EXPECT_EQ(stats.checkpoints, 0u);
  EXPECT_EQ(stats.failed_checkpoints, 1u);
  EXPECT_FALSE(stats.last_checkpoint_error.empty());

  // Still writable, and the next successful checkpoint clears the error.
  QP_ASSERT_OK(store->Put("alice", JulieProfile()));
  QP_ASSERT_OK(store->Checkpoint());
  stats = store->storage_stats();
  EXPECT_EQ(stats.checkpoints, 1u);
  EXPECT_EQ(stats.failed_checkpoints, 1u);
  EXPECT_TRUE(stats.last_checkpoint_error.empty());
}

TEST_F(DurableStoreTest, MidLogCorruptionFailsTheOpen) {
  {
    auto store = MustOpen(Options());
    ASSERT_NE(store, nullptr);
    QP_ASSERT_OK(store->Put("julie", JulieProfile()));
    QP_ASSERT_OK(store->Put("rob", RobProfile()));
    QP_ASSERT_OK(store->Close());
  }
  // Flip a bit inside record 1's body (offset 12 = start of its seqno).
  // Valid data follows, so this is corruption, not a torn tail.
  QP_ASSERT_OK(fs_.FlipBit(WalPath(1), 12, 0));

  auto store_or = DurableProfileStore::Open(&schema_, Options());
  ASSERT_FALSE(store_or.ok());
  EXPECT_EQ(store_or.status().code(), StatusCode::kParseError);
}

TEST_F(DurableStoreTest, CorruptSnapshotFailsTheOpen) {
  {
    auto store = MustOpen(Options());
    ASSERT_NE(store, nullptr);
    QP_ASSERT_OK(store->Put("julie", JulieProfile()));
    QP_ASSERT_OK(store->Checkpoint());
    QP_ASSERT_OK(store->Close());
  }
  QP_ASSERT_OK(fs_.FlipBit(JoinPath("db", SnapshotFileName(1)), 20, 4));
  auto store_or = DurableProfileStore::Open(&schema_, Options());
  ASSERT_FALSE(store_or.ok());
  EXPECT_EQ(store_or.status().code(), StatusCode::kParseError);
}

TEST_F(DurableStoreTest, RemoveSemantics) {
  auto store = MustOpen(Options());
  ASSERT_NE(store, nullptr);
  EXPECT_EQ(store->Remove("ghost").code(), StatusCode::kNotFound);
  // A failed remove must not pollute the log.
  EXPECT_EQ(store->storage_stats().records_appended, 0u);

  QP_ASSERT_OK(store->Put("julie", JulieProfile()));
  QP_ASSERT_OK(store->Remove("julie"));
  EXPECT_EQ(store->Remove("julie").code(), StatusCode::kNotFound);
  EXPECT_EQ(store->storage_stats().records_appended, 2u);
}

TEST_F(DurableStoreTest, RemoveThenReinsertNeverReusesAnEpoch) {
  auto store = MustOpen(Options());
  ASSERT_NE(store, nullptr);
  QP_ASSERT_OK(store->Put("julie", JulieProfile()));
  QP_ASSERT_OK_AND_ASSIGN(ProfileSnapshot before, store->Get("julie"));
  QP_ASSERT_OK(store->Remove("julie"));
  QP_ASSERT_OK(store->Put("julie", RobProfile()));
  QP_ASSERT_OK_AND_ASSIGN(ProfileSnapshot after, store->Get("julie"));
  EXPECT_GT(after.epoch, before.epoch);
}

TEST_F(DurableStoreTest, ValidationHappensBeforeLogging) {
  auto store = MustOpen(Options());
  ASSERT_NE(store, nullptr);

  UserProfile bad;
  QP_ASSERT_OK(bad.Add(AtomicPreference::Selection(
      AttributeRef{"NO_SUCH_TABLE", "x"}, Value::Str("y"), 0.5)));
  EXPECT_FALSE(store->Put("u", bad).ok());
  EXPECT_FALSE(store
                   ->Upsert("u", {AtomicPreference::Selection(
                                     AttributeRef{"NO_SUCH_TABLE", "x"},
                                     Value::Str("y"), 0.5)})
                   .ok());
  // The rejected mutations never reached the WAL.
  EXPECT_EQ(store->storage_stats().records_appended, 0u);
  QP_ASSERT_OK(store->Close());

  auto reopened = MustOpen(Options());
  ASSERT_NE(reopened, nullptr);
  EXPECT_EQ(reopened->size(), 0u);
}

TEST_F(DurableStoreTest, CloseBlocksMutationsButNotReads) {
  auto store = MustOpen(Options());
  ASSERT_NE(store, nullptr);
  QP_ASSERT_OK(store->Put("julie", JulieProfile()));
  QP_ASSERT_OK(store->Close());
  QP_ASSERT_OK(store->Close());  // Idempotent.
  EXPECT_FALSE(store->Put("rob", RobProfile()).ok());
  EXPECT_FALSE(store->Sync().ok());
  QP_ASSERT_OK(store->Get("julie").status());  // Reads keep working.
}

TEST_F(DurableStoreTest, UnsyncedMutationsMayVanishUnderPolicyNever) {
  StorageOptions options = Options();
  options.wal.fsync = FsyncPolicy::kNever;
  {
    auto store = MustOpen(options);
    ASSERT_NE(store, nullptr);
    QP_ASSERT_OK(store->Put("julie", JulieProfile()));
    QP_ASSERT_OK(store->Sync());  // julie is durable.
    QP_ASSERT_OK(store->Put("rob", RobProfile()));  // rob is not.
    EXPECT_EQ(store->storage_stats().last_synced_seqno, 1u);
    Rng rng(3);
    fs_.Crash(&rng);  // No Close: the process just died.
  }

  auto store = MustOpen(options);
  ASSERT_NE(store, nullptr);
  // julie must have survived; rob may or may not have (his record was
  // never synced), but recovery itself must succeed.
  QP_ASSERT_OK(store->Get("julie").status());
  EXPECT_GE(store->storage_stats().records_replayed, 1u);
}

TEST_F(DurableStoreTest, BackgroundCompactionKicksInPastTheThreshold) {
  StorageOptions options = Options();
  options.background_compaction = true;
  options.compact_threshold_bytes = 256;  // Tiny: every few puts compact.
  auto store = MustOpen(options);
  ASSERT_NE(store, nullptr);

  for (int i = 0; i < 20; ++i) {
    QP_ASSERT_OK(store->Put("user" + std::to_string(i), JulieProfile()));
  }
  // The compactor runs asynchronously; give it a bounded moment.
  for (int wait = 0; wait < 2000; ++wait) {
    if (store->storage_stats().checkpoints > 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GT(store->storage_stats().checkpoints, 0u);
  QP_ASSERT_OK(store->Close());

  auto reopened = MustOpen(options);
  ASSERT_NE(reopened, nullptr);
  EXPECT_EQ(reopened->size(), 20u);
}

TEST_F(DurableStoreTest, ConcurrentMutatorsThenRecovery) {
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 60;
  auto store = MustOpen(Options());
  ASSERT_NE(store, nullptr);

  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      store->All();
      store->Get("t0-u1");
      store->storage_stats();
    }
  });

  std::vector<std::thread> writers;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      // Each thread owns a disjoint user set, so log order per user is
      // well defined and the final state is deterministic.
      for (int i = 0; i < kOpsPerThread; ++i) {
        std::string user = "t" + std::to_string(t) + "-u" +
                           std::to_string(i % 5);
        Status status;
        switch (i % 3) {
          case 0:
            status = store->Put(user, JulieProfile());
            break;
          case 1:
            status = store->Upsert(
                user, {AtomicPreference::Selection(
                          AttributeRef{"GENRE", "genre"},
                          Value::Str("g" + std::to_string(i)), 0.5)});
            break;
          default:
            status = store->Remove(user);
            if (status.code() == StatusCode::kNotFound) status = Status::Ok();
            break;
        }
        if (!status.ok()) failures.fetch_add(1);
      }
    });
  }
  for (auto& writer : writers) writer.join();
  stop.store(true, std::memory_order_release);
  reader.join();
  EXPECT_EQ(failures.load(), 0);

  // Snapshot the final in-memory state, recover, and compare.
  std::map<std::string, UserProfile> expected;
  for (auto& [user_id, snapshot] : store->All()) {
    expected.emplace(user_id, *snapshot.profile);
  }
  QP_ASSERT_OK(store->Close());

  auto recovered = MustOpen(Options());
  ASSERT_NE(recovered, nullptr);
  auto all = recovered->All();
  ASSERT_EQ(all.size(), expected.size());
  for (auto& [user_id, snapshot] : all) {
    auto it = expected.find(user_id);
    ASSERT_NE(it, expected.end()) << user_id;
    EXPECT_TRUE(ProfilesEqual(*snapshot.profile, it->second)) << user_id;
  }
}

TEST_F(DurableStoreTest, ServiceIntegration) {
  QP_ASSERT_OK_AND_ASSIGN(Database db, BuildPaperDatabase());

  ServiceOptions options;
  options.num_workers = 2;
  options.storage.dir = "db";
  options.storage.fs = &fs_;
  options.storage.background_compaction = false;
  {
    QP_ASSERT_OK_AND_ASSIGN(auto service,
                            PersonalizationService::OpenDurable(&db, options));
    QP_ASSERT_OK(service->profiles().Put("julie", JulieProfile()));

    PersonalizationRequest request;
    request.user_id = "julie";
    request.query = TonightQuery();
    PersonalizationResponse response = service->PersonalizeOne(request);
    QP_ASSERT_OK(response.status);

    ServiceStats stats = service->stats();
    EXPECT_TRUE(stats.storage.durable);
    EXPECT_EQ(stats.storage.records_appended, 1u);
    QP_ASSERT_OK(service->profiles().Close());
  }

  // A new service over the same directory serves the recovered profile.
  QP_ASSERT_OK_AND_ASSIGN(auto service,
                          PersonalizationService::OpenDurable(&db, options));
  EXPECT_EQ(service->profiles().size(), 1u);
  PersonalizationRequest request;
  request.user_id = "julie";
  request.query = TonightQuery();
  PersonalizationResponse response = service->PersonalizeOne(request);
  QP_ASSERT_OK(response.status);
  EXPECT_EQ(service->stats().storage.records_replayed, 1u);

  // An in-memory service reports a non-durable store.
  PersonalizationService memory_service(&db);
  EXPECT_FALSE(memory_service.stats().storage.durable);
}

TEST_F(DurableStoreTest, OpenDurableRequiresADirectory) {
  QP_ASSERT_OK_AND_ASSIGN(Database db, BuildPaperDatabase());
  ServiceOptions options;  // storage.dir left empty.
  auto service_or = PersonalizationService::OpenDurable(&db, options);
  EXPECT_EQ(service_or.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace storage
}  // namespace qp
