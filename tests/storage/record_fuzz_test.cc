// Round-trip fuzzing of the binary WAL record format, the storage-layer
// extension of the parser/profile fuzz suites: random mutations encode
// and decode to bit-identical structures, every truncation of a valid
// encoding is rejected (the format is prefix-free per kind), and random
// or bit-flipped input never crashes the decoder.

#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "common/test_util.h"
#include "gtest/gtest.h"
#include "qp/pref/preference.h"
#include "qp/pref/profile.h"
#include "qp/storage/record.h"
#include "qp/storage/wal.h"
#include "qp/util/random.h"

namespace qp {
namespace storage {
namespace {

std::string RandomString(Rng* rng, size_t max_len) {
  size_t len = rng->Below(max_len + 1);
  std::string s;
  s.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    // Full byte range: the codec is length-prefixed, so quotes, newlines
    // and NUL bytes must all survive.
    s.push_back(static_cast<char>(rng->Below(256)));
  }
  return s;
}

// An arbitrary finite double, exercising the full mantissa (the text
// profile format rounds to six significant digits; the binary format
// must not).
double RandomDouble(Rng* rng) {
  for (;;) {
    uint64_t bits = rng->Next();
    double d;
    static_assert(sizeof d == sizeof bits);
    std::memcpy(&d, &bits, sizeof d);
    if (std::isfinite(d)) return d;
  }
}

AttributeRef RandomAttribute(Rng* rng) {
  return AttributeRef{RandomString(rng, 12), RandomString(rng, 12)};
}

Value RandomValue(Rng* rng) {
  switch (rng->Below(4)) {
    case 0:
      return Value::Null();
    case 1:
      return Value::Int(static_cast<int64_t>(rng->Next()));
    case 2:
      return Value::Real(RandomDouble(rng));
    default:
      return Value::Str(RandomString(rng, 20));
  }
}

AtomicPreference RandomPreference(Rng* rng) {
  switch (rng->Below(3)) {
    case 0:
      return AtomicPreference::Selection(RandomAttribute(rng),
                                         RandomValue(rng), RandomDouble(rng));
    case 1:
      return AtomicPreference::Join(RandomAttribute(rng), RandomAttribute(rng),
                                    RandomDouble(rng));
    default:
      return AtomicPreference::NearSelection(RandomAttribute(rng),
                                             RandomValue(rng),
                                             RandomDouble(rng),
                                             RandomDouble(rng));
  }
}

ProfileMutation RandomMutation(Rng* rng) {
  std::string user = RandomString(rng, 16);
  switch (rng->Below(3)) {
    case 0: {
      // Put: profile entries must have pairwise-distinct conditions
      // (UserProfile dedups on AddOrUpdate), so give each preference a
      // unique attribute via an index-tagged table name.
      UserProfile profile;
      size_t n = rng->Below(6);
      for (size_t i = 0; i < n; ++i) {
        AtomicPreference pref = RandomPreference(rng);
        AttributeRef attr{"T" + std::to_string(i) + pref.attribute().table,
                          pref.attribute().column};
        if (pref.is_join()) {
          profile.AddOrUpdate(
              AtomicPreference::Join(attr, pref.target(), pref.doi()));
        } else if (pref.is_near()) {
          profile.AddOrUpdate(AtomicPreference::NearSelection(
              attr, pref.value(), pref.width(), pref.doi()));
        } else {
          profile.AddOrUpdate(
              AtomicPreference::Selection(attr, pref.value(), pref.doi()));
        }
      }
      return ProfileMutation::Put(std::move(user), std::move(profile));
    }
    case 1: {
      std::vector<AtomicPreference> prefs;
      size_t n = rng->Below(6);
      for (size_t i = 0; i < n; ++i) prefs.push_back(RandomPreference(rng));
      return ProfileMutation::Upsert(std::move(user), std::move(prefs));
    }
    default:
      return ProfileMutation::Remove(std::move(user));
  }
}

void ExpectMutationsEqual(const ProfileMutation& a, const ProfileMutation& b) {
  ASSERT_EQ(a.kind, b.kind);
  EXPECT_EQ(a.user_id, b.user_id);
  EXPECT_TRUE(ProfilesEqual(a.profile, b.profile));
  ASSERT_EQ(a.preferences.size(), b.preferences.size());
  for (size_t i = 0; i < a.preferences.size(); ++i) {
    EXPECT_TRUE(PreferencesEqual(a.preferences[i], b.preferences[i]))
        << "preference " << i;
  }
}

TEST(RecordFuzzTest, RandomMutationsRoundTripBitExactly) {
  Rng rng(20260807);
  for (int iter = 0; iter < 2000; ++iter) {
    ProfileMutation mutation = RandomMutation(&rng);
    std::string encoded;
    EncodeMutation(mutation, &encoded);
    auto decoded = DecodeMutation(encoded);
    ASSERT_TRUE(decoded.ok()) << "iter " << iter << ": " << decoded.status();
    ExpectMutationsEqual(mutation, *decoded);

    // Determinism: re-encoding the decoded mutation yields the same bytes.
    std::string re_encoded;
    EncodeMutation(*decoded, &re_encoded);
    EXPECT_EQ(encoded, re_encoded) << "iter " << iter;
  }
}

TEST(RecordFuzzTest, EveryTruncationIsRejected) {
  Rng rng(4242);
  for (int iter = 0; iter < 200; ++iter) {
    ProfileMutation mutation = RandomMutation(&rng);
    std::string encoded;
    EncodeMutation(mutation, &encoded);
    for (size_t len = 0; len < encoded.size(); ++len) {
      auto decoded = DecodeMutation(std::string_view(encoded).substr(0, len));
      EXPECT_FALSE(decoded.ok())
          << "iter " << iter << ": truncation to " << len << " of "
          << encoded.size() << " bytes decoded";
    }
  }
}

TEST(RecordFuzzTest, TrailingGarbageIsRejected) {
  Rng rng(99);
  for (int iter = 0; iter < 200; ++iter) {
    ProfileMutation mutation = RandomMutation(&rng);
    std::string encoded;
    EncodeMutation(mutation, &encoded);
    encoded.push_back(static_cast<char>(rng.Below(256)));
    EXPECT_FALSE(DecodeMutation(encoded).ok()) << "iter " << iter;
  }
}

TEST(RecordFuzzTest, RandomBytesNeverCrashTheDecoder) {
  Rng rng(31337);
  int accepted = 0;
  for (int iter = 0; iter < 5000; ++iter) {
    std::string bytes = RandomString(&rng, 64);
    auto decoded = DecodeMutation(bytes);  // Must not crash or hang.
    if (decoded.ok()) ++accepted;
  }
  // Random bytes occasionally form a tiny valid record (e.g. a Remove);
  // the point is that nothing blows up, so only sanity-bound the count.
  EXPECT_LT(accepted, 5000);
}

TEST(RecordFuzzTest, FramedRecordsRoundTripThroughTheWalReader) {
  // One level up from the mutation codec: random payloads framed by
  // EncodeWalRecord must come back bit-exactly from a WalReader, and a
  // single bit flip anywhere in the log must never be absorbed — it
  // either truncates the tail (torn) or fails the read (corruption),
  // but the reader never yields a record that was not written.
  Rng rng(20260808);
  for (int iter = 0; iter < 200; ++iter) {
    std::vector<std::string> payloads;
    std::string log;
    size_t count = 1 + rng.Below(8);
    for (size_t i = 0; i < count; ++i) {
      payloads.push_back(RandomString(&rng, 48));
      EncodeWalRecord(i + 1, payloads.back(), &log);
    }

    WalReader reader(log, 1);
    for (size_t i = 0; i < count; ++i) {
      WalRecord record;
      bool has_record = false;
      QP_ASSERT_OK(reader.Next(&record, &has_record));
      ASSERT_TRUE(has_record) << "iter " << iter << " record " << i;
      EXPECT_EQ(record.seqno, i + 1);
      EXPECT_EQ(record.payload, payloads[i]) << "iter " << iter;
    }
    WalRecord record;
    bool has_record = true;
    QP_ASSERT_OK(reader.Next(&record, &has_record));
    EXPECT_FALSE(has_record);
    EXPECT_EQ(reader.valid_bytes(), log.size());

    // Flip one random bit; count how many untouched records survive.
    size_t offset = rng.Below(log.size());
    std::string flipped = log;
    flipped[offset] =
        static_cast<char>(flipped[offset] ^ (1 << rng.Below(8)));
    WalReader damaged(flipped, 1);
    size_t seen = 0;
    for (;;) {
      WalRecord r;
      bool has = false;
      if (!damaged.Next(&r, &has).ok()) break;  // Corruption: clean stop.
      if (!has) break;                          // Torn/clean end.
      ASSERT_LT(seen, count);
      EXPECT_EQ(r.seqno, seen + 1);
      EXPECT_EQ(r.payload, payloads[seen]) << "iter " << iter;
      ++seen;
    }
  }
}

TEST(RecordFuzzTest, BitFlipsNeverCrashTheDecoder) {
  Rng rng(777);
  for (int iter = 0; iter < 1000; ++iter) {
    ProfileMutation mutation = RandomMutation(&rng);
    std::string encoded;
    EncodeMutation(mutation, &encoded);
    if (encoded.empty()) continue;
    size_t offset = rng.Below(encoded.size());
    encoded[offset] =
        static_cast<char>(encoded[offset] ^ (1 << rng.Below(8)));
    // A flipped degree bit yields a different-but-valid mutation; a
    // flipped length or tag must fail cleanly. Either way: no crash.
    DecodeMutation(encoded);
  }
}

TEST(RecordFuzzTest, BothDurableFormatsPreserveBitsOnlyTheDisplayRounds) {
  // A degree with more than six significant digits: the display
  // rendering (ToString, 6 significant digits) rounds it, but both
  // durable formats must not — the binary WAL record and the text
  // snapshot (UserProfile::Serialize, which renders degrees with the
  // round-trip formatter; the chaos suite caught the earlier display
  // rendering silently perturbing snapshotted degrees).
  const double doi = 0.123456789012345;
  UserProfile profile;
  QP_ASSERT_OK(profile.Add(AtomicPreference::Selection(
      AttributeRef{"GENRE", "genre"}, Value::Str("comedy"), doi)));

  ProfileMutation mutation = ProfileMutation::Put("julie", profile);
  std::string encoded;
  EncodeMutation(mutation, &encoded);
  auto decoded = DecodeMutation(encoded);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  ASSERT_EQ(decoded->profile.size(), 1u);
  EXPECT_EQ(decoded->profile.preferences()[0].doi(), doi);  // Bit-exact.

  auto reparsed = UserProfile::Parse(profile.Serialize());
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed->preferences()[0].doi(), doi);  // Text is exact too.

  auto displayed = UserProfile::Parse(profile.preferences()[0].ToString());
  ASSERT_TRUE(displayed.ok());
  EXPECT_NE(displayed->preferences()[0].doi(), doi);  // Display rounds.
}

TEST(RecordFuzzTest, TextFormatRoundTripsOnTheBenchmarkGrid) {
  // Degrees on a dyadic grid (k/16) have short exact decimal forms, so
  // they survive the text format bit-exactly — the property the snapshot
  // writer (which serializes profiles as text) relies on for the
  // crash-recovery suite's generated profiles.
  Rng rng(5);
  for (int iter = 0; iter < 200; ++iter) {
    UserProfile profile;
    QP_ASSERT_OK(profile.Add(AtomicPreference::Selection(
        AttributeRef{"GENRE", "genre"}, Value::Str("g" + std::to_string(iter)),
        static_cast<double>(1 + rng.Below(16)) / 16.0)));
    QP_ASSERT_OK(profile.Add(AtomicPreference::Join(
        AttributeRef{"PLAY", "mid"}, AttributeRef{"MOVIE", "mid"},
        static_cast<double>(1 + rng.Below(16)) / 16.0)));
    auto reparsed = UserProfile::Parse(profile.Serialize());
    ASSERT_TRUE(reparsed.ok()) << reparsed.status();
    EXPECT_TRUE(ProfilesEqual(profile, *reparsed)) << "iter " << iter;
  }
}

}  // namespace
}  // namespace storage
}  // namespace qp
