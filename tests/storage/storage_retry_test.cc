// Storage resilience under fsync failures: transient failures are
// retried with bounded backoff (no data loss, no duplicated frames);
// persistent failures trip the circuit breaker, turning the store
// read-only while reads keep serving the in-memory state.

#include <memory>
#include <string>

#include "common/test_util.h"
#include "gtest/gtest.h"
#include "qp/data/movie_db.h"
#include "qp/data/paper_example.h"
#include "qp/storage/durable_profile_store.h"
#include "qp/storage/fault_injection.h"
#include "qp/storage/wal.h"
#include "qp/util/status.h"

namespace qp {
namespace storage {
namespace {

class WalRetryTest : public ::testing::Test {
 protected:
  std::unique_ptr<WalWriter> NewWriter(WalOptions options) {
    auto file = fs_.NewWritableFile("wal-1.log", /*truncate=*/true);
    EXPECT_TRUE(file.ok());
    return std::make_unique<WalWriter>(std::move(file).value(),
                                       /*first_seqno=*/1, options);
  }

  FaultInjectingFileSystem fs_;
};

TEST_F(WalRetryTest, TransientSyncFailureIsRetriedToSuccess) {
  WalOptions options;
  options.max_sync_retries = 5;
  options.retry_backoff = std::chrono::milliseconds(0);
  auto writer = NewWriter(options);

  fs_.FailNextSyncs(2);
  uint64_t seqno = 0;
  QP_ASSERT_OK(writer->Append("payload", &seqno));
  EXPECT_EQ(seqno, 1u);
  EXPECT_EQ(writer->last_synced_seqno(), 1u);
  EXPECT_EQ(writer->stats().sync_retries, 2u);

  // The writer is healthy afterwards: further appends need no retries.
  QP_ASSERT_OK(writer->Append("more", &seqno));
  EXPECT_EQ(writer->stats().sync_retries, 2u);
  QP_ASSERT_OK(writer->Close());

  // The log holds each record exactly once (a retried fsync must never
  // re-append bytes).
  QP_ASSERT_OK_AND_ASSIGN(std::string data, fs_.ReadFile("wal-1.log"));
  WalReader reader(data, 1);
  WalRecord record;
  bool has_record = false;
  QP_ASSERT_OK(reader.Next(&record, &has_record));
  ASSERT_TRUE(has_record);
  EXPECT_EQ(record.payload, "payload");
  QP_ASSERT_OK(reader.Next(&record, &has_record));
  ASSERT_TRUE(has_record);
  EXPECT_EQ(record.payload, "more");
  QP_ASSERT_OK(reader.Next(&record, &has_record));
  EXPECT_FALSE(has_record);
  EXPECT_EQ(reader.torn_bytes(), 0u);
}

TEST_F(WalRetryTest, RetriesExhaustedBecomesStickyError) {
  WalOptions options;
  options.max_sync_retries = 2;
  options.retry_backoff = std::chrono::milliseconds(0);
  auto writer = NewWriter(options);

  fs_.FailNextSyncs(10);  // More failures than the retry budget.
  uint64_t seqno = 0;
  EXPECT_FALSE(writer->Append("payload", &seqno).ok());
  EXPECT_EQ(writer->stats().sync_retries, 2u);
  // Sticky: the writer refuses further work even though the filesystem
  // has recovered by now.
  EXPECT_FALSE(writer->Append("again", &seqno).ok());
}

TEST_F(WalRetryTest, ZeroRetriesPreservesHistoricalBehaviour) {
  auto writer = NewWriter(WalOptions{});
  fs_.FailNextSyncs(1);
  uint64_t seqno = 0;
  EXPECT_FALSE(writer->Append("payload", &seqno).ok());
  EXPECT_EQ(writer->stats().sync_retries, 0u);
}

class StorageBreakerTest : public ::testing::Test {
 protected:
  StorageBreakerTest() : schema_(MovieSchema()) {}

  StorageOptions Options() {
    StorageOptions options;
    options.dir = "db";
    options.fs = &fs_;
    options.background_compaction = false;
    options.wal.max_sync_retries = 3;
    options.wal.retry_backoff = std::chrono::milliseconds(0);
    return options;
  }

  std::unique_ptr<DurableProfileStore> MustOpen(StorageOptions options) {
    auto store_or = DurableProfileStore::Open(&schema_, std::move(options));
    EXPECT_TRUE(store_or.ok()) << store_or.status();
    return store_or.ok() ? std::move(store_or).value() : nullptr;
  }

  Schema schema_;
  FaultInjectingFileSystem fs_;
};

TEST_F(StorageBreakerTest, TransientFsyncFailuresAreAbsorbedWithoutDataLoss) {
  {
    auto store = MustOpen(Options());
    ASSERT_NE(store, nullptr);
    fs_.FailNextSyncs(2);
    QP_ASSERT_OK(store->Put("julie", JulieProfile()));
    QP_ASSERT_OK(store->Put("rob", RobProfile()));

    StorageStats stats = store->storage_stats();
    EXPECT_EQ(stats.sync_retries, 2u);
    EXPECT_EQ(stats.mutation_failures, 0u);
    EXPECT_EQ(stats.breaker_trips, 0u);
    EXPECT_FALSE(stats.breaker_open);
    QP_ASSERT_OK(store->Close());
  }

  // Both profiles survive a reopen: the retried fsync really made the
  // records durable.
  auto store = MustOpen(Options());
  ASSERT_NE(store, nullptr);
  EXPECT_EQ(store->size(), 2u);
  QP_ASSERT_OK_AND_ASSIGN(ProfileSnapshot julie, store->Get("julie"));
  EXPECT_TRUE(ProfilesEqual(*julie.profile, JulieProfile()));
}

TEST_F(StorageBreakerTest, PersistentFailureTripsTheBreakerReadsKeepServing) {
  StorageOptions options = Options();
  options.breaker_threshold = 3;
  auto store = MustOpen(std::move(options));
  ASSERT_NE(store, nullptr);
  QP_ASSERT_OK(store->Put("julie", JulieProfile()));

  // The disk dies for good: every fsync (and its retries) fails.
  fs_.SetSyncFailure(true);
  for (int attempt = 0; attempt < 3; ++attempt) {
    Status status = store->Put("rob", RobProfile());
    ASSERT_FALSE(status.ok()) << "attempt " << attempt;
    EXPECT_NE(status.code(), StatusCode::kUnavailable)
        << "breaker tripped before the threshold, attempt " << attempt;
  }

  // Threshold reached: mutations now fail fast with Unavailable, without
  // touching the dead WAL.
  Status shed = store->Upsert("julie", {AtomicPreference::Selection(
                                  AttributeRef{"GENRE", "genre"},
                                  Value::Str("western"), 0.25)});
  EXPECT_EQ(shed.code(), StatusCode::kUnavailable);
  EXPECT_EQ(store->Remove("julie").code(), StatusCode::kUnavailable);

  // Reads are unaffected: the pre-failure state keeps serving.
  QP_ASSERT_OK_AND_ASSIGN(ProfileSnapshot julie, store->Get("julie"));
  EXPECT_TRUE(ProfilesEqual(*julie.profile, JulieProfile()));
  EXPECT_EQ(store->size(), 1u);

  StorageStats stats = store->storage_stats();
  EXPECT_EQ(stats.mutation_failures, 3u);
  EXPECT_EQ(stats.breaker_trips, 1u);
  EXPECT_TRUE(stats.breaker_open);
  EXPECT_GT(stats.sync_retries, 0u);  // The first failure was retried.
}

TEST_F(StorageBreakerTest, ZeroThresholdDisablesTheBreaker) {
  StorageOptions options = Options();
  options.breaker_threshold = 0;
  options.wal.max_sync_retries = 0;
  auto store = MustOpen(std::move(options));
  ASSERT_NE(store, nullptr);

  fs_.SetSyncFailure(true);
  for (int attempt = 0; attempt < 10; ++attempt) {
    Status status = store->Put("julie", JulieProfile());
    ASSERT_FALSE(status.ok());
    // Never Unavailable: the caller keeps seeing the WAL's sticky error.
    EXPECT_NE(status.code(), StatusCode::kUnavailable);
  }
  StorageStats stats = store->storage_stats();
  EXPECT_EQ(stats.breaker_trips, 0u);
  EXPECT_FALSE(stats.breaker_open);
  EXPECT_EQ(stats.mutation_failures, 10u);
}

}  // namespace
}  // namespace storage
}  // namespace qp
