// CRC32C tests: known Castagnoli vectors, incremental Extend equivalence
// and the mask scheme that keeps zero-filled regions from verifying.

#include <cstring>
#include <string>

#include "gtest/gtest.h"
#include "qp/util/crc32c.h"

namespace qp {
namespace crc32c {
namespace {

TEST(Crc32cTest, KnownVectors) {
  // The canonical CRC-32C check value.
  EXPECT_EQ(Value("123456789"), 0xE3069283u);
  // iSCSI test vectors (RFC 3720 appendix B.4).
  std::string zeros(32, '\0');
  EXPECT_EQ(Value(zeros), 0x8A9136AAu);
  std::string ones(32, '\xff');
  EXPECT_EQ(Value(ones), 0x62A8AB43u);
  std::string ascending(32, '\0');
  for (int i = 0; i < 32; ++i) ascending[i] = static_cast<char>(i);
  EXPECT_EQ(Value(ascending), 0x46DD794Eu);
}

TEST(Crc32cTest, EmptyInputIsZero) {
  EXPECT_EQ(Value(""), 0u);
}

TEST(Crc32cTest, ExtendMatchesOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  const uint32_t whole = Value(data);
  for (size_t split = 0; split <= data.size(); ++split) {
    uint32_t crc = Extend(0, data.data(), split);
    crc = Extend(crc, data.data() + split, data.size() - split);
    EXPECT_EQ(crc, whole) << "split at " << split;
  }
}

TEST(Crc32cTest, SensitiveToEveryBit) {
  std::string data = "payload";
  const uint32_t base = Value(data);
  for (size_t i = 0; i < data.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string flipped = data;
      flipped[i] = static_cast<char>(flipped[i] ^ (1 << bit));
      EXPECT_NE(Value(flipped), base) << "byte " << i << " bit " << bit;
    }
  }
}

TEST(Crc32cTest, MaskRoundTripsAndDisplaces) {
  const uint32_t crc = Value("some record body");
  EXPECT_EQ(Unmask(Mask(crc)), crc);
  EXPECT_NE(Mask(crc), crc);
  EXPECT_NE(Mask(Mask(crc)), crc);
  // The fixed point the mask exists to break: an unwritten (zero-filled)
  // header region must not verify as "CRC 0 stored next to CRC-0 data".
  EXPECT_NE(Mask(0u), 0u);
}

}  // namespace
}  // namespace crc32c
}  // namespace qp
