// Bit-flip robustness property: for EVERY single-bit flip in a recorded
// WAL segment and in a snapshot file, opening the store must return a
// clean Status — never crash, never hang, never serve a silently-wrong
// state. A flipped WAL yields at worst a valid *prefix* of the recorded
// mutations (the CRC-framed log cuts at the damage); a flipped snapshot
// must fail the open outright (full-file CRC). CI runs this suite under
// ASan+UBSan, where any out-of-bounds parse of damaged bytes aborts.

#include <memory>
#include <string>
#include <vector>

#include "common/test_util.h"
#include "gtest/gtest.h"
#include "qp/data/movie_db.h"
#include "qp/data/paper_example.h"
#include "qp/storage/durable_profile_store.h"
#include "qp/storage/fault_injection.h"
#include "qp/storage/record.h"
#include "qp/storage/snapshot.h"
#include "qp/util/file.h"
#include "qp/util/status.h"

namespace qp {
namespace storage {
namespace {

/// The golden directory image: every file a storage dir can hold, byte
/// for byte, so each trial can rebuild a pristine filesystem and damage
/// exactly one bit.
struct DirImage {
  std::string manifest;
  std::string snapshot_name;  // Empty when no snapshot exists.
  std::string snapshot;
  std::string wal_name;
  std::string wal;
};

class BitflipRobustnessTest : public ::testing::Test {
 protected:
  BitflipRobustnessTest() : schema_(MovieSchema()) {}

  StorageOptions Options(FileSystem* fs) {
    StorageOptions options;
    options.dir = "db";
    options.fs = fs;
    options.background_compaction = false;
    return options;
  }

  /// Records a golden directory: three Puts of distinct users (and, when
  /// `with_snapshot`, a checkpoint before the last two).
  DirImage RecordGolden(bool with_snapshot) {
    FaultInjectingFileSystem fs;
    {
      auto store_or = DurableProfileStore::Open(&schema_, Options(&fs));
      EXPECT_TRUE(store_or.ok()) << store_or.status();
      auto store = std::move(store_or).value();
      EXPECT_TRUE(store->Put("u1", JulieProfile()).ok());
      if (with_snapshot) EXPECT_TRUE(store->Checkpoint().ok());
      EXPECT_TRUE(store->Put("u2", RobProfile()).ok());
      EXPECT_TRUE(store->Put("u3", SmallProfile()).ok());
      EXPECT_TRUE(store->Close().ok());
    }
    DirImage image;
    auto manifest_or = ReadManifest(&fs, "db");
    EXPECT_TRUE(manifest_or.ok()) << manifest_or.status();
    const Manifest manifest = std::move(manifest_or).value();
    image.manifest = MustRead(&fs, JoinPath("db", kManifestName));
    image.wal_name = manifest.wal_file;
    image.wal = MustRead(&fs, JoinPath("db", manifest.wal_file));
    if (!manifest.snapshot_file.empty()) {
      image.snapshot_name = manifest.snapshot_file;
      image.snapshot = MustRead(&fs, JoinPath("db", manifest.snapshot_file));
    }
    return image;
  }

  UserProfile SmallProfile() {
    UserProfile profile;
    profile.AddOrUpdate(AtomicPreference::Selection(
        AttributeRef{"GENRE", "genre"}, Value::Str("noir"), 0.4));
    return profile;
  }

  static std::string MustRead(FileSystem* fs, const std::string& path) {
    auto data = fs->ReadFile(path);
    EXPECT_TRUE(data.ok()) << path << ": " << data.status();
    return data.ok() ? std::move(data).value() : std::string();
  }

  static void WriteAll(FileSystem* fs, const std::string& path,
                       const std::string& data) {
    auto file_or = fs->NewWritableFile(path, /*truncate=*/true);
    ASSERT_TRUE(file_or.ok()) << file_or.status();
    auto file = std::move(file_or).value();
    ASSERT_TRUE(file->Append(data).ok());
    ASSERT_TRUE(file->Sync().ok());
    ASSERT_TRUE(file->Close().ok());
  }

  /// Builds a filesystem holding `image` with one bit of one file flipped.
  void BuildDamaged(FileSystem* fs, const DirImage& image,
                    const std::string& damaged_file, size_t bit) {
    ASSERT_TRUE(fs->CreateDir("db").ok());
    auto with_flip = [&](const std::string& name, const std::string& data) {
      std::string bytes = data;
      if (name == damaged_file) bytes[bit / 8] ^= char(1u << (bit % 8));
      WriteAll(fs, JoinPath("db", name), bytes);
    };
    with_flip(kManifestName, image.manifest);
    with_flip(image.wal_name, image.wal);
    if (!image.snapshot_name.empty()) {
      with_flip(image.snapshot_name, image.snapshot);
    }
  }

  /// True when the open store's contents are a prefix of the recorded
  /// mutation sequence: u1, then u2, then u3, each with its exact profile.
  bool IsExactPrefix(DurableProfileStore* store) {
    const std::vector<std::pair<std::string, UserProfile>> sequence = {
        {"u1", JulieProfile()}, {"u2", RobProfile()}, {"u3", SmallProfile()}};
    size_t present = 0;
    for (const auto& [user, profile] : sequence) {
      auto snapshot = store->Get(user);
      if (!snapshot.ok()) break;
      if (!ProfilesEqual(*snapshot.value().profile, profile)) return false;
      ++present;
    }
    // Nothing past the prefix may exist.
    for (size_t i = present; i < sequence.size(); ++i) {
      if (store->Get(sequence[i].first).ok()) return false;
    }
    return store->size() == present;
  }

  Schema schema_;
};

TEST_F(BitflipRobustnessTest, EveryWalBitFlipYieldsCleanPrefixOrError) {
  const DirImage image = RecordGolden(/*with_snapshot=*/false);
  ASSERT_GT(image.wal.size(), 0u);
  size_t opened_ok = 0;
  size_t rejected = 0;
  for (size_t bit = 0; bit < image.wal.size() * 8; ++bit) {
    FaultInjectingFileSystem fs;
    BuildDamaged(&fs, image, image.wal_name, bit);
    if (::testing::Test::HasFatalFailure()) return;
    auto store_or = DurableProfileStore::Open(&schema_, Options(&fs));
    if (!store_or.ok()) {
      ++rejected;  // A clean error is an acceptable outcome.
      continue;
    }
    ++opened_ok;
    auto store = std::move(store_or).value();
    EXPECT_TRUE(IsExactPrefix(store.get()))
        << "silently wrong state after flipping bit " << bit;
    if (::testing::Test::HasNonfatalFailure()) return;  // One repro is enough.
  }
  // Sanity: both outcomes occur (tail flips truncate, mid-log flips
  // reject), and the undamaged image opens with everything.
  EXPECT_GT(opened_ok, 0u);
  EXPECT_GT(rejected, 0u);
  FaultInjectingFileSystem fs;
  BuildDamaged(&fs, image, /*damaged_file=*/"", 0);
  auto store_or = DurableProfileStore::Open(&schema_, Options(&fs));
  ASSERT_TRUE(store_or.ok()) << store_or.status();
  EXPECT_EQ(std::move(store_or).value()->size(), 3u);
}

TEST_F(BitflipRobustnessTest, EverySnapshotBitFlipFailsTheOpenCleanly) {
  const DirImage image = RecordGolden(/*with_snapshot=*/true);
  ASSERT_FALSE(image.snapshot_name.empty());
  ASSERT_GT(image.snapshot.size(), 0u);
  for (size_t bit = 0; bit < image.snapshot.size() * 8; ++bit) {
    FaultInjectingFileSystem fs;
    BuildDamaged(&fs, image, image.snapshot_name, bit);
    if (::testing::Test::HasFatalFailure()) return;
    auto store_or = DurableProfileStore::Open(&schema_, Options(&fs));
    // The snapshot is covered end to end by the manifest's CRC: any
    // damage must fail the open — serving a half-true snapshot is the
    // one outcome durability can never allow.
    EXPECT_FALSE(store_or.ok()) << "bit " << bit << " went undetected";
    if (::testing::Test::HasNonfatalFailure()) return;
  }
}

TEST_F(BitflipRobustnessTest, EveryManifestBitFlipReturnsCleanly) {
  const DirImage image = RecordGolden(/*with_snapshot=*/true);
  for (size_t bit = 0; bit < image.manifest.size() * 8; ++bit) {
    FaultInjectingFileSystem fs;
    BuildDamaged(&fs, image, std::string(kManifestName), bit);
    if (::testing::Test::HasFatalFailure()) return;
    // The manifest is tiny and structured; a flip may redirect to a
    // missing file, break a field, or (rarely) survive parsing. The
    // property is purely "no crash, no hang, a Status either way" — and
    // if the open succeeds, the state must still be the full recording
    // or an exact prefix of it.
    auto store_or = DurableProfileStore::Open(&schema_, Options(&fs));
    if (store_or.ok()) {
      auto store = std::move(store_or).value();
      EXPECT_TRUE(IsExactPrefix(store.get()))
          << "silently wrong state after flipping manifest bit " << bit;
      if (::testing::Test::HasNonfatalFailure()) return;
    }
  }
}

}  // namespace
}  // namespace storage
}  // namespace qp
