// Randomized crash-recovery property suite — the durability subsystem's
// acceptance test. Hundreds of independent trials each run a random
// mutation sequence against a DurableProfileStore over the fault-
// injecting filesystem, kill it at a random point (torn writes, lost
// unsynced tails, failed fsyncs), recover, and check the contract:
//
//   the recovered state equals the reference state after some prefix
//   R of the logged mutations, with R >= the last synced seqno at the
//   moment of the crash; a torn final record is truncated silently;
//   a corrupted record in the *middle* of the log fails the open.
//
// The reference is an independent in-test replica of the mutation
// semantics (plain std::map, no shared code with the store).
//
// Run under -DQP_SANITIZE=address / thread via tests/run_sanitized.sh to
// also prove memory- and race-safety of the recovery paths.

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/test_util.h"
#include "gtest/gtest.h"
#include "qp/data/movie_db.h"
#include "qp/storage/durable_profile_store.h"
#include "qp/storage/fault_injection.h"
#include "qp/storage/record.h"
#include "qp/storage/snapshot.h"
#include "qp/storage/wal.h"
#include "qp/util/random.h"

namespace qp {
namespace storage {
namespace {

using ReferenceState = std::map<std::string, UserProfile>;

// Degrees on a dyadic grid round-trip bit-exactly through the snapshot's
// text profile format (see record_fuzz_test), so reference comparison
// can demand exact equality.
double GridDoi(Rng* rng) {
  return static_cast<double>(1 + rng->Below(16)) / 16.0;
}

AtomicPreference RandomGridPreference(Rng* rng) {
  switch (rng->Below(4)) {
    case 0:
      return AtomicPreference::Selection(
          AttributeRef{"GENRE", "genre"},
          Value::Str("g" + std::to_string(rng->Below(8))), GridDoi(rng));
    case 1:
      return AtomicPreference::Selection(
          AttributeRef{"MOVIE", "year"},
          Value::Int(static_cast<int64_t>(1990 + rng->Below(20))),
          GridDoi(rng));
    case 2:
      return AtomicPreference::Join(AttributeRef{"PLAY", "mid"},
                                    AttributeRef{"MOVIE", "mid"},
                                    GridDoi(rng));
    default:
      return AtomicPreference::NearSelection(
          AttributeRef{"MOVIE", "year"},
          Value::Int(static_cast<int64_t>(1995 + rng->Below(10))),
          /*width=*/static_cast<double>(1 + rng->Below(8)), GridDoi(rng));
  }
}

UserProfile RandomGridProfile(Rng* rng) {
  UserProfile profile;
  size_t n = 1 + rng->Below(4);
  for (size_t i = 0; i < n; ++i) {
    profile.AddOrUpdate(RandomGridPreference(rng));
  }
  return profile;
}

bool StatesEqual(const ReferenceState& reference,
                 const std::vector<std::pair<std::string, ProfileSnapshot>>&
                     recovered) {
  if (reference.size() != recovered.size()) return false;
  for (const auto& [user_id, snapshot] : recovered) {
    auto it = reference.find(user_id);
    if (it == reference.end()) return false;
    if (!ProfilesEqual(*snapshot.profile, it->second)) return false;
  }
  return true;
}

class CrashRecoveryPropertyTest : public ::testing::Test {
 protected:
  // One full trial; returns false (after ADD_FAILURE) on contract
  // violation so the caller can abort early with the seed in hand.
  bool RunTrial(uint64_t seed) {
    Rng rng(seed);
    FaultInjectingFileSystem fs;
    Schema schema = MovieSchema();

    StorageOptions options;
    options.dir = "db";
    options.fs = &fs;
    options.background_compaction = false;
    options.compact_threshold_bytes = 0;  // Only explicit checkpoints.
    options.wal.fsync =
        rng.Below(2) == 0 ? FsyncPolicy::kEveryRecord : FsyncPolicy::kNever;

    auto store_or = DurableProfileStore::Open(&schema, options);
    if (!store_or.ok()) {
      ADD_FAILURE() << "seed " << seed << ": open failed: "
                    << store_or.status();
      return false;
    }
    auto store = std::move(store_or).value();

    // states[i] == reference after the i-th logged mutation; seqnos are
    // dense from 1, so states[i] is the state a recovery to seqno i must
    // reproduce.
    std::vector<ReferenceState> states;
    states.push_back({});
    ReferenceState current;
    const std::vector<std::string> users = {"u0", "u1", "u2", "u3", "u4"};

    size_t num_ops = 1 + rng.Below(25);
    for (size_t op = 0; op < num_ops; ++op) {
      const std::string& user = users[rng.Below(users.size())];
      uint64_t action = rng.Below(10);
      if (action < 5) {
        UserProfile profile = RandomGridProfile(&rng);
        Status status = store->Put(user, profile);
        if (!status.ok()) {
          ADD_FAILURE() << "seed " << seed << ": put failed: " << status;
          return false;
        }
        current[user] = std::move(profile);
        states.push_back(current);
      } else if (action < 8) {
        std::vector<AtomicPreference> prefs;
        size_t n = 1 + rng.Below(2);
        for (size_t i = 0; i < n; ++i) {
          prefs.push_back(RandomGridPreference(&rng));
        }
        Status status = store->Upsert(user, prefs);
        if (!status.ok()) {
          ADD_FAILURE() << "seed " << seed << ": upsert failed: " << status;
          return false;
        }
        UserProfile& merged = current[user];
        for (const AtomicPreference& pref : prefs) merged.AddOrUpdate(pref);
        states.push_back(current);
      } else {
        Status status = store->Remove(user);
        if (status.ok()) {
          current.erase(user);
          states.push_back(current);
        } else if (status.code() != StatusCode::kNotFound) {
          ADD_FAILURE() << "seed " << seed << ": remove failed: " << status;
          return false;
        }
        // NotFound: nothing was logged, the reference does not advance.
      }

      if (rng.Below(10) == 0) {
        Status status = store->Sync();
        if (!status.ok()) {
          ADD_FAILURE() << "seed " << seed << ": sync failed: " << status;
          return false;
        }
      }
      if (rng.Below(12) == 0) {
        Status status = store->Checkpoint();
        if (!status.ok()) {
          ADD_FAILURE() << "seed " << seed << ": checkpoint failed: "
                        << status;
          return false;
        }
      }
    }

    // Optionally end the run with an injected I/O fault: a short write
    // (torn append) or a failing fsync. Both leave the writer in its
    // sticky-error state; the already-acknowledged prefix must survive.
    // A mutation refused because of the fault was never acknowledged,
    // but its record may still be complete in the (unsynced) file — a
    // recovery that replays it is correct too, so it lands in
    // `unacked_tail` rather than `states`.
    std::vector<ReferenceState> unacked_tail;
    uint64_t fault = rng.Below(8);
    if (fault <= 1) {
      if (fault == 0) {
        // Arms the *initial* segment name; if a checkpoint renamed the
        // live segment the injection is simply never consumed and the
        // put below succeeds like any other.
        fs.InjectShortWrite(JoinPath("db", WalFileName(1)), rng.Below(12));
      } else {
        fs.SetSyncFailure(true);
      }
      UserProfile profile = RandomGridProfile(&rng);
      Status status = store->Put("u0", profile);
      fs.SetSyncFailure(false);
      if (status.ok()) {
        current["u0"] = std::move(profile);
        states.push_back(current);
      } else if (fault == 1) {
        // Failed fsync: the frame reached the file intact before the
        // sync failed, so recovery may serve it.
        ReferenceState extra = current;
        extra["u0"] = std::move(profile);
        unacked_tail.push_back(std::move(extra));
      }
      // fault == 0 with a consumed injection leaves only a torn
      // fragment, which recovery must drop — nothing to record.
    }

    const uint64_t synced_floor = store->storage_stats().last_synced_seqno;
    const uint64_t total = states.size() - 1;
    const uint64_t max_r = total + unacked_tail.size();

    // Die. Clean close, machine crash with torn tails, or process crash
    // with the page cache surviving.
    uint64_t death = rng.Below(3);
    bool clean = death == 0;
    if (clean) {
      Status status = store->Close();
      // A clean close after an injected fault may legitimately report
      // the sticky error; the directory must still recover.
      if (!status.ok() && fault > 1) {
        ADD_FAILURE() << "seed " << seed << ": close failed: " << status;
        return false;
      }
    } else if (death == 1) {
      fs.Crash(&rng);
    } else {
      fs.CrashKeepingUnsynced();
    }
    store.reset();  // Destructor must cope with the dead filesystem.

    // Recover.
    auto recovered_or = DurableProfileStore::Open(&schema, options);
    if (!recovered_or.ok()) {
      ADD_FAILURE() << "seed " << seed
                    << ": recovery failed: " << recovered_or.status();
      return false;
    }
    auto recovered = std::move(recovered_or).value();
    auto recovered_state = recovered->All();

    // Pin down the exact recovery point R: the next append gets R + 1.
    Status probe = recovered->Put("probe", RandomGridProfile(&rng));
    if (!probe.ok()) {
      ADD_FAILURE() << "seed " << seed
                    << ": recovered store rejects writes: " << probe;
      return false;
    }
    const uint64_t r = recovered->storage_stats().last_appended_seqno - 1;

    if (r < synced_floor || r > max_r) {
      ADD_FAILURE() << "seed " << seed << ": recovered to seqno " << r
                    << ", outside [synced=" << synced_floor
                    << ", max=" << max_r << "]";
      return false;
    }
    if (clean && fault > 1 && r != total) {
      ADD_FAILURE() << "seed " << seed << ": clean close lost records ("
                    << r << " of " << total << ")";
      return false;
    }
    const ReferenceState& expected =
        r <= total ? states[r] : unacked_tail[r - total - 1];
    if (!StatesEqual(expected, recovered_state)) {
      ADD_FAILURE() << "seed " << seed << ": recovered state at seqno " << r
                    << " does not match the reference ("
                    << recovered_state.size() << " users vs "
                    << expected.size() << ")";
      return false;
    }
    return true;
  }
};

TEST_F(CrashRecoveryPropertyTest, FiveHundredTwentyRandomCrashes) {
  for (uint64_t seed = 1; seed <= 520; ++seed) {
    if (!RunTrial(seed)) {
      FAIL() << "crash-recovery contract violated at seed " << seed;
    }
  }
}

TEST_F(CrashRecoveryPropertyTest, MidLogBitFlipsFailTheOpen) {
  for (uint64_t seed = 1; seed <= 120; ++seed) {
    Rng rng(seed * 7919);
    FaultInjectingFileSystem fs;
    Schema schema = MovieSchema();
    StorageOptions options;
    options.dir = "db";
    options.fs = &fs;
    options.background_compaction = false;
    options.compact_threshold_bytes = 0;

    size_t num_records = 2 + rng.Below(10);
    {
      auto store_or = DurableProfileStore::Open(&schema, options);
      ASSERT_TRUE(store_or.ok()) << store_or.status();
      for (size_t i = 0; i < num_records; ++i) {
        QP_ASSERT_OK((*store_or)->Put("u" + std::to_string(i % 4),
                                      RandomGridProfile(&rng)));
      }
      QP_ASSERT_OK((*store_or)->Close());
    }

    // Frame boundaries, via the reader itself.
    const std::string wal_path = JoinPath("db", WalFileName(1));
    QP_ASSERT_OK_AND_ASSIGN(std::string log, fs.ReadFile(wal_path));
    std::vector<size_t> frame_ends;
    WalReader reader(log, 1);
    for (;;) {
      WalRecord record;
      bool has_record = false;
      QP_ASSERT_OK(reader.Next(&record, &has_record));
      if (!has_record) break;
      frame_ends.push_back(reader.valid_bytes());
    }
    ASSERT_EQ(frame_ends.size(), num_records);

    // Flip one bit inside the *body* of a non-final record (the frame
    // header's length field is uncovered by the CRC — the standard
    // limitation of length-prefixed logs). Valid records follow, so the
    // open must refuse to serve a store with a hole in its history.
    size_t victim = rng.Below(num_records - 1);
    size_t begin = (victim == 0 ? 0 : frame_ends[victim - 1]) + 8;
    size_t offset = begin + rng.Below(frame_ends[victim] - begin);
    QP_ASSERT_OK(fs.FlipBit(wal_path, offset, static_cast<int>(rng.Below(8))));

    auto reopened = DurableProfileStore::Open(&schema, options);
    ASSERT_FALSE(reopened.ok()) << "seed " << seed << ": bit flip at "
                                << offset << " went undetected";
    EXPECT_EQ(reopened.status().code(), StatusCode::kParseError)
        << "seed " << seed;
  }
}

TEST_F(CrashRecoveryPropertyTest, FinalRecordBitFlipsAreTruncated) {
  // Damage to the very last record is indistinguishable from a torn
  // append, so recovery drops that record and serves the prefix.
  for (uint64_t seed = 1; seed <= 80; ++seed) {
    Rng rng(seed * 104729);
    FaultInjectingFileSystem fs;
    Schema schema = MovieSchema();
    StorageOptions options;
    options.dir = "db";
    options.fs = &fs;
    options.background_compaction = false;
    options.compact_threshold_bytes = 0;

    size_t num_records = 2 + rng.Below(6);
    std::vector<ReferenceState> states;
    states.push_back({});
    ReferenceState current;
    {
      auto store_or = DurableProfileStore::Open(&schema, options);
      ASSERT_TRUE(store_or.ok()) << store_or.status();
      for (size_t i = 0; i < num_records; ++i) {
        std::string user = "u" + std::to_string(i % 3);
        UserProfile profile = RandomGridProfile(&rng);
        QP_ASSERT_OK((*store_or)->Put(user, profile));
        current[user] = std::move(profile);
        states.push_back(current);
      }
      QP_ASSERT_OK((*store_or)->Close());
    }

    const std::string wal_path = JoinPath("db", WalFileName(1));
    QP_ASSERT_OK_AND_ASSIGN(std::string log, fs.ReadFile(wal_path));
    std::vector<size_t> frame_ends;
    WalReader reader(log, 1);
    for (;;) {
      WalRecord record;
      bool has_record = false;
      QP_ASSERT_OK(reader.Next(&record, &has_record));
      if (!has_record) break;
      frame_ends.push_back(reader.valid_bytes());
    }
    ASSERT_EQ(frame_ends.size(), num_records);

    size_t begin = frame_ends[num_records - 2] + 8;
    size_t offset = begin + rng.Below(frame_ends.back() - begin);
    QP_ASSERT_OK(fs.FlipBit(wal_path, offset, static_cast<int>(rng.Below(8))));

    auto reopened = DurableProfileStore::Open(&schema, options);
    ASSERT_TRUE(reopened.ok()) << "seed " << seed << ": "
                               << reopened.status();
    EXPECT_GT((*reopened)->storage_stats().torn_bytes_truncated, 0u)
        << "seed " << seed;
    EXPECT_TRUE(StatesEqual(states[num_records - 1], (*reopened)->All()))
        << "seed " << seed;
  }
}

}  // namespace
}  // namespace storage
}  // namespace qp
