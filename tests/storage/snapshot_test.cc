// Snapshot + manifest tests: atomic manifest commit, snapshot round-trip
// through the text profile format, and checksum/size verification against
// the manifest before a single profile is parsed.

#include <memory>
#include <string>
#include <utility>

#include "common/test_util.h"
#include "gtest/gtest.h"
#include "qp/data/paper_example.h"
#include "qp/storage/fault_injection.h"
#include "qp/storage/record.h"
#include "qp/storage/snapshot.h"

namespace qp {
namespace storage {
namespace {

class SnapshotTest : public ::testing::Test {
 protected:
  SnapshotTest() { QP_EXPECT_OK(fs_.CreateDir("db")); }

  FaultInjectingFileSystem fs_;
};

TEST_F(SnapshotTest, FileNamesSortBySeqno) {
  EXPECT_EQ(SnapshotFileName(7), "snapshot-00000000000000000007.qps");
  EXPECT_EQ(WalFileName(123), "wal-00000000000000000123.log");
  // Zero padding keeps lexicographic order == numeric order.
  EXPECT_LT(SnapshotFileName(9), SnapshotFileName(10));
  EXPECT_LT(WalFileName(99), WalFileName(100));
}

TEST_F(SnapshotTest, ManifestRoundTrip) {
  Manifest manifest;
  manifest.seqno = 42;
  manifest.snapshot_file = SnapshotFileName(42);
  manifest.snapshot_bytes = 1234;
  manifest.snapshot_crc = 0xdeadbeef;
  manifest.wal_file = WalFileName(43);
  QP_ASSERT_OK(WriteManifest(&fs_, "db", manifest));

  QP_ASSERT_OK_AND_ASSIGN(Manifest read, ReadManifest(&fs_, "db"));
  EXPECT_EQ(read.seqno, 42u);
  EXPECT_EQ(read.snapshot_file, manifest.snapshot_file);
  EXPECT_EQ(read.snapshot_bytes, 1234u);
  EXPECT_EQ(read.snapshot_crc, 0xdeadbeefu);
  EXPECT_EQ(read.wal_file, manifest.wal_file);

  // No temp file left behind: the write is temp + rename.
  EXPECT_FALSE(fs_.Exists("db/MANIFEST.tmp"));
}

TEST_F(SnapshotTest, FreshManifestOmitsSnapshotLine) {
  Manifest manifest;
  manifest.seqno = 0;
  manifest.wal_file = WalFileName(1);
  QP_ASSERT_OK(WriteManifest(&fs_, "db", manifest));
  QP_ASSERT_OK_AND_ASSIGN(Manifest read, ReadManifest(&fs_, "db"));
  EXPECT_EQ(read.seqno, 0u);
  EXPECT_TRUE(read.snapshot_file.empty());
  EXPECT_EQ(read.wal_file, WalFileName(1));
}

TEST_F(SnapshotTest, MissingManifestIsNotFound) {
  EXPECT_EQ(ReadManifest(&fs_, "db").status().code(), StatusCode::kNotFound);
}

TEST_F(SnapshotTest, GarbledManifestIsParseError) {
  Manifest manifest;
  manifest.seqno = 1;
  manifest.wal_file = WalFileName(2);
  QP_ASSERT_OK(WriteManifest(&fs_, "db", manifest));
  QP_ASSERT_OK(fs_.FlipBit("db/MANIFEST", 0, 3));  // Damage the header.
  EXPECT_EQ(ReadManifest(&fs_, "db").status().code(), StatusCode::kParseError);
}

TEST_F(SnapshotTest, SignedManifestNumbersAreRejected) {
  // strtoull would wrap "-1" to 2^64-1; the parser must refuse signs
  // rather than accept a garbage seqno as a huge value.
  auto write_manifest = [&](const std::string& content) {
    auto file_or = fs_.NewWritableFile("db/MANIFEST", /*truncate=*/true);
    QP_ASSERT_OK(file_or.status());
    QP_ASSERT_OK((*file_or)->Append(content));
    QP_ASSERT_OK((*file_or)->Close());
  };
  write_manifest("qp-manifest v1\nseqno -1\nwal " + WalFileName(1) + "\n");
  EXPECT_EQ(ReadManifest(&fs_, "db").status().code(), StatusCode::kParseError);
  write_manifest("qp-manifest v1\nseqno +3\nwal " + WalFileName(1) + "\n");
  EXPECT_EQ(ReadManifest(&fs_, "db").status().code(), StatusCode::kParseError);
  write_manifest("qp-manifest v1\nseqno 99999999999999999999999\nwal " +
                 WalFileName(1) + "\n");  // Overflows uint64.
  EXPECT_EQ(ReadManifest(&fs_, "db").status().code(), StatusCode::kParseError);
  write_manifest("qp-manifest v1\nseqno 3\nwal " + WalFileName(1) + "\n");
  QP_ASSERT_OK(ReadManifest(&fs_, "db").status());
}

TEST_F(SnapshotTest, ManifestOverwriteIsAtomic) {
  Manifest first;
  first.seqno = 1;
  first.wal_file = WalFileName(2);
  QP_ASSERT_OK(WriteManifest(&fs_, "db", first));

  Manifest second;
  second.seqno = 9;
  second.snapshot_file = SnapshotFileName(9);
  second.snapshot_bytes = 77;
  second.snapshot_crc = 0x1234;
  second.wal_file = WalFileName(10);
  QP_ASSERT_OK(WriteManifest(&fs_, "db", second));

  QP_ASSERT_OK_AND_ASSIGN(Manifest read, ReadManifest(&fs_, "db"));
  EXPECT_EQ(read.seqno, 9u);
  EXPECT_EQ(read.wal_file, WalFileName(10));
}

TEST_F(SnapshotTest, SnapshotRoundTrip) {
  SnapshotUsers users;
  users.emplace_back("julie",
                     std::make_shared<const UserProfile>(JulieProfile()));
  users.emplace_back("rob", std::make_shared<const UserProfile>(RobProfile()));
  // Pathological ids the framing must carry: empty, spaces, newline.
  users.emplace_back("", std::make_shared<const UserProfile>(UserProfile()));
  users.emplace_back("user with\nnewline",
                     std::make_shared<const UserProfile>(JulieProfile()));

  uint64_t bytes = 0;
  uint32_t crc = 0;
  QP_ASSERT_OK(WriteSnapshot(&fs_, "db/snap", users, &bytes, &crc));
  EXPECT_GT(bytes, 0u);

  QP_ASSERT_OK_AND_ASSIGN(auto loaded,
                          LoadSnapshot(&fs_, "db/snap", bytes, crc));
  ASSERT_EQ(loaded.size(), users.size());
  for (size_t i = 0; i < users.size(); ++i) {
    EXPECT_EQ(loaded[i].first, users[i].first) << "user " << i;
    // The text profile format is exact for the example profiles (their
    // degrees are short decimals).
    EXPECT_TRUE(ProfilesEqual(loaded[i].second, *users[i].second))
        << "user " << i;
  }
}

TEST_F(SnapshotTest, EmptySnapshotRoundTrip) {
  uint64_t bytes = 0;
  uint32_t crc = 0;
  QP_ASSERT_OK(WriteSnapshot(&fs_, "db/snap", {}, &bytes, &crc));
  QP_ASSERT_OK_AND_ASSIGN(auto loaded,
                          LoadSnapshot(&fs_, "db/snap", bytes, crc));
  EXPECT_TRUE(loaded.empty());
}

TEST_F(SnapshotTest, BitFlipAnywhereRejectsTheWholeSnapshot) {
  SnapshotUsers users;
  users.emplace_back("julie",
                     std::make_shared<const UserProfile>(JulieProfile()));
  uint64_t bytes = 0;
  uint32_t crc = 0;
  QP_ASSERT_OK(WriteSnapshot(&fs_, "db/snap", users, &bytes, &crc));

  for (size_t offset = 0; offset < bytes; offset += 17) {
    QP_ASSERT_OK(fs_.FlipBit("db/snap", offset, 2));
    auto loaded = LoadSnapshot(&fs_, "db/snap", bytes, crc);
    EXPECT_EQ(loaded.status().code(), StatusCode::kParseError)
        << "flip at " << offset;
    QP_ASSERT_OK(fs_.FlipBit("db/snap", offset, 2));  // Restore.
  }
  // Restored content loads again.
  QP_ASSERT_OK(LoadSnapshot(&fs_, "db/snap", bytes, crc).status());
}

TEST_F(SnapshotTest, SizeMismatchIsRejectedBeforeParsing) {
  SnapshotUsers users;
  users.emplace_back("julie",
                     std::make_shared<const UserProfile>(JulieProfile()));
  uint64_t bytes = 0;
  uint32_t crc = 0;
  QP_ASSERT_OK(WriteSnapshot(&fs_, "db/snap", users, &bytes, &crc));
  auto loaded = LoadSnapshot(&fs_, "db/snap", bytes + 1, crc);
  EXPECT_EQ(loaded.status().code(), StatusCode::kParseError);
}

TEST_F(SnapshotTest, MissingSnapshotFileIsNotFound) {
  auto loaded = LoadSnapshot(&fs_, "db/absent", 10, 0);
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace storage
}  // namespace qp
