// WalWriter/WalReader tests: frame layout, sequence-number discipline,
// fsync policies and group commit, and the torn-tail vs mid-log-corruption
// distinction recovery relies on.

#include <algorithm>
#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/test_util.h"
#include "gtest/gtest.h"
#include "qp/storage/coding.h"
#include "qp/storage/fault_injection.h"
#include "qp/storage/wal.h"
#include "qp/util/crc32c.h"

namespace qp {
namespace storage {
namespace {

class WalTest : public ::testing::Test {
 protected:
  std::unique_ptr<WritableFile> NewFile(const std::string& name) {
    auto file_or = fs_.NewWritableFile(name, /*truncate=*/true);
    EXPECT_TRUE(file_or.ok()) << file_or.status();
    return std::move(file_or).value();
  }

  std::string Contents(const std::string& name) {
    auto content_or = fs_.ReadFile(name);
    EXPECT_TRUE(content_or.ok()) << content_or.status();
    return content_or.ok() ? std::move(content_or).value() : std::string();
  }

  FaultInjectingFileSystem fs_;
};

TEST_F(WalTest, FrameLayout) {
  std::string frame;
  EncodeWalRecord(7, "abc", &frame);
  // [size u32][masked crc(size) u32][masked crc(body) u32][seqno u64][payload].
  ASSERT_EQ(frame.size(), 4 + 4 + 4 + 8 + 3);
  Decoder dec(frame);
  uint32_t body_size = 0;
  uint32_t size_crc = 0;
  uint32_t body_crc = 0;
  ASSERT_TRUE(dec.GetFixed32(&body_size));
  ASSERT_TRUE(dec.GetFixed32(&size_crc));
  ASSERT_TRUE(dec.GetFixed32(&body_crc));
  EXPECT_EQ(body_size, 8u + 3u);
  EXPECT_EQ(crc32c::Unmask(size_crc),
            crc32c::Value(std::string_view(frame).substr(0, 4)));
  std::string_view body = frame;
  body.remove_prefix(12);
  EXPECT_EQ(crc32c::Unmask(body_crc), crc32c::Value(body));
  uint64_t seqno = 0;
  ASSERT_TRUE(dec.GetFixed64(&seqno));
  EXPECT_EQ(seqno, 7u);
}

TEST_F(WalTest, AppendAndReadBack) {
  WalWriter writer(NewFile("wal"), /*first_seqno=*/1);
  std::vector<std::string> payloads = {"alpha", "", "gamma", "delta"};
  for (size_t i = 0; i < payloads.size(); ++i) {
    uint64_t seqno = 0;
    QP_ASSERT_OK(writer.Append(payloads[i], &seqno));
    EXPECT_EQ(seqno, i + 1);
  }
  EXPECT_EQ(writer.last_appended_seqno(), 4u);
  EXPECT_EQ(writer.last_synced_seqno(), 4u);  // kEveryRecord default.
  QP_ASSERT_OK(writer.Close());

  std::string log = Contents("wal");
  WalReader reader(log, /*expected_first_seqno=*/1);
  for (size_t i = 0; i < payloads.size(); ++i) {
    WalRecord record;
    bool has_record = false;
    QP_ASSERT_OK(reader.Next(&record, &has_record));
    ASSERT_TRUE(has_record) << "record " << i;
    EXPECT_EQ(record.seqno, i + 1);
    EXPECT_EQ(record.payload, payloads[i]);
  }
  WalRecord record;
  bool has_record = true;
  QP_ASSERT_OK(reader.Next(&record, &has_record));
  EXPECT_FALSE(has_record);
  EXPECT_EQ(reader.valid_bytes(), log.size());
  EXPECT_EQ(reader.torn_bytes(), 0u);
}

TEST_F(WalTest, FirstSeqnoAnchorsTheSequence) {
  WalWriter writer(NewFile("wal"), /*first_seqno=*/42);
  uint64_t seqno = 0;
  QP_ASSERT_OK(writer.Append("x", &seqno));
  EXPECT_EQ(seqno, 42u);
  QP_ASSERT_OK(writer.Close());

  // A reader expecting a different start refuses the log: a stale
  // segment can never be replayed against the wrong base state.
  std::string log = Contents("wal");
  WalReader reader(log, /*expected_first_seqno=*/1);
  WalRecord record;
  bool has_record = false;
  EXPECT_FALSE(reader.Next(&record, &has_record).ok());
}

TEST_F(WalTest, SeqnoGapMidLogIsCorruption) {
  std::string log;
  EncodeWalRecord(1, "a", &log);
  EncodeWalRecord(3, "b", &log);  // Gap: 2 is missing.
  WalReader reader(log, 1);
  WalRecord record;
  bool has_record = false;
  QP_ASSERT_OK(reader.Next(&record, &has_record));
  ASSERT_TRUE(has_record);
  EXPECT_FALSE(reader.Next(&record, &has_record).ok());
}

TEST_F(WalTest, TornTailIsSilentlyTruncated) {
  std::string log;
  EncodeWalRecord(1, "first", &log);
  EncodeWalRecord(2, "second", &log);
  std::string full = log;
  EncodeWalRecord(3, "third", &log);

  // Cut anywhere strictly inside the final frame: the reader must stop
  // after record 2 with OK and report the dangling bytes as torn.
  for (size_t cut = full.size() + 1; cut < log.size(); ++cut) {
    std::string torn = log.substr(0, cut);
    WalReader reader(torn, 1);
    WalRecord record;
    bool has_record = false;
    QP_ASSERT_OK(reader.Next(&record, &has_record));
    ASSERT_TRUE(has_record);
    EXPECT_EQ(record.seqno, 1u);
    QP_ASSERT_OK(reader.Next(&record, &has_record));
    ASSERT_TRUE(has_record);
    EXPECT_EQ(record.seqno, 2u);
    QP_ASSERT_OK(reader.Next(&record, &has_record));
    EXPECT_FALSE(has_record);
    EXPECT_EQ(reader.valid_bytes(), full.size()) << "cut at " << cut;
    EXPECT_EQ(reader.torn_bytes(), cut - full.size()) << "cut at " << cut;
  }
}

TEST_F(WalTest, CorruptFinalRecordCountsAsTorn) {
  // A bad checksum on the very last record is indistinguishable from a
  // partially persisted append, so it ends the log cleanly.
  std::string log;
  EncodeWalRecord(1, "first", &log);
  size_t first_size = log.size();
  EncodeWalRecord(2, "second", &log);
  log[log.size() - 1] = static_cast<char>(log.back() ^ 0x01);

  WalReader reader(log, 1);
  WalRecord record;
  bool has_record = false;
  QP_ASSERT_OK(reader.Next(&record, &has_record));
  ASSERT_TRUE(has_record);
  QP_ASSERT_OK(reader.Next(&record, &has_record));
  EXPECT_FALSE(has_record);
  EXPECT_EQ(reader.valid_bytes(), first_size);
  EXPECT_EQ(reader.torn_bytes(), log.size() - first_size);
}

TEST_F(WalTest, CorruptRecordMidLogIsAnError) {
  std::string log;
  EncodeWalRecord(1, "first", &log);
  size_t first_size = log.size();
  EncodeWalRecord(2, "second", &log);
  EncodeWalRecord(3, "third", &log);

  // Flip one payload bit of record 2 — valid data follows, so this is
  // real corruption, not a torn tail.
  log[first_size + 12 + 8] =
      static_cast<char>(log[first_size + 12 + 8] ^ 0x40);
  WalReader reader(log, 1);
  WalRecord record;
  bool has_record = false;
  QP_ASSERT_OK(reader.Next(&record, &has_record));
  ASSERT_TRUE(has_record);
  Status status = reader.Next(&record, &has_record);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kParseError);
}

TEST_F(WalTest, FlippedLengthFieldMidLogIsCorruptionNotTorn) {
  std::string log;
  EncodeWalRecord(1, "first", &log);
  size_t first_size = log.size();
  EncodeWalRecord(2, "second", &log);
  EncodeWalRecord(3, "third", &log);

  // Flip a bit in record 2's length field. Its header checksum fails,
  // and record 3 still verifies after it, so truncating here would
  // silently lose a valid record — the reader must refuse instead.
  log[first_size] = static_cast<char>(log[first_size] ^ 0x80);
  WalReader reader(log, 1);
  WalRecord record;
  bool has_record = false;
  QP_ASSERT_OK(reader.Next(&record, &has_record));
  ASSERT_TRUE(has_record);
  Status status = reader.Next(&record, &has_record);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kParseError);
}

TEST_F(WalTest, FlippedLengthFieldOnFinalRecordIsTorn) {
  std::string log;
  EncodeWalRecord(1, "first", &log);
  size_t first_size = log.size();
  EncodeWalRecord(2, "second", &log);

  // Same flip, but nothing valid follows: indistinguishable from the
  // garbage prefix of a torn append, so the log ends cleanly.
  log[first_size] = static_cast<char>(log[first_size] ^ 0x80);
  WalReader reader(log, 1);
  WalRecord record;
  bool has_record = false;
  QP_ASSERT_OK(reader.Next(&record, &has_record));
  ASSERT_TRUE(has_record);
  QP_ASSERT_OK(reader.Next(&record, &has_record));
  EXPECT_FALSE(has_record);
  EXPECT_EQ(reader.valid_bytes(), first_size);
  EXPECT_EQ(reader.torn_bytes(), log.size() - first_size);
}

TEST_F(WalTest, SyncPolicyNeverDefersDurability) {
  WalOptions options;
  options.fsync = FsyncPolicy::kNever;
  WalWriter writer(NewFile("wal"), 1, options);
  uint64_t seqno = 0;
  QP_ASSERT_OK(writer.Append("a", &seqno));
  QP_ASSERT_OK(writer.Append("b", &seqno));
  EXPECT_EQ(writer.last_appended_seqno(), 2u);
  EXPECT_EQ(writer.last_synced_seqno(), 0u);
  EXPECT_EQ(writer.stats().fsyncs, 0u);

  QP_ASSERT_OK(writer.Sync());
  EXPECT_EQ(writer.last_synced_seqno(), 2u);
  EXPECT_GE(writer.stats().fsyncs, 1u);
  QP_ASSERT_OK(writer.Close());
}

TEST_F(WalTest, UnsyncedRecordsVanishInACrash) {
  WalOptions options;
  options.fsync = FsyncPolicy::kNever;
  WalWriter writer(NewFile("wal"), 1, options);
  uint64_t seqno = 0;
  QP_ASSERT_OK(writer.Append("kept", &seqno));
  QP_ASSERT_OK(writer.Sync());
  QP_ASSERT_OK(writer.Append("lost", &seqno));

  fs_.CrashKeepingUnsynced();  // OS survived: both records present.
  {
    std::string all = Contents("wal");
    WalReader reader_all(all, 1);
    WalRecord record;
    bool has_record = false;
    QP_ASSERT_OK(reader_all.Next(&record, &has_record));
    ASSERT_TRUE(has_record);
    QP_ASSERT_OK(reader_all.Next(&record, &has_record));
    EXPECT_TRUE(has_record);
  }

  Rng rng(7);
  fs_.Crash(&rng);  // Machine died: only the synced prefix is promised.
  std::string log = Contents("wal");
  WalReader reader(log, 1);
  WalRecord record;
  bool has_record = false;
  QP_ASSERT_OK(reader.Next(&record, &has_record));
  ASSERT_TRUE(has_record);
  EXPECT_EQ(record.payload, "kept");
  // The unsynced record may survive wholly, partially (torn, dropped)
  // or not at all — but never corrupts the log.
  QP_ASSERT_OK(reader.Next(&record, &has_record));
  if (has_record) {
    EXPECT_EQ(record.payload, "lost");
  }
}

TEST_F(WalTest, AppendErrorsAreSticky) {
  WalWriter writer(NewFile("wal"), 1);
  uint64_t seqno = 0;
  QP_ASSERT_OK(writer.Append("ok", &seqno));

  fs_.InjectShortWrite("wal", /*keep_bytes=*/3);
  EXPECT_FALSE(writer.Append("fails", &seqno).ok());
  // The writer cannot know how much of the failed record persisted, so
  // everything after the first failure is refused too.
  EXPECT_FALSE(writer.Append("refused", &seqno).ok());
  EXPECT_FALSE(writer.Sync().ok());

  // The surviving prefix is record 1 plus a torn fragment of record 2 —
  // exactly what recovery truncates.
  std::string log = Contents("wal");
  WalReader reader(log, 1);
  WalRecord record;
  bool has_record = false;
  QP_ASSERT_OK(reader.Next(&record, &has_record));
  ASSERT_TRUE(has_record);
  EXPECT_EQ(record.payload, "ok");
  QP_ASSERT_OK(reader.Next(&record, &has_record));
  EXPECT_FALSE(has_record);
  EXPECT_EQ(reader.torn_bytes(), 3u);
}

TEST_F(WalTest, FsyncFailureIsSticky) {
  WalWriter writer(NewFile("wal"), 1);
  uint64_t seqno = 0;
  QP_ASSERT_OK(writer.Append("before", &seqno));
  fs_.SetSyncFailure(true);
  EXPECT_FALSE(writer.Append("during", &seqno).ok());
  fs_.SetSyncFailure(false);
  EXPECT_FALSE(writer.Append("after", &seqno).ok());
}

TEST_F(WalTest, GroupCommitPreservesEveryRecord) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50;
  WalWriter writer(NewFile("wal"), 1);

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        uint64_t seqno = 0;
        std::string payload =
            "t" + std::to_string(t) + ":" + std::to_string(i);
        if (!writer.Append(payload, &seqno).ok() || seqno == 0) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(writer.last_appended_seqno(),
            static_cast<uint64_t>(kThreads * kPerThread));
  // Every Append under kEveryRecord returns only after its record is
  // durable; with 8 writers racing, one fsync should regularly cover
  // several records. The hard guarantee is <= one fsync per record.
  EXPECT_EQ(writer.last_synced_seqno(), writer.last_appended_seqno());
  EXPECT_LE(writer.stats().fsyncs,
            static_cast<uint64_t>(kThreads * kPerThread));
  QP_ASSERT_OK(writer.Close());

  // The log replays to exactly the set of appended payloads, densely
  // numbered 1..N.
  std::string log = Contents("wal");
  WalReader reader(log, 1);
  std::vector<std::string> seen;
  for (;;) {
    WalRecord record;
    bool has_record = false;
    QP_ASSERT_OK(reader.Next(&record, &has_record));
    if (!has_record) break;
    EXPECT_EQ(record.seqno, seen.size() + 1);
    seen.emplace_back(record.payload);
  }
  ASSERT_EQ(seen.size(), static_cast<size_t>(kThreads * kPerThread));
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(std::unique(seen.begin(), seen.end()), seen.end());
}

TEST_F(WalTest, EmptyLogReadsCleanly) {
  WalReader reader("", 1);
  WalRecord record;
  bool has_record = true;
  QP_ASSERT_OK(reader.Next(&record, &has_record));
  EXPECT_FALSE(has_record);
  EXPECT_EQ(reader.valid_bytes(), 0u);
  EXPECT_EQ(reader.torn_bytes(), 0u);
}

TEST_F(WalTest, PolicyNames) {
  EXPECT_STREQ(FsyncPolicyName(FsyncPolicy::kEveryRecord), "every_record");
  EXPECT_STREQ(FsyncPolicyName(FsyncPolicy::kInterval), "interval");
  EXPECT_STREQ(FsyncPolicyName(FsyncPolicy::kNever), "never");
}

}  // namespace
}  // namespace storage
}  // namespace qp
