// Half-open circuit-breaker recovery: a store tripped read-only by
// persistent fsync failures heals itself once the disk recovers — after
// the backoff, the next mutation runs a recovery probe (snapshot of the
// acknowledged state + a fresh WAL generation) and, on success, the
// breaker closes and the store is writable again with zero lost
// acknowledged mutations.

#include <chrono>
#include <memory>
#include <string>

#include "common/test_util.h"
#include "gtest/gtest.h"
#include "qp/data/movie_db.h"
#include "qp/data/paper_example.h"
#include "qp/obs/metrics.h"
#include "qp/storage/durable_profile_store.h"
#include "qp/storage/fault_injection.h"
#include "qp/storage/record.h"
#include "qp/util/clock.h"
#include "qp/util/status.h"

namespace qp {
namespace storage {
namespace {

class BreakerRecoveryTest : public ::testing::Test {
 protected:
  BreakerRecoveryTest() : schema_(MovieSchema()) {}

  StorageOptions Options() {
    StorageOptions options;
    options.dir = "db";
    options.fs = &fs_;
    options.background_compaction = false;
    options.wal.max_sync_retries = 0;  // Fail fast; retries tested elsewhere.
    options.breaker_threshold = 2;
    options.breaker_backoff = std::chrono::milliseconds(1);
    options.breaker_backoff_max = std::chrono::milliseconds(50);
    options.clock = &clock_;
    options.metrics = &metrics_;
    return options;
  }

  std::unique_ptr<DurableProfileStore> MustOpen(StorageOptions options) {
    auto store_or = DurableProfileStore::Open(&schema_, std::move(options));
    EXPECT_TRUE(store_or.ok()) << store_or.status();
    return store_or.ok() ? std::move(store_or).value() : nullptr;
  }

  /// Fails mutations until the breaker trips (threshold 2).
  void TripBreaker(DurableProfileStore* store) {
    fs_.SetSyncFailure(true);
    for (int i = 0; i < 2; ++i) {
      Status status = store->Put("victim", RobProfile());
      ASSERT_FALSE(status.ok());
    }
    ASSERT_TRUE(store->storage_stats().breaker_open);
  }

  /// The breaker consults the injected clock, so "waiting" out the
  /// backoff is a deterministic advance — no wall-clock sleeps.
  void WaitBackoff() { clock_.Advance(std::chrono::milliseconds(5)); }

  Schema schema_;
  FakeClock clock_;
  FaultInjectingFileSystem fs_;
  obs::MetricsRegistry metrics_;
};

TEST_F(BreakerRecoveryTest, HealedDiskClosesBreakerOnNextMutation) {
  auto store = MustOpen(Options());
  ASSERT_NE(store, nullptr);
  QP_ASSERT_OK(store->Put("julie", JulieProfile()));
  TripBreaker(store.get());

  // Disk heals; after the backoff the next mutation is admitted as a
  // probe, recovers the store, and itself succeeds.
  fs_.SetSyncFailure(false);
  WaitBackoff();
  QP_ASSERT_OK(store->Put("rob", RobProfile()));

  StorageStats stats = store->storage_stats();
  EXPECT_FALSE(stats.breaker_open);
  EXPECT_EQ(stats.breaker_trips, 1u);
  EXPECT_EQ(stats.breaker_probes, 1u);
  EXPECT_EQ(stats.breaker_recoveries, 1u);
  EXPECT_EQ(stats.breaker_epoch, 1u);

  // The observability contract the old one-way breaker broke: the gauge
  // returns to 0 when the breaker closes, and trips is a true counter.
  EXPECT_EQ(metrics_.gauge("qp_storage_breaker_open")->Value(), 0.0);
  EXPECT_EQ(metrics_.counter("qp_storage_breaker_trips_total")->Value(), 1u);
  EXPECT_EQ(
      metrics_.counter("qp_storage_breaker_recoveries_total")->Value(), 1u);

  // Writable again for every mutator.
  QP_ASSERT_OK(store->Upsert(
      "julie", {AtomicPreference::Selection(AttributeRef{"GENRE", "genre"},
                                            Value::Str("western"), 0.25)}));
}

TEST_F(BreakerRecoveryTest, NoAcknowledgedMutationIsLostAcrossRecovery) {
  {
    auto store = MustOpen(Options());
    ASSERT_NE(store, nullptr);
    QP_ASSERT_OK(store->Put("julie", JulieProfile()));
    TripBreaker(store.get());
    fs_.SetSyncFailure(false);
    WaitBackoff();
    QP_ASSERT_OK(store->Put("rob", RobProfile()));
    QP_ASSERT_OK(store->Close());
  }
  // Everything acknowledged — before the trip and after the recovery —
  // survives a crash-reopen; the failed "victim" writes do not resurface.
  auto store = MustOpen(Options());
  ASSERT_NE(store, nullptr);
  EXPECT_EQ(store->size(), 2u);
  QP_ASSERT_OK_AND_ASSIGN(ProfileSnapshot julie, store->Get("julie"));
  EXPECT_TRUE(ProfilesEqual(*julie.profile, JulieProfile()));
  QP_ASSERT_OK_AND_ASSIGN(ProfileSnapshot rob, store->Get("rob"));
  EXPECT_TRUE(ProfilesEqual(*rob.profile, RobProfile()));
  EXPECT_FALSE(store->Get("victim").ok());
}

TEST_F(BreakerRecoveryTest, FailedProbeReopensWithDoubledBackoff) {
  auto store = MustOpen(Options());
  ASSERT_NE(store, nullptr);
  QP_ASSERT_OK(store->Put("julie", JulieProfile()));
  TripBreaker(store.get());
  const uint64_t backoff_after_trip =
      store->storage_stats().breaker_backoff_ms;

  // Disk still dead: the probe itself fails, the breaker re-opens and
  // the backoff doubles — the store does not hammer a dead disk.
  WaitBackoff();
  Status probe = store->Put("rob", RobProfile());
  EXPECT_FALSE(probe.ok());

  StorageStats stats = store->storage_stats();
  EXPECT_TRUE(stats.breaker_open);
  EXPECT_EQ(stats.breaker_trips, 2u);  // Original trip + failed probe.
  EXPECT_EQ(stats.breaker_probes, 1u);
  EXPECT_EQ(stats.breaker_recoveries, 0u);
  EXPECT_GT(stats.breaker_backoff_ms, backoff_after_trip);

  // Second round: heal, wait out the doubled backoff, recover.
  fs_.SetSyncFailure(false);
  clock_.Advance(std::chrono::milliseconds(stats.breaker_backoff_ms + 5));
  QP_ASSERT_OK(store->Put("rob", RobProfile()));
  stats = store->storage_stats();
  EXPECT_FALSE(stats.breaker_open);
  EXPECT_EQ(stats.breaker_recoveries, 1u);
  EXPECT_EQ(metrics_.counter("qp_storage_breaker_trips_total")->Value(), 2u);
  EXPECT_EQ(metrics_.gauge("qp_storage_breaker_open")->Value(), 0.0);
}

TEST_F(BreakerRecoveryTest, BackoffIsCappedAtConfiguredMax) {
  StorageOptions options = Options();
  options.breaker_backoff = std::chrono::milliseconds(4);
  options.breaker_backoff_max = std::chrono::milliseconds(10);
  auto store = MustOpen(std::move(options));
  ASSERT_NE(store, nullptr);
  TripBreaker(store.get());

  // Repeated failed probes double 4 -> 8 -> 10 (capped), never beyond.
  for (int round = 0; round < 4; ++round) {
    clock_.Advance(std::chrono::milliseconds(
        store->storage_stats().breaker_backoff_ms + 5));
    EXPECT_FALSE(store->Put("rob", RobProfile()).ok());
    EXPECT_LE(store->storage_stats().breaker_backoff_ms, 10u);
  }
  EXPECT_EQ(store->storage_stats().breaker_backoff_ms, 10u);
}

TEST_F(BreakerRecoveryTest, ZeroBackoffRestoresOneWayBreaker) {
  StorageOptions options = Options();
  options.breaker_backoff = std::chrono::milliseconds(0);
  auto store = MustOpen(std::move(options));
  ASSERT_NE(store, nullptr);
  TripBreaker(store.get());
  fs_.SetSyncFailure(false);
  clock_.Advance(std::chrono::milliseconds(10));

  // Even with a healthy disk the store stays read-only: backoff 0 means
  // "never probe" (the pre-half-open contract, kept for operators who
  // want a tripped store inspected before it writes again).
  EXPECT_EQ(store->Put("rob", RobProfile()).code(), StatusCode::kUnavailable);
  StorageStats stats = store->storage_stats();
  EXPECT_TRUE(stats.breaker_open);
  EXPECT_EQ(stats.breaker_probes, 0u);
}

TEST_F(BreakerRecoveryTest, RecoveryRotatesToAFreshWalGeneration) {
  auto store = MustOpen(Options());
  ASSERT_NE(store, nullptr);
  QP_ASSERT_OK(store->Put("julie", JulieProfile()));
  const uint64_t seqno_before =
      store->storage_stats().last_appended_seqno;
  TripBreaker(store.get());
  fs_.SetSyncFailure(false);
  WaitBackoff();
  QP_ASSERT_OK(store->Put("rob", RobProfile()));

  // The probe checkpointed: a fresh generation (snapshot + new WAL)
  // replaced the one whose writer had latched the sync error.
  StorageStats stats = store->storage_stats();
  EXPECT_GE(stats.checkpoints, 1u);
  EXPECT_GT(stats.last_appended_seqno, seqno_before);
  EXPECT_EQ(stats.last_appended_seqno, stats.last_synced_seqno);
}

}  // namespace
}  // namespace storage
}  // namespace qp
