#!/usr/bin/env bash
# CI-style sanitizer sweep: configure, build and run the test suite under
# ThreadSanitizer and then AddressSanitizer (+UBSan), each in its own
# build tree so sanitized objects never mix with the regular build.
#
# Usage:
#   tests/run_sanitized.sh            # both sanitizers, full suite
#   tests/run_sanitized.sh thread     # TSan only
#   tests/run_sanitized.sh address -R 'service|thread_pool'
#
# Extra arguments after the sanitizer name are passed through to ctest
# (e.g. -R <regex> to restrict which tests run).

set -euo pipefail

cd "$(dirname "$0")/.."
ROOT="$PWD"

sanitizers=()
case "${1:-all}" in
  thread | address) sanitizers=("$1"); shift ;;
  all) sanitizers=(thread address); [[ $# -gt 0 ]] && shift ;;
  *) sanitizers=(thread address) ;;
esac
CTEST_ARGS=("$@")

JOBS="$(nproc 2>/dev/null || echo 2)"

for sanitizer in "${sanitizers[@]}"; do
  build_dir="$ROOT/build-$sanitizer"
  echo "==== [$sanitizer] configuring $build_dir ===="
  cmake -B "$build_dir" -S "$ROOT" -DQP_SANITIZE="$sanitizer" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
  echo "==== [$sanitizer] building ===="
  cmake --build "$build_dir" -j "$JOBS"
  echo "==== [$sanitizer] running ctest ===="
  if [[ "$sanitizer" == thread ]]; then
    # halt_on_error makes a race fail the test instead of just logging.
    export TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1"
  else
    export ASAN_OPTIONS="detect_leaks=1 strict_string_checks=1"
    export UBSAN_OPTIONS="halt_on_error=1 print_stacktrace=1"
  fi
  (cd "$build_dir" && ctest --output-on-failure -j "$JOBS" "${CTEST_ARGS[@]}")
  echo "==== [$sanitizer] PASS ===="
done

echo "All sanitizer runs passed."
