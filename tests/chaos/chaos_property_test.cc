// Deterministic chaos property suite: seeded random fault schedules
// (FaultHub::ArmRandom over every known site) run against a live durable
// PersonalizationService under concurrent traffic and mutations. Each
// trial asserts the robustness contract end to end:
//
//   - no crash, no hang: every future resolves, every Status is clean;
//   - golden-user answers are never silently wrong: full responses match
//     the fault-free baseline exactly, degraded ones are exact prefixes
//     of its selection;
//   - the accounting identity holds at quiescence:
//       requests == full + degraded + shed + deadline_exceeded + errors;
//   - recovery converges once faults stop: the breaker closes, the
//     scrubber reports the store clean, nothing stays quarantined;
//   - zero lost acknowledged mutations: the final store state equals the
//     shadow of every acknowledged Put/Remove, including across a
//     close-and-reopen of the storage directory.
//
// Trial count comes from $QP_CHAOS_TRIALS (default 25; CI runs >= 200
// across the sanitizer builds). Every trial prints its seed first, so a
// failure — even a hang killed by the ctest timeout — names the exact
// seed to replay.

#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/test_util.h"
#include "gtest/gtest.h"
#include "qp/core/personalizer.h"
#include "qp/data/movie_db.h"
#include "qp/data/workload.h"
#include "qp/pref/profile_generator.h"
#include "qp/service/service.h"
#include "qp/storage/fault_injection.h"
#include "qp/storage/record.h"
#include "qp/util/fault_hub.h"
#include "qp/util/random.h"

namespace qp {
namespace {

int TrialCount() {
  const char* env = std::getenv("QP_CHAOS_TRIALS");
  if (env == nullptr) return 25;
  int trials = std::atoi(env);
  return trials > 0 ? trials : 25;
}

class ChaosPropertyTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    MovieDbConfig config;
    config.num_movies = 120;
    config.num_actors = 60;
    config.num_directors = 20;
    config.num_theatres = 6;
    config.num_days = 3;
    config.seed = 20040308;
    auto db = GenerateMovieDatabase(config);
    ASSERT_TRUE(db.ok()) << db.status();
    db_ = new Database(std::move(db).value());
    auto pools = MovieCandidatePools(*db_);
    ASSERT_TRUE(pools.ok()) << pools.status();
    generator_ = new ProfileGenerator(&db_->schema(), std::move(pools).value());

    WorkloadGenerator workload(db_, 77);
    auto queries = workload.RandomQueries(6);
    ASSERT_TRUE(queries.ok()) << queries.status();
    queries_ = new std::vector<SelectQuery>(std::move(queries).value());

    golden_ = new UserProfile(MakeProfile(4242, 24));
    auto graph = PersonalizationGraph::Build(&db_->schema(), *golden_);
    ASSERT_TRUE(graph.ok()) << graph.status();
    golden_graph_ = new PersonalizationGraph(std::move(graph).value());

    // Fault-free baselines for the golden user, one per query: the
    // selection (for the prefix property) and the executed rows (for
    // exact-match of full answers). Computed before any chaos arms.
    baselines_ = new std::vector<Baseline>();
    Personalizer personalizer(golden_graph_);
    for (const SelectQuery& query : *queries_) {
      Baseline baseline;
      auto outcome = personalizer.Personalize(query, RequestOptions());
      ASSERT_TRUE(outcome.ok()) << outcome.status();
      baseline.selected = outcome.value().selected;
      auto rows =
          personalizer.PersonalizeAndExecute(query, RequestOptions(), *db_);
      ASSERT_TRUE(rows.ok()) << rows.status();
      baseline.personalized_rows = rows.value().rows();
      baselines_->push_back(std::move(baseline));
    }
  }

  static void TearDownTestSuite() {
    delete baselines_;
    delete golden_graph_;
    delete golden_;
    delete queries_;
    delete generator_;
    delete db_;
    baselines_ = nullptr;
    golden_graph_ = nullptr;
    golden_ = nullptr;
    queries_ = nullptr;
    generator_ = nullptr;
    db_ = nullptr;
  }

  struct Baseline {
    std::vector<PreferencePath> selected;
    std::vector<Row> personalized_rows;
  };

  static PersonalizationOptions RequestOptions() {
    PersonalizationOptions options;
    options.criterion = InterestCriterion::TopCount(4);
    return options;
  }

  static UserProfile MakeProfile(uint64_t seed, size_t num_selections) {
    Rng rng(seed);
    ProfileGeneratorOptions options;
    options.num_selections = num_selections;
    auto profile = generator_->Generate(options, &rng);
    EXPECT_TRUE(profile.ok()) << profile.status();
    return profile.ok() ? std::move(profile).value() : UserProfile();
  }

  static PersonalizationRequest GoldenRequest(size_t query_index,
                                              bool execute) {
    PersonalizationRequest request;
    request.user_id = "golden";
    request.query = (*queries_)[query_index % queries_->size()];
    request.options = RequestOptions();
    request.execute = execute;
    return request;
  }

  /// `cut` must agree element-by-element with a prefix of `full`.
  static void AssertSelectionPrefix(const std::vector<PreferencePath>& cut,
                                    const std::vector<PreferencePath>& full) {
    ASSERT_LE(cut.size(), full.size());
    for (size_t i = 0; i < cut.size(); ++i) {
      EXPECT_DOUBLE_EQ(cut[i].doi(), full[i].doi()) << "position " << i;
      EXPECT_TRUE(cut[i].SameShape(full[i])) << "position " << i;
    }
  }

  /// Every clean golden-user response must be right: a full answer
  /// matches the fault-free baseline bit for bit; a degraded one (the
  /// quarantine bypass serves the raw query) carries the raw query as SQ
  /// and an empty selection — which is trivially a prefix. Either way
  /// the selection-prefix property holds.
  static void CheckGoldenResponse(const PersonalizationRequest& request,
                                  const PersonalizationResponse& response,
                                  size_t query_index) {
    if (!response.status.ok()) return;  // Injected errors are clean fails.
    const Baseline& baseline = (*baselines_)[query_index % baselines_->size()];
    AssertSelectionPrefix(response.outcome.selected, baseline.selected);
    if (response.disposition == RequestDisposition::kFull) {
      ASSERT_EQ(response.outcome.selected.size(), baseline.selected.size());
      if (request.execute) {
        EXPECT_TRUE(testing_util::SameRows(response.results.rows(),
                                           baseline.personalized_rows))
            << "full answer diverged from the fault-free baseline";
      }
    }
  }

  static Database* db_;
  static ProfileGenerator* generator_;
  static std::vector<SelectQuery>* queries_;
  static UserProfile* golden_;
  static PersonalizationGraph* golden_graph_;
  static std::vector<Baseline>* baselines_;
};

Database* ChaosPropertyTest::db_ = nullptr;
ProfileGenerator* ChaosPropertyTest::generator_ = nullptr;
std::vector<SelectQuery>* ChaosPropertyTest::queries_ = nullptr;
UserProfile* ChaosPropertyTest::golden_ = nullptr;
PersonalizationGraph* ChaosPropertyTest::golden_graph_ = nullptr;
std::vector<ChaosPropertyTest::Baseline>* ChaosPropertyTest::baselines_ =
    nullptr;

TEST_F(ChaosPropertyTest, SeededTrialsSurviveRandomFaultSchedules) {
  const int trials = TrialCount();
  const uint64_t base_seed = 0x9e04;
  for (int trial = 0; trial < trials; ++trial) {
    const uint64_t seed = base_seed + trial;
    // Printed eagerly so even a hang killed by the ctest timeout names
    // the seed to replay.
    std::fprintf(stderr, "[chaos] trial %d seed=%llu\n", trial,
                 static_cast<unsigned long long>(seed));
    SCOPED_TRACE("chaos seed=" + std::to_string(seed));

    storage::FaultInjectingFileSystem fs;
    ServiceOptions options;
    options.num_workers = 2;
    options.cache_capacity = 64;
    options.storage.dir = "db";
    options.storage.fs = &fs;
    options.storage.background_compaction = false;
    options.storage.wal.max_sync_retries = 1;
    options.storage.wal.retry_backoff = std::chrono::milliseconds(0);
    options.storage.breaker_threshold = 2;
    options.storage.breaker_backoff = std::chrono::milliseconds(1);
    options.storage.breaker_backoff_max = std::chrono::milliseconds(20);
    options.storage.scrub_interval = std::chrono::milliseconds(2);
    auto service_or = PersonalizationService::OpenDurable(db_, options);
    ASSERT_TRUE(service_or.ok()) << service_or.status();
    auto service = std::move(service_or).value();

    // Seed the store before arming: the golden user (never mutated — the
    // correctness oracle) plus a working set the mutator thread churns.
    std::map<std::string, UserProfile> shadow;  // Acknowledged truth.
    QP_ASSERT_OK(service->profiles().Put("golden", *golden_));
    for (int u = 0; u < 4; ++u) {
      std::string user = "u" + std::to_string(u);
      UserProfile profile = MakeProfile(seed * 31 + u, 8);
      QP_ASSERT_OK(service->profiles().Put(user, profile));
      shadow[user] = std::move(profile);
    }

    FaultHub::Global()->ArmRandom(seed, FaultHub::KnownSites());

    // Chaos rounds: concurrent PersonalizeBatch + profile mutations
    // while every subsystem's fault sites fire per the seeded schedule.
    Rng mutation_rng(seed ^ 0xabcdef);
    std::mutex shadow_mutex;
    for (int round = 0; round < 3; ++round) {
      std::vector<PersonalizationRequest> requests;
      for (int i = 0; i < 6; ++i) {
        if (i % 3 == 0) {
          requests.push_back(GoldenRequest(round * 6 + i, /*execute=*/true));
        } else {
          PersonalizationRequest request;
          request.user_id =
              i % 3 == 1 ? "u" + std::to_string(i % 4) : "nobody";
          request.query = (*queries_)[(round * 6 + i) % queries_->size()];
          request.options = RequestOptions();
          request.execute = false;
          requests.push_back(std::move(request));
        }
      }
      std::thread mutator([&] {
        for (int m = 0; m < 4; ++m) {
          std::string user = "u" + std::to_string(mutation_rng.Below(4));
          if (mutation_rng.Below(5) == 0) {
            if (service->profiles().Remove(user).ok()) {
              std::lock_guard<std::mutex> lock(shadow_mutex);
              shadow.erase(user);
            }
          } else {
            UserProfile profile =
                MakeProfile(seed * 977 + round * 17 + m, 6);
            if (service->profiles().Put(user, profile).ok()) {
              std::lock_guard<std::mutex> lock(shadow_mutex);
              shadow[user] = std::move(profile);
            }
          }
        }
      });
      std::vector<PersonalizationResponse> responses =
          service->PersonalizeBatchAndWait(requests);
      mutator.join();
      ASSERT_EQ(responses.size(), requests.size());
      for (size_t i = 0; i < responses.size(); ++i) {
        if (requests[i].user_id == "golden") {
          CheckGoldenResponse(requests[i], responses[i], round * 6 + i);
        } else if (requests[i].user_id == "nobody") {
          EXPECT_FALSE(responses[i].status.ok());
        }
      }
      if (::testing::Test::HasFailure()) break;
    }

    // Heal: stop injecting and drive mutations until the breaker's
    // half-open probe closes it again (bounded, so a lost recovery shows
    // up as a failure rather than a hang).
    FaultHub::Global()->Reset();
    bool recovered = false;
    UserProfile heal_profile = MakeProfile(seed * 131 + 7, 4);
    for (int attempt = 0; attempt < 2000; ++attempt) {
      if (service->profiles().Put("u0", heal_profile).ok()) {
        std::lock_guard<std::mutex> lock(shadow_mutex);
        shadow["u0"] = heal_profile;
        recovered = true;
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    ASSERT_TRUE(recovered) << "store never became writable after faults "
                              "stopped (breaker failed to close)";
    EXPECT_FALSE(service->stats().storage.breaker_open);

    // Scrub converges to clean: no corruption findings, no quarantine.
    storage::ScrubReport report;
    QP_ASSERT_OK(service->profiles().ScrubOnce(&report));
    QP_ASSERT_OK(service->profiles().ScrubOnce(&report));
    EXPECT_EQ(report.disk_corruptions, 0u);
    EXPECT_EQ(report.invariant_violations, 0u);
    EXPECT_EQ(service->stats().storage.quarantined_profiles, 0u);

    // Accounting identity at quiescence.
    ServiceStats stats = service->stats();
    EXPECT_EQ(stats.requests, stats.full + stats.degraded + stats.shed +
                                  stats.deadline_exceeded + stats.errors)
        << "requests=" << stats.requests << " full=" << stats.full
        << " degraded=" << stats.degraded << " shed=" << stats.shed
        << " deadline=" << stats.deadline_exceeded
        << " errors=" << stats.errors;

    // Zero lost acknowledged mutations: the live store matches the
    // shadow exactly...
    EXPECT_EQ(service->profiles().size(), shadow.size() + 1);
    for (const auto& [user, profile] : shadow) {
      auto snapshot = service->profiles().Get(user);
      ASSERT_TRUE(snapshot.ok()) << "acknowledged user " << user << " lost";
      EXPECT_TRUE(storage::ProfilesEqual(*snapshot.value().profile, profile))
          << "acknowledged state of " << user << " diverged";
    }

    // ...and so does a close-and-reopen of the directory. The checkpoint
    // first rotates out any WAL residue of *unacknowledged* appends
    // (failed mutations must not resurrect on replay).
    QP_ASSERT_OK(service->profiles().Checkpoint());
    service.reset();
    auto reopened_or =
        storage::DurableProfileStore::Open(&db_->schema(), options.storage);
    ASSERT_TRUE(reopened_or.ok()) << reopened_or.status();
    auto reopened = std::move(reopened_or).value();
    EXPECT_EQ(reopened->size(), shadow.size() + 1);
    for (const auto& [user, profile] : shadow) {
      auto snapshot = reopened->Get(user);
      ASSERT_TRUE(snapshot.ok()) << "user " << user << " lost on reopen";
      EXPECT_TRUE(storage::ProfilesEqual(*snapshot.value().profile, profile));
    }
    auto golden_snapshot = reopened->Get("golden");
    ASSERT_TRUE(golden_snapshot.ok());
    EXPECT_TRUE(
        storage::ProfilesEqual(*golden_snapshot.value().profile, *golden_));

    if (::testing::Test::HasFailure()) {
      std::fprintf(stderr, "[chaos] FAILED at seed=%llu\n",
                   static_cast<unsigned long long>(seed));
      testing_util::DumpFlightRecorderSnapshot("chaos");
      return;
    }
  }
}

/// Reproducibility: the same seed must produce the same fault schedule,
/// the same per-request dispositions and the same final store state.
/// Driven sequentially (batches of one, one worker, no background
/// threads) because concurrent scheduling legitimately reorders which
/// *request* meets which fault — determinism is per (seed, call index),
/// not per wall-clock interleaving.
TEST_F(ChaosPropertyTest, SameSeedSameDispositionsSameFinalState) {
#ifdef QP_FAULTS_DISABLED
  GTEST_SKIP() << "fault injection compiled out: every schedule is empty, "
                  "so the different-seeds-differ sanity check cannot hold";
#endif
  struct RunRecord {
    std::vector<std::pair<int, int>> dispositions;  // (status code, dispo).
    std::vector<std::pair<std::string, uint64_t>> fires;  // site -> count.
    std::map<std::string, std::string> final_state;
  };
  auto run = [&](uint64_t seed) {
    RunRecord record;
    storage::FaultInjectingFileSystem fs;
    ServiceOptions options;
    options.num_workers = 1;
    options.cache_capacity = 16;
    options.storage.dir = "db";
    options.storage.fs = &fs;
    options.storage.background_compaction = false;
    options.storage.wal.max_sync_retries = 1;
    options.storage.wal.retry_backoff = std::chrono::milliseconds(0);
    options.storage.breaker_threshold = 2;
    // One-way breaker + no scrub thread: no timing-dependent transitions.
    options.storage.breaker_backoff = std::chrono::milliseconds(0);
    options.storage.scrub_interval = std::chrono::milliseconds(0);
    auto service_or = PersonalizationService::OpenDurable(db_, options);
    EXPECT_TRUE(service_or.ok()) << service_or.status();
    if (!service_or.ok()) return record;
    auto service = std::move(service_or).value();
    EXPECT_TRUE(service->profiles().Put("golden", *golden_).ok());
    EXPECT_TRUE(
        service->profiles().Put("u0", MakeProfile(seed * 31, 8)).ok());

    FaultHub::Global()->ArmRandom(seed, FaultHub::KnownSites());
    for (int i = 0; i < 24; ++i) {
      PersonalizationRequest request =
          GoldenRequest(i, /*execute=*/i % 2 == 0);
      PersonalizationResponse response = service->PersonalizeOne(request);
      record.dispositions.emplace_back(
          static_cast<int>(response.status.code()),
          static_cast<int>(response.disposition));
      if (i % 4 == 3) {
        // Interleave a deterministic mutation between requests; whether
        // it is acknowledged is itself part of the recorded schedule.
        (void)service->profiles().Put("u0", MakeProfile(seed * 77 + i, 6));
      }
    }
    for (const std::string& site : FaultHub::KnownSites()) {
      record.fires.emplace_back(site, FaultHub::Global()->fires(site));
    }
    FaultHub::Global()->Reset();
    for (const auto& [user, snapshot] : service->profiles().All()) {
      record.final_state[user] = snapshot.profile->Serialize();
    }
    return record;
  };

  RunRecord first = run(0xfeed);
  RunRecord second = run(0xfeed);
  EXPECT_EQ(first.dispositions, second.dispositions);
  EXPECT_EQ(first.fires, second.fires);
  EXPECT_EQ(first.final_state, second.final_state);

  RunRecord other = run(0xbeef);
  EXPECT_NE(first.fires, other.fires)
      << "different seeds produced identical fault schedules";
}

}  // namespace
}  // namespace qp
