// Flight-recorder forensics under chaos: after a trial with an armed
// migrate.* fault schedule, the in-memory blackbox must hold the whole
// story — the fired fault (site + call index), the breaker transition
// the disk outage caused, the migration phase transitions, and the
// summary of an affected request's trace — so a failed chaos trial can
// be diagnosed from the recorder dump alone.

#include <memory>
#include <string>
#include <vector>

#include "common/test_util.h"
#include "gtest/gtest.h"
#include "qp/data/movie_db.h"
#include "qp/data/workload.h"
#include "qp/obs/flight_recorder.h"
#include "qp/obs/trace.h"
#include "qp/pref/profile_generator.h"
#include "qp/shard/sharded_service.h"
#include "qp/storage/fault_injection.h"
#include "qp/util/fault_hub.h"

namespace qp {
namespace shard {
namespace {

class ChaosBlackboxTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!obs::kTracingCompiledIn) {
      GTEST_SKIP() << "observability compiled out";
    }
    MovieDbConfig config;
    config.num_movies = 200;
    config.num_actors = 100;
    config.num_directors = 30;
    config.num_theatres = 6;
    config.num_days = 3;
    config.seed = 20040308;
    QP_ASSERT_OK_AND_ASSIGN(Database db, GenerateMovieDatabase(config));
    db_ = std::make_unique<Database>(std::move(db));
    QP_ASSERT_OK_AND_ASSIGN(auto pools, MovieCandidatePools(*db_));
    generator_ = std::make_unique<ProfileGenerator>(&db_->schema(),
                                                    std::move(pools));
    obs::FlightRecorder::Global()->Clear();
  }

  void TearDown() override {
    FaultHub::Global()->Reset();
    obs::FlightRecorder::Global()->Clear();
  }

  ShardedOptions Options(size_t num_shards) {
    ShardedOptions options;
    options.num_shards = num_shards;
    options.dir = "cluster";
    options.service.num_workers = 2;
    options.service.storage.fs = &fs_;
    options.service.storage.background_compaction = false;
    // Fail-fast breaker so a dead disk trips it in two mutations.
    options.service.storage.wal.max_sync_retries = 0;
    options.service.storage.breaker_threshold = 2;
    options.migration.max_attempts = 3;
    return options;
  }

  std::unique_ptr<ShardedPersonalizationService> MustOpen(
      ShardedOptions options) {
    auto sharded_or =
        ShardedPersonalizationService::Open(db_.get(), std::move(options));
    EXPECT_TRUE(sharded_or.ok()) << sharded_or.status();
    return sharded_or.ok() ? std::move(sharded_or).value() : nullptr;
  }

  UserProfile MakeProfile(uint64_t seed) {
    Rng rng(seed);
    ProfileGeneratorOptions options;
    options.num_selections = 20;
    auto profile = generator_->Generate(options, &rng);
    EXPECT_TRUE(profile.ok()) << profile.status();
    return std::move(profile).value();
  }

  PersonalizationRequest Request(const std::string& user_id,
                                 const SelectQuery& query) {
    PersonalizationRequest request;
    request.user_id = user_id;
    request.query = query;
    request.options.criterion = InterestCriterion::TopCount(4);
    return request;
  }

  SelectQuery AnyQuery() {
    WorkloadGenerator workload(db_.get(), 9);
    auto queries = workload.RandomQueries(1);
    EXPECT_TRUE(queries.ok()) << queries.status();
    return std::move(queries).value()[0];
  }

  std::unique_ptr<Database> db_;
  std::unique_ptr<ProfileGenerator> generator_;
  storage::FaultInjectingFileSystem fs_;
};

bool HasEvent(const std::vector<obs::FlightEvent>& events,
              obs::FlightEventType type,
              std::string_view what_prefix = "") {
  for (const obs::FlightEvent& event : events) {
    if (event.type != type) continue;
    if (event.what_view().substr(0, what_prefix.size()) == what_prefix) {
      return true;
    }
  }
  return false;
}

TEST_F(ChaosBlackboxTest, MigrateChaosLeavesFullEvidenceInTheRecorder) {
#ifdef QP_FAULTS_DISABLED
  GTEST_SKIP() << "fault injection compiled out";
#endif
  auto sharded = MustOpen(Options(2));
  ASSERT_NE(sharded, nullptr);
  obs::FragmentTraceSink sink(128);
  sharded->set_trace_sink(&sink);
  for (int i = 0; i < 4; ++i) {
    QP_ASSERT_OK(sharded->PutProfile("user" + std::to_string(i),
                                     MakeProfile(i + 1)));
  }
  obs::FlightRecorder::Global()->Clear();

  // Armed migrate.* schedule: the first three copy calls fail — enough
  // to exhaust one copy step's retry budget (max_attempts = 3), so the
  // first partition aborts and Reshard reports it. The re-run converges
  // with the fault budget spent.
  FaultRule rule;
  rule.fire_every = 1;
  rule.max_fires = 3;
  FaultHub::Global()->SetRule("migrate.copy", rule);
  FaultHub::Global()->Arm(0xB1ACB0);
  EXPECT_FALSE(sharded->Reshard(3).ok());
  ASSERT_GE(FaultHub::Global()->fires("migrate.copy"), 3u);
  QP_ASSERT_OK(sharded->Reshard(3));

  // A request served while the schedule is armed: its trace summary is
  // the "affected request" evidence.
  PersonalizationResponse response =
      sharded->Personalize(Request("user0", AnyQuery()));
  QP_ASSERT_OK(response.status);
  std::vector<uint64_t> trace_ids = sink.TraceIds();
  ASSERT_FALSE(trace_ids.empty());
  const uint64_t affected = trace_ids.back();

  // Disk dies: two failed mutations to one shard trip its breaker.
  fs_.SetSyncFailure(true);
  EXPECT_FALSE(sharded->PutProfile("user0", MakeProfile(9)).ok());
  EXPECT_FALSE(sharded->PutProfile("user0", MakeProfile(9)).ok());
  fs_.SetSyncFailure(false);

  std::vector<obs::FlightEvent> events =
      obs::FlightRecorder::Global()->Dump();
  std::string json = obs::FlightRecorder::ToJson(events);

  // The fired migrate fault, with its site name and call index.
  EXPECT_TRUE(HasEvent(events, obs::FlightEventType::kFaultFired,
                       "migrate."))
      << json;
  // The migration's phase transitions (including the abort + retry).
  EXPECT_TRUE(HasEvent(events, obs::FlightEventType::kMigrationPhase,
                       "copying"))
      << json;
  EXPECT_TRUE(HasEvent(events, obs::FlightEventType::kMigrationPhase,
                       "aborted"))
      << json;
  EXPECT_TRUE(HasEvent(events, obs::FlightEventType::kMigrationPhase,
                       "migrated"))
      << json;
  // The breaker transition the dead disk caused.
  EXPECT_TRUE(
      HasEvent(events, obs::FlightEventType::kBreakerTransition))
      << json;
  // The affected request's trace summary, linked by trace id.
  bool summary_found = false;
  for (const obs::FlightEvent& event : events) {
    if (event.type == obs::FlightEventType::kTraceSummary &&
        event.trace_id == affected) {
      summary_found = true;
    }
  }
  EXPECT_TRUE(summary_found) << json;
}

TEST_F(ChaosBlackboxTest, RecorderDumpIsParseableJson) {
#ifdef QP_FAULTS_DISABLED
  GTEST_SKIP() << "fault injection compiled out";
#endif
  auto sharded = MustOpen(Options(2));
  ASSERT_NE(sharded, nullptr);
  QP_ASSERT_OK(sharded->PutProfile("user0", MakeProfile(1)));
  QP_ASSERT_OK(sharded->Reshard(3));
  std::string json = obs::FlightRecorder::ToJson(
      obs::FlightRecorder::Global()->Dump());
  // Structural sanity of the artifact chaos suites attach on failure.
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.back(), ']');
  EXPECT_NE(json.find("\"migration_phase\""), std::string::npos);
}

}  // namespace
}  // namespace shard
}  // namespace qp
