#!/usr/bin/env python3
"""Gate a bench_report.json (JSONL) against the committed baseline.

Usage:
    tests/check_bench_regression.py BENCH_baseline.json build/bench_report.json

Two kinds of checks, mirroring what a reviewer reads the sidecar for:

  1. Ratio guards: higher-is-better metrics (vectorized-executor speedups,
     service throughput, shard-cluster closed-loop throughput) must not
     fall more than MAX_REGRESSION below the committed baseline. Timings
     jitter; ratios and throughputs on the same machine class stay stable
     well inside 25%.
  2. Ceiling guards: lower-is-better metrics (breaker recovery latency,
     the scrubber's throughput tax, request p99 inside the live-reshard
     migration window) must not exceed baseline * headroom. Absolute
     latencies jitter more than ratios, so the headroom is generous (2x)
     — the gate catches order-of-magnitude cliffs, not noise.
  3. Invariants: booleans the current run must satisfy outright, whatever
     the baseline says — the shard chaos phase and the live reshard lost
     no acknowledged mutation, and the tiered resident set stayed inside
     the hot budget.
  4. Absolute ceilings: design budgets the current run must stay under
     regardless of the baseline (the sampled-tracing tax at a 1% head
     rate must stay below 3%).

A metric present in the baseline but missing from the current report is
an error (a silently dropped bench is how regressions hide); a metric new
in the current report is noted and ignored (it becomes binding when the
baseline is regenerated).
"""

import json
import sys

MAX_REGRESSION = 0.25

# (bench, scalar) pairs where current >= baseline * (1 - MAX_REGRESSION)
# must hold. All are higher-is-better.
GUARDED = [
    ("ablation_exec", "vec_speedup"),
    ("fig8_sq_mq_vs_k", "vec_speedup_sq"),
    ("fig8_sq_mq_vs_k", "vec_speedup_mq"),
    ("fig9_sq_mq_vs_l", "vec_speedup_sq"),
    ("fig9_sq_mq_vs_l", "vec_speedup_mq"),
    ("service_throughput", "qps/w2_nocache"),
    ("service_throughput", "qps/w2_cache"),
    ("shard_scale", "closed_loop_qps"),
]

# (bench, scalar, headroom) where current <= baseline * headroom must
# hold. All are lower-is-better latencies/taxes.
GUARDED_MAX = [
    ("fault_recovery", "breaker_recover_ms", 2.0),
    ("fault_recovery", "scrub_tax_pct", 2.0),
    ("shard_scale", "reshard_window_p99_ms", 2.0),
]

# (bench, scalar, required value) the *current* report must satisfy.
INVARIANTS = [
    ("shard_scale", "zero_acked_loss", 1),
    ("shard_scale", "residency_bounded", 1),
    ("shard_scale", "reshard_zero_acked_loss", 1),
    # The SLO gauges must ride in the report, and this bench never sheds
    # or errors (unbounded queue, no deadlines), so availability is
    # exactly 1 — anything else means requests are being dropped.
    ("service_throughput", "slo_availability", 1),
    ("service_throughput", "slo_availability_burn_rate", 0),
]

# (bench, scalar, ceiling) absolute bounds on the *current* report,
# independent of the baseline. Unlike GUARDED_MAX these do not scale
# with history: the sampled-tracing tax at a 1% head rate is a design
# budget (< 3% or always-on tracing is not shippable), not a trajectory.
ABSOLUTE_MAX = [
    ("service_throughput", "sampled_trace_tax_pct", 3.0),
]


def load(path):
    reports = {}
    try:
        with open(path) as f:
            for line in f:
                line = line.strip()
                if not line:
                    continue
                obj = json.loads(line)
                # Merge per-key, later lines winning on collisions: a
                # binary run several times with different filters (e.g.
                # service_throughput's overhead bench needs a longer
                # measurement window than its throughput benches)
                # contributes all its scalars to one report.
                merged = reports.setdefault(
                    obj["bench"], {"bench": obj["bench"]})
                for section in ("scalars", "histograms"):
                    merged.setdefault(section, {}).update(
                        obj.get(section, {}))
    except (OSError, json.JSONDecodeError, KeyError) as e:
        sys.exit(f"error: cannot load {path}: {e}")
    return reports


def main():
    if len(sys.argv) != 3:
        sys.exit(__doc__)
    baseline = load(sys.argv[1])
    current = load(sys.argv[2])
    failures = []

    for bench, key, want in INVARIANTS:
        got = current.get(bench, {}).get("scalars", {}).get(key)
        if got is None:
            failures.append(f"{bench}.{key}: missing from current report")
        elif got != want:
            failures.append(f"{bench}.{key}: {got} (must be {want})")
        else:
            print(f"ok   {bench}.{key} = {got}")

    for bench, key in GUARDED:
        base = baseline.get(bench, {}).get("scalars", {}).get(key)
        cur = current.get(bench, {}).get("scalars", {}).get(key)
        if base is None:
            print(f"note {bench}.{key}: not in baseline, skipped")
            continue
        if cur is None:
            failures.append(f"{bench}.{key}: in baseline but missing "
                            f"from current report")
            continue
        floor = base * (1.0 - MAX_REGRESSION)
        verdict = "ok  " if cur >= floor else "FAIL"
        print(f"{verdict} {bench}.{key}: {cur:.4g} vs baseline "
              f"{base:.4g} (floor {floor:.4g})")
        if cur < floor:
            failures.append(f"{bench}.{key}: {cur:.4g} is more than "
                            f"{MAX_REGRESSION:.0%} below baseline "
                            f"{base:.4g}")

    for bench, key, ceiling in ABSOLUTE_MAX:
        cur = current.get(bench, {}).get("scalars", {}).get(key)
        if cur is None:
            failures.append(f"{bench}.{key}: missing from current report")
            continue
        verdict = "ok  " if cur <= ceiling else "FAIL"
        print(f"{verdict} {bench}.{key}: {cur:.4g} "
              f"(absolute ceiling {ceiling:g})")
        if cur > ceiling:
            failures.append(f"{bench}.{key}: {cur:.4g} exceeds the "
                            f"absolute ceiling {ceiling:g}")

    for bench, key, headroom in GUARDED_MAX:
        base = baseline.get(bench, {}).get("scalars", {}).get(key)
        cur = current.get(bench, {}).get("scalars", {}).get(key)
        if base is None:
            print(f"note {bench}.{key}: not in baseline, skipped")
            continue
        if cur is None:
            failures.append(f"{bench}.{key}: in baseline but missing "
                            f"from current report")
            continue
        ceiling = base * headroom
        verdict = "ok  " if cur <= ceiling else "FAIL"
        print(f"{verdict} {bench}.{key}: {cur:.4g} vs baseline "
              f"{base:.4g} (ceiling {ceiling:.4g})")
        if cur > ceiling:
            failures.append(f"{bench}.{key}: {cur:.4g} is more than "
                            f"{headroom:g}x the baseline {base:.4g}")

    if failures:
        print("\nbench regression gate FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        sys.exit(1)
    print("\nbench regression gate passed "
          f"({len(GUARDED) + len(GUARDED_MAX) + len(ABSOLUTE_MAX)} guards, "
          f"{len(INVARIANTS)} invariants)")


if __name__ == "__main__":
    main()
