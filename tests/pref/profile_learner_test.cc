#include "qp/pref/profile_learner.h"

#include "common/test_util.h"
#include "gtest/gtest.h"
#include "qp/core/personalizer.h"
#include "qp/data/movie_db.h"
#include "qp/data/paper_example.h"
#include "qp/data/workload.h"
#include "qp/query/sql_parser.h"

namespace qp {
namespace {

class ProfileLearnerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    schema_ = MovieSchema();
    learner_ = std::make_unique<ProfileLearner>(&schema_);
  }

  void ObserveSql(const std::string& sql, size_t times = 1) {
    auto query = ParseSelectQuery(sql);
    ASSERT_TRUE(query.ok()) << query.status();
    for (size_t i = 0; i < times; ++i) {
      QP_ASSERT_OK(learner_->Observe(*query));
    }
  }

  Schema schema_;
  std::unique_ptr<ProfileLearner> learner_;
};

TEST_F(ProfileLearnerTest, EmptyLearnerBuildsEmptyProfile) {
  auto profile = learner_->BuildProfile();
  ASSERT_TRUE(profile.ok());
  EXPECT_TRUE(profile->empty());
  EXPECT_EQ(learner_->num_observed(), 0u);
}

TEST_F(ProfileLearnerTest, ObserveRejectsInvalidQueries) {
  auto query = ParseSelectQuery("select MV.title from MOVIE MV where "
                                "MV.nope=1");
  ASSERT_TRUE(query.ok());
  EXPECT_FALSE(learner_->Observe(*query).ok());
  EXPECT_EQ(learner_->num_observed(), 0u);
}

TEST_F(ProfileLearnerTest, LearnsSelectionConditions) {
  ObserveSql("select MV.title from MOVIE MV, GENRE GN where "
             "MV.mid=GN.mid and GN.genre='comedy'",
             3);
  ObserveSql("select MV.title from MOVIE MV, GENRE GN where "
             "MV.mid=GN.mid and GN.genre='drama'",
             1);
  auto profile = learner_->BuildProfile();
  ASSERT_TRUE(profile.ok()) << profile.status();

  const AtomicPreference* comedy =
      profile->FindSelection({"GENRE", "genre"}, Value::Str("comedy"));
  const AtomicPreference* drama =
      profile->FindSelection({"GENRE", "genre"}, Value::Str("drama"));
  ASSERT_NE(comedy, nullptr);
  ASSERT_NE(drama, nullptr);
  // More frequent -> higher degree; the most frequent hits max_doi.
  EXPECT_GT(comedy->doi(), drama->doi());
  EXPECT_DOUBLE_EQ(comedy->doi(), 0.9);
  EXPECT_DOUBLE_EQ(drama->doi(), 0.1);
}

TEST_F(ProfileLearnerTest, LearnsJoinsInBothDirections) {
  ObserveSql("select MV.title from MOVIE MV, GENRE GN where "
             "MV.mid=GN.mid and GN.genre='comedy'");
  auto profile = learner_->BuildProfile();
  ASSERT_TRUE(profile.ok());
  EXPECT_NE(profile->FindJoin({"MOVIE", "mid"}, {"GENRE", "mid"}), nullptr);
  EXPECT_NE(profile->FindJoin({"GENRE", "mid"}, {"MOVIE", "mid"}), nullptr);
}

TEST_F(ProfileLearnerTest, IgnoresUndeclaredJoins) {
  // MOVIE.mid = ACTOR.aid is a type-valid equality but not a declared
  // schema join; it must not become a join preference.
  SelectQuery query;
  QP_ASSERT_OK(query.AddVariable("MV", "MOVIE"));
  QP_ASSERT_OK(query.AddVariable("AC", "ACTOR"));
  query.AddProjection("MV", "title");
  query.set_where(ConditionNode::MakeAtom(
      AtomicCondition::Join("MV", "mid", "AC", "aid")));
  QP_ASSERT_OK(learner_->Observe(query));
  auto profile = learner_->BuildProfile();
  ASSERT_TRUE(profile.ok());
  EXPECT_EQ(profile->NumJoins(), 0u);
}

TEST_F(ProfileLearnerTest, MinOccurrencesFilters) {
  ObserveSql("select MV.title from MOVIE MV where MV.year=1999", 3);
  ObserveSql("select MV.title from MOVIE MV where MV.year=2001", 1);
  ProfileLearnerOptions options;
  options.min_occurrences = 2;
  auto profile = learner_->BuildProfile(options);
  ASSERT_TRUE(profile.ok());
  EXPECT_EQ(profile->NumSelections(), 1u);
  EXPECT_NE(profile->FindSelection({"MOVIE", "year"}, Value::Int(1999)),
            nullptr);
}

TEST_F(ProfileLearnerTest, MaxSelectionsKeepsMostFrequent) {
  ObserveSql("select MV.title from MOVIE MV where MV.year=1999", 5);
  ObserveSql("select MV.title from MOVIE MV where MV.year=2000", 4);
  ObserveSql("select MV.title from MOVIE MV where MV.year=2001", 1);
  ProfileLearnerOptions options;
  options.max_selections = 2;
  auto profile = learner_->BuildProfile(options);
  ASSERT_TRUE(profile.ok());
  EXPECT_EQ(profile->NumSelections(), 2u);
  EXPECT_EQ(profile->FindSelection({"MOVIE", "year"}, Value::Int(2001)),
            nullptr);
}

TEST_F(ProfileLearnerTest, OccurrenceScalingIsMonotone) {
  ObserveSql("select MV.title from MOVIE MV where MV.year=1990", 1);
  ObserveSql("select MV.title from MOVIE MV where MV.year=1991", 2);
  ObserveSql("select MV.title from MOVIE MV where MV.year=1992", 3);
  ObserveSql("select MV.title from MOVIE MV where MV.year=1993", 4);
  auto profile = learner_->BuildProfile();
  ASSERT_TRUE(profile.ok());
  double previous = 0;
  for (int year = 1990; year <= 1993; ++year) {
    const AtomicPreference* pref =
        profile->FindSelection({"MOVIE", "year"}, Value::Int(year));
    ASSERT_NE(pref, nullptr);
    EXPECT_GT(pref->doi(), previous);
    previous = pref->doi();
  }
}

TEST_F(ProfileLearnerTest, LearnedProfileDrivesPersonalization) {
  // A user who keeps asking for comedies: the learned profile should make
  // the personalized "tonight" answer prefer comedies.
  ObserveSql("select MV.title from MOVIE MV, GENRE GN where "
             "MV.mid=GN.mid and GN.genre='comedy'",
             5);
  // Include the PLAY join so the tonight query's anchors reach GENRE.
  ObserveSql("select MV.title from MOVIE MV, PLAY PL, GENRE GN where "
             "MV.mid=PL.mid and MV.mid=GN.mid and GN.genre='thriller'",
             1);
  auto profile = learner_->BuildProfile();
  ASSERT_TRUE(profile.ok());

  auto db = BuildPaperDatabase();
  ASSERT_TRUE(db.ok());
  auto graph = PersonalizationGraph::Build(&schema_, *profile);
  ASSERT_TRUE(graph.ok()) << graph.status();
  Personalizer personalizer(&*graph);
  PersonalizationOptions options;
  options.criterion = InterestCriterion::TopCount(1);
  options.integration.min_satisfied = 1;
  PersonalizationOutcome outcome;
  auto result = personalizer.PersonalizeAndExecute(TonightQuery(), options,
                                                   *db, &outcome);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(outcome.selected.size(), 1u);
  EXPECT_NE(outcome.selected[0].ConditionString().find("comedy"),
            std::string::npos);
  // The paper DB has 3 comedies playing tonight.
  EXPECT_EQ(result->num_rows(), 3u);
}

TEST_F(ProfileLearnerTest, LearnsFromGeneratedWorkload) {
  MovieDbConfig config;
  config.num_movies = 60;
  auto db = GenerateMovieDatabase(config);
  ASSERT_TRUE(db.ok());
  WorkloadGenerator workload(&*db, 123);
  for (int i = 0; i < 50; ++i) {
    auto query = workload.RandomQuery();
    ASSERT_TRUE(query.ok());
    QP_ASSERT_OK(learner_->Observe(*query));
  }
  EXPECT_EQ(learner_->num_observed(), 50u);
  auto profile = learner_->BuildProfile();
  ASSERT_TRUE(profile.ok()) << profile.status();
  EXPECT_GT(profile->NumSelections(), 0u);
  EXPECT_GT(profile->NumJoins(), 0u);
  // The learned profile must produce a working personalization graph.
  EXPECT_TRUE(PersonalizationGraph::Build(&schema_, *profile).ok());
}

}  // namespace
}  // namespace qp
