#include "qp/pref/profile.h"

#include "common/test_util.h"
#include "gtest/gtest.h"
#include "qp/data/movie_db.h"
#include "qp/data/paper_example.h"

namespace qp {
namespace {

AtomicPreference Comedy(double doi = 0.9) {
  return AtomicPreference::Selection({"GENRE", "genre"},
                                     Value::Str("comedy"), doi);
}

TEST(AtomicPreferenceTest, SelectionAccessors) {
  AtomicPreference p = Comedy();
  EXPECT_TRUE(p.is_selection());
  EXPECT_EQ(p.attribute().ToString(), "GENRE.genre");
  EXPECT_EQ(p.value(), Value::Str("comedy"));
  EXPECT_DOUBLE_EQ(p.doi(), 0.9);
  EXPECT_EQ(p.ConditionString(), "GENRE.genre='comedy'");
  EXPECT_EQ(p.ToString(), "[ GENRE.genre='comedy', 0.9 ]");
}

TEST(AtomicPreferenceTest, JoinAccessors) {
  AtomicPreference p =
      AtomicPreference::Join({"PLAY", "mid"}, {"MOVIE", "mid"}, 1.0);
  EXPECT_TRUE(p.is_join());
  EXPECT_EQ(p.attribute().ToString(), "PLAY.mid");
  EXPECT_EQ(p.target().ToString(), "MOVIE.mid");
  EXPECT_EQ(p.ToString(), "[ PLAY.mid=MOVIE.mid, 1 ]");
}

TEST(AtomicPreferenceTest, SameConditionIgnoresDegree) {
  EXPECT_TRUE(Comedy(0.9).SameCondition(Comedy(0.1)));
  EXPECT_FALSE(Comedy().SameCondition(AtomicPreference::Selection(
      {"GENRE", "genre"}, Value::Str("thriller"), 0.9)));
  // Join direction matters.
  AtomicPreference forward =
      AtomicPreference::Join({"PLAY", "mid"}, {"MOVIE", "mid"}, 1.0);
  AtomicPreference backward =
      AtomicPreference::Join({"MOVIE", "mid"}, {"PLAY", "mid"}, 0.8);
  EXPECT_FALSE(forward.SameCondition(backward));
}

TEST(UserProfileTest, AddAndCount) {
  UserProfile profile;
  QP_EXPECT_OK(profile.Add(Comedy()));
  QP_EXPECT_OK(profile.Add(
      AtomicPreference::Join({"PLAY", "mid"}, {"MOVIE", "mid"}, 1.0)));
  EXPECT_EQ(profile.size(), 2u);
  EXPECT_EQ(profile.NumSelections(), 1u);
  EXPECT_EQ(profile.NumJoins(), 1u);
  EXPECT_FALSE(profile.empty());
}

TEST(UserProfileTest, RejectsInvalidDegrees) {
  UserProfile profile;
  EXPECT_EQ(profile.Add(Comedy(1.5)).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(profile.Add(Comedy(-1.5)).code(), StatusCode::kInvalidArgument);
  // Zero-valued preferences are not stored (paper Section 3.1).
  EXPECT_EQ(profile.Add(Comedy(0.0)).code(), StatusCode::kInvalidArgument);
}

TEST(UserProfileTest, NegativeSelectionDegreesAllowed) {
  // The generalized-model extension: dislikes with degrees in [-1, 0).
  UserProfile profile;
  QP_EXPECT_OK(profile.Add(Comedy(-0.8)));
  EXPECT_TRUE(profile.preferences()[0].is_negative());
  EXPECT_EQ(profile.preferences()[0].ToString(),
            "[ GENRE.genre='comedy', -0.8 ]");
}

TEST(UserProfileTest, NegativeJoinDegreesRejected) {
  UserProfile profile;
  EXPECT_EQ(profile
                .Add(AtomicPreference::Join({"PLAY", "mid"},
                                            {"MOVIE", "mid"}, -0.5))
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(UserProfileTest, NegativeDegreeParseRoundTrip) {
  auto profile = UserProfile::Parse("[ GENRE.genre='horror', -0.8 ]\n");
  ASSERT_TRUE(profile.ok()) << profile.status();
  ASSERT_EQ(profile->size(), 1u);
  EXPECT_DOUBLE_EQ(profile->preferences()[0].doi(), -0.8);
  EXPECT_EQ(profile->Serialize(), "[ GENRE.genre='horror', -0.8 ]\n");
}

TEST(UserProfileTest, RejectsDuplicateConditions) {
  UserProfile profile;
  QP_EXPECT_OK(profile.Add(Comedy(0.9)));
  EXPECT_EQ(profile.Add(Comedy(0.5)).code(), StatusCode::kAlreadyExists);
}

TEST(UserProfileTest, AddOrUpdateReplaces) {
  UserProfile profile;
  QP_EXPECT_OK(profile.Add(Comedy(0.9)));
  profile.AddOrUpdate(Comedy(0.4));
  EXPECT_EQ(profile.size(), 1u);
  EXPECT_DOUBLE_EQ(profile.preferences()[0].doi(), 0.4);
}

TEST(UserProfileTest, FindJoinIsDirectional) {
  UserProfile profile;
  QP_EXPECT_OK(profile.Add(
      AtomicPreference::Join({"PLAY", "mid"}, {"MOVIE", "mid"}, 1.0)));
  EXPECT_NE(profile.FindJoin({"PLAY", "mid"}, {"MOVIE", "mid"}), nullptr);
  EXPECT_EQ(profile.FindJoin({"MOVIE", "mid"}, {"PLAY", "mid"}), nullptr);
}

TEST(UserProfileTest, FindSelection) {
  UserProfile profile;
  QP_EXPECT_OK(profile.Add(Comedy()));
  EXPECT_NE(
      profile.FindSelection({"GENRE", "genre"}, Value::Str("comedy")),
      nullptr);
  EXPECT_EQ(
      profile.FindSelection({"GENRE", "genre"}, Value::Str("drama")),
      nullptr);
}

TEST(UserProfileTest, ValidateAgainstSchema) {
  Schema schema = MovieSchema();
  QP_EXPECT_OK(JulieProfile().Validate(schema));

  UserProfile bad_attr;
  QP_EXPECT_OK(bad_attr.Add(AtomicPreference::Selection(
      {"GENRE", "nope"}, Value::Str("x"), 0.5)));
  EXPECT_FALSE(bad_attr.Validate(schema).ok());

  UserProfile bad_type;
  QP_EXPECT_OK(bad_type.Add(AtomicPreference::Selection(
      {"MOVIE", "year"}, Value::Str("nineteen-ninety"), 0.5)));
  EXPECT_FALSE(bad_type.Validate(schema).ok());

  UserProfile bad_join;
  QP_EXPECT_OK(bad_join.Add(AtomicPreference::Join(
      {"MOVIE", "mid"}, {"ACTOR", "aid"}, 0.5)));  // Not a declared join.
  EXPECT_EQ(bad_join.Validate(schema).code(), StatusCode::kInvalidArgument);
}

TEST(UserProfileTest, SerializeMatchesPaperFormat) {
  UserProfile profile;
  QP_EXPECT_OK(profile.Add(
      AtomicPreference::Join({"THEATRE", "tid"}, {"PLAY", "tid"}, 1.0)));
  QP_EXPECT_OK(profile.Add(Comedy(0.9)));
  EXPECT_EQ(profile.Serialize(),
            "[ THEATRE.tid=PLAY.tid, 1 ]\n"
            "[ GENRE.genre='comedy', 0.9 ]\n");
}

TEST(UserProfileTest, ParsePaperFigure2) {
  // Figure 2 of the paper, verbatim (modulo typography).
  auto profile = UserProfile::Parse(
      "[ THEATRE.tid=PLAY.tid, 1 ]\n"
      "[ PLAY.tid=THEATRE.tid, 1 ]\n"
      "[ PLAY.mid=MOVIE.mid, 1 ]\n"
      "[ MOVIE.mid=PLAY.mid, 0.8 ]\n"
      "[ MOVIE.mid=GENRE.mid, 0.9 ]\n"
      "[ ACTOR.name='A. Hopkins', 0.8 ]\n"
      "[ GENRE.genre='comedy', 0.9 ]\n"
      "[ GENRE.genre='thriller', 0.7 ]\n");
  ASSERT_TRUE(profile.ok()) << profile.status();
  EXPECT_EQ(profile->size(), 8u);
  EXPECT_EQ(profile->NumSelections(), 3u);
  EXPECT_EQ(profile->NumJoins(), 5u);
  const AtomicPreference* hopkins =
      profile->FindSelection({"ACTOR", "name"}, Value::Str("A. Hopkins"));
  ASSERT_NE(hopkins, nullptr);
  EXPECT_DOUBLE_EQ(hopkins->doi(), 0.8);
}

TEST(UserProfileTest, ParseSkipsCommentsAndBlankLines) {
  auto profile = UserProfile::Parse(
      "# Julie's profile\n"
      "\n"
      "[ GENRE.genre='comedy', 0.9 ]\n"
      "   # trailing comment line\n");
  ASSERT_TRUE(profile.ok());
  EXPECT_EQ(profile->size(), 1u);
}

TEST(UserProfileTest, ParseHandlesIntegerValues) {
  auto profile = UserProfile::Parse("[ MOVIE.year=1994, 0.6 ]\n");
  ASSERT_TRUE(profile.ok());
  EXPECT_EQ(profile->preferences()[0].value(), Value::Int(1994));
}

TEST(UserProfileTest, ParseErrors) {
  EXPECT_FALSE(UserProfile::Parse("[ GENRE.genre='comedy' ]").ok());
  EXPECT_FALSE(UserProfile::Parse("[ GENRE.genre=, 0.9 ]").ok());
  EXPECT_FALSE(UserProfile::Parse("GENRE.genre='comedy', 0.9").ok());
  EXPECT_FALSE(UserProfile::Parse("[ GENRE.genre='comedy', 0.9").ok());
  EXPECT_FALSE(UserProfile::Parse("[ GENRE.genre='comedy', 1.9 ]").ok());
}

TEST(UserProfileTest, SerializeParseRoundTrip) {
  UserProfile julie = JulieProfile();
  auto reparsed = UserProfile::Parse(julie.Serialize());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status();
  ASSERT_EQ(reparsed->size(), julie.size());
  for (size_t i = 0; i < julie.size(); ++i) {
    EXPECT_TRUE(
        reparsed->preferences()[i].SameCondition(julie.preferences()[i]));
    EXPECT_DOUBLE_EQ(reparsed->preferences()[i].doi(),
                     julie.preferences()[i].doi());
  }
}

}  // namespace
}  // namespace qp
