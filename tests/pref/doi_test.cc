#include "qp/pref/doi.h"

#include <algorithm>
#include <functional>
#include <vector>

#include "gtest/gtest.h"
#include "qp/util/random.h"

namespace qp {
namespace {

TEST(DoiTest, Validity) {
  EXPECT_TRUE(IsValidDoi(0.0));
  EXPECT_TRUE(IsValidDoi(1.0));
  EXPECT_TRUE(IsValidDoi(0.5));
  EXPECT_FALSE(IsValidDoi(-0.01));
  EXPECT_FALSE(IsValidDoi(1.01));
}

TEST(DoiTest, PaperTransitiveExample) {
  // N. Kidman: MOVIE->CAST (0.8), CAST->ACTOR (1), name='N. Kidman' (0.9).
  EXPECT_NEAR(TransitiveDoi({0.8, 1.0, 0.9}), 0.72, 1e-12);
}

TEST(DoiTest, PaperConjunctionExample) {
  // Comedies directed by W. Allen: 1-(1-0.7)(1-0.81) = 0.943.
  EXPECT_NEAR(ConjunctiveDoi({1.0 * 1.0 * 0.7, 0.9 * 0.9}), 0.943, 1e-12);
}

TEST(DoiTest, PaperDisjunctionExample) {
  // Comedy or W. Allen movie: (0.7 + 0.81) / 2 = 0.755.
  EXPECT_NEAR(DisjunctiveDoi({0.7, 0.81}), 0.755, 1e-12);
}

TEST(DoiTest, EmptyInputs) {
  EXPECT_DOUBLE_EQ(TransitiveDoi({}), 1.0);   // Identity of product.
  EXPECT_DOUBLE_EQ(ConjunctiveDoi({}), 0.0);
  EXPECT_DOUBLE_EQ(DisjunctiveDoi({}), 0.0);
}

TEST(DoiTest, SingletonIsIdentityForAllCombinators) {
  for (double d : {0.0, 0.3, 0.7, 1.0}) {
    EXPECT_DOUBLE_EQ(TransitiveDoi({d}), d);
    EXPECT_DOUBLE_EQ(ConjunctiveDoi({d}), d);
    EXPECT_DOUBLE_EQ(DisjunctiveDoi({d}), d);
  }
}

TEST(DoiTest, MustHaveDegreesAreAbsorbing) {
  // A degree-1 preference makes any conjunction degree 1 and never
  // reduces a transitive degree.
  EXPECT_DOUBLE_EQ(ConjunctiveDoi({1.0, 0.1}), 1.0);
  EXPECT_DOUBLE_EQ(TransitiveDoi({1.0, 0.5}), 0.5);
}

TEST(DoiTest, Accumulators) {
  ConjunctiveAccumulator conj;
  EXPECT_DOUBLE_EQ(conj.Degree(), 0.0);
  conj.Add(0.81);
  conj.Add(0.8);
  conj.Add(0.72);
  EXPECT_NEAR(conj.Degree(), ConjunctiveDoi({0.81, 0.8, 0.72}), 1e-12);

  DisjunctiveAccumulator disj;
  EXPECT_DOUBLE_EQ(disj.Degree(), 0.0);
  disj.Add(0.7);
  disj.Add(0.81);
  EXPECT_NEAR(disj.Degree(), 0.755, 1e-12);
  EXPECT_EQ(disj.count(), 2u);
}

TEST(DoiTest, AlternativeCombinators) {
  EXPECT_DOUBLE_EQ(TransitiveMinDoi({0.8, 1.0, 0.9}), 0.8);
  EXPECT_DOUBLE_EQ(ConjunctiveMaxDoi({0.3, 0.9, 0.5}), 0.9);
  EXPECT_DOUBLE_EQ(TransitiveMinDoi({}), 1.0);
  EXPECT_DOUBLE_EQ(ConjunctiveMaxDoi({}), 0.0);
}

/// Property suite: the paper's Section 3 axioms hold for random degree
/// sets for both the chosen functions and the documented alternatives.
class DoiAxiomTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  std::vector<double> RandomDegrees(Rng* rng) {
    size_t n = 1 + rng->Below(6);
    std::vector<double> degrees;
    for (size_t i = 0; i < n; ++i) degrees.push_back(rng->NextDouble());
    return degrees;
  }
};

TEST_P(DoiAxiomTest, TransitiveAtMostMin) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<double> degrees = RandomDegrees(&rng);
    double min = *std::min_element(degrees.begin(), degrees.end());
    EXPECT_LE(TransitiveDoi(degrees), min + 1e-12);
    EXPECT_LE(TransitiveMinDoi(degrees), min + 1e-12);
  }
}

TEST_P(DoiAxiomTest, ConjunctiveAtLeastMax) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<double> degrees = RandomDegrees(&rng);
    double max = *std::max_element(degrees.begin(), degrees.end());
    EXPECT_GE(ConjunctiveDoi(degrees), max - 1e-12);
    EXPECT_GE(ConjunctiveMaxDoi(degrees), max - 1e-12);
  }
}

TEST_P(DoiAxiomTest, DisjunctiveBetweenMinAndMax) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<double> degrees = RandomDegrees(&rng);
    double min = *std::min_element(degrees.begin(), degrees.end());
    double max = *std::max_element(degrees.begin(), degrees.end());
    double d = DisjunctiveDoi(degrees);
    EXPECT_GE(d, min - 1e-12);
    EXPECT_LE(d, max + 1e-12);
  }
}

TEST_P(DoiAxiomTest, TransitiveShrinksWithPathLength) {
  // "The degree of interest in a transitive preference decreases as the
  // length of the path increases."
  Rng rng(GetParam());
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<double> degrees = RandomDegrees(&rng);
    double shorter = TransitiveDoi(degrees);
    degrees.push_back(rng.NextDouble());
    EXPECT_LE(TransitiveDoi(degrees), shorter + 1e-12);
  }
}

TEST_P(DoiAxiomTest, ConjunctionGrowsWithMorePreferences) {
  // "The degree of interest in multiple preferences satisfied together
  // increases with the number of these preferences."
  Rng rng(GetParam());
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<double> degrees = RandomDegrees(&rng);
    double fewer = ConjunctiveDoi(degrees);
    degrees.push_back(rng.NextDouble());
    EXPECT_GE(ConjunctiveDoi(degrees), fewer - 1e-12);
  }
}

/// The subsumption theorem of Section 3.3, instantiated on the "any L of
/// the top K" condition class: satisfying more preferences (larger L) is
/// subsumed by satisfying fewer, so its degree of interest must be at
/// least as high; enlarging K (adding a weaker K+1-th preference to the
/// pool) weakens the condition, so its degree must not increase beyond.
TEST_P(DoiAxiomTest, SubsumptionTheoremOnLOfK) {
  Rng rng(GetParam());
  auto degree_of_l_of_k = [](const std::vector<double>& sorted_desc,
                             size_t l) {
    // theta(L, K) = OR over all L-subsets of the conjunction of the
    // subset; degree = disjunctive over conjunctive degrees.
    std::vector<double> conjunctions;
    size_t k = sorted_desc.size();
    std::vector<size_t> combo(l);
    std::function<void(size_t, size_t)> rec = [&](size_t start, size_t pos) {
      if (pos == l) {
        std::vector<double> subset;
        for (size_t idx : combo) subset.push_back(sorted_desc[idx]);
        conjunctions.push_back(ConjunctiveDoi(subset));
        return;
      }
      for (size_t i = start; i + (l - pos) <= k; ++i) {
        combo[pos] = i;
        rec(i + 1, pos + 1);
      }
    };
    rec(0, 0);
    return DisjunctiveDoi(conjunctions);
  };

  for (int trial = 0; trial < 20; ++trial) {
    size_t k = 2 + rng.Below(4);  // K in [2, 5].
    std::vector<double> degrees;
    for (size_t i = 0; i < k; ++i) degrees.push_back(rng.NextDouble());
    std::sort(degrees.rbegin(), degrees.rend());

    // Larger L => subsumed => degree at least as high.
    for (size_t l = 1; l < k; ++l) {
      EXPECT_GE(degree_of_l_of_k(degrees, l + 1),
                degree_of_l_of_k(degrees, l) - 1e-9)
          << "K=" << k << " L=" << l;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DoiAxiomTest,
                         ::testing::Values(11, 22, 33, 44));

}  // namespace
}  // namespace qp
