#include "qp/pref/profile_generator.h"

#include "common/test_util.h"
#include "gtest/gtest.h"
#include "qp/data/movie_db.h"

namespace qp {
namespace {

class ProfileGeneratorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    schema_ = MovieSchema();
    MovieDbConfig config;
    config.num_movies = 100;
    config.num_actors = 50;
    config.num_directors = 20;
    config.num_theatres = 10;
    auto db = GenerateMovieDatabase(config);
    ASSERT_TRUE(db.ok());
    db_ = std::make_unique<Database>(std::move(db).value());
    auto pools = MovieCandidatePools(*db_);
    ASSERT_TRUE(pools.ok());
    generator_ =
        std::make_unique<ProfileGenerator>(&schema_, std::move(pools).value());
  }

  Schema schema_;
  std::unique_ptr<Database> db_;
  std::unique_ptr<ProfileGenerator> generator_;
};

TEST_F(ProfileGeneratorTest, GeneratesRequestedSize) {
  ProfileGeneratorOptions options;
  options.num_selections = 30;
  Rng rng(1);
  auto profile = generator_->Generate(options, &rng);
  ASSERT_TRUE(profile.ok()) << profile.status();
  EXPECT_EQ(profile->NumSelections(), 30u);
  // Both directions of all 7 schema joins.
  EXPECT_EQ(profile->NumJoins(), 14u);
}

TEST_F(ProfileGeneratorTest, ProfileValidatesAgainstSchema) {
  ProfileGeneratorOptions options;
  options.num_selections = 50;
  Rng rng(2);
  auto profile = generator_->Generate(options, &rng);
  ASSERT_TRUE(profile.ok());
  QP_EXPECT_OK(profile->Validate(schema_));
}

TEST_F(ProfileGeneratorTest, DegreesWithinConfiguredRanges) {
  ProfileGeneratorOptions options;
  options.num_selections = 40;
  options.selection_min_doi = 0.2;
  options.selection_max_doi = 0.6;
  options.join_min_doi = 0.7;
  options.join_max_doi = 0.95;
  Rng rng(3);
  auto profile = generator_->Generate(options, &rng);
  ASSERT_TRUE(profile.ok());
  for (const AtomicPreference& p : profile->preferences()) {
    if (p.is_selection()) {
      EXPECT_GE(p.doi(), 0.2);
      EXPECT_LE(p.doi(), 0.6);
    } else {
      EXPECT_GE(p.doi(), 0.7);
      EXPECT_LE(p.doi(), 0.95);
    }
  }
}

TEST_F(ProfileGeneratorTest, DeterministicInSeed) {
  ProfileGeneratorOptions options;
  options.num_selections = 20;
  Rng rng_a(42);
  Rng rng_b(42);
  auto a = generator_->Generate(options, &rng_a);
  auto b = generator_->Generate(options, &rng_b);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->size(), b->size());
  for (size_t i = 0; i < a->size(); ++i) {
    EXPECT_TRUE(a->preferences()[i].SameCondition(b->preferences()[i]));
    EXPECT_DOUBLE_EQ(a->preferences()[i].doi(), b->preferences()[i].doi());
  }
}

TEST_F(ProfileGeneratorTest, DistinctConditions) {
  ProfileGeneratorOptions options;
  options.num_selections = 60;
  Rng rng(5);
  auto profile = generator_->Generate(options, &rng);
  ASSERT_TRUE(profile.ok());
  // UserProfile::Add rejects duplicates, so reaching the requested size
  // proves distinctness; double-check pairwise anyway.
  const auto& prefs = profile->preferences();
  for (size_t i = 0; i < prefs.size(); ++i) {
    for (size_t j = i + 1; j < prefs.size(); ++j) {
      EXPECT_FALSE(prefs[i].SameCondition(prefs[j]));
    }
  }
}

TEST_F(ProfileGeneratorTest, FailsWhenPoolTooSmall) {
  ProfileGeneratorOptions options;
  options.num_selections = generator_->NumCandidates() + 1;
  Rng rng(6);
  auto profile = generator_->Generate(options, &rng);
  EXPECT_EQ(profile.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(ProfileGeneratorTest, JoinsCanBeDisabled) {
  ProfileGeneratorOptions options;
  options.num_selections = 5;
  options.include_all_joins = false;
  Rng rng(7);
  auto profile = generator_->Generate(options, &rng);
  ASSERT_TRUE(profile.ok());
  EXPECT_EQ(profile->NumJoins(), 0u);
}

TEST_F(ProfileGeneratorTest, GeneratesSoftPreferencesOnNumericPools) {
  ProfileGeneratorOptions options;
  options.num_selections = 60;
  options.near_fraction = 1.0;  // Every numeric candidate becomes soft.
  options.near_width = 7.0;
  Rng rng(8);
  auto profile = generator_->Generate(options, &rng);
  ASSERT_TRUE(profile.ok()) << profile.status();
  size_t nears = 0;
  for (const AtomicPreference& p : profile->preferences()) {
    if (p.is_near()) {
      ++nears;
      EXPECT_DOUBLE_EQ(p.width(), 7.0);
      // Only numeric attributes may be soft.
      EXPECT_TRUE(p.value().type() == DataType::kInt64 ||
                  p.value().type() == DataType::kDouble);
    }
  }
  EXPECT_GT(nears, 0u);  // MOVIE.year is in the pools.
  QP_EXPECT_OK(profile->Validate(schema_));
}

TEST_F(ProfileGeneratorTest, GeneratesDislikes) {
  ProfileGeneratorOptions options;
  options.num_selections = 60;
  options.negative_fraction = 0.5;
  Rng rng(9);
  auto profile = generator_->Generate(options, &rng);
  ASSERT_TRUE(profile.ok()) << profile.status();
  size_t negatives = 0;
  for (const AtomicPreference& p : profile->preferences()) {
    if (p.is_selection() && p.is_negative()) ++negatives;
  }
  EXPECT_GT(negatives, 10u);
  EXPECT_LT(negatives, 50u);
  QP_EXPECT_OK(profile->Validate(schema_));
}

TEST(MovieCandidatePoolsTest, CoversValueAttributes) {
  MovieDbConfig config;
  config.num_movies = 50;
  auto db = GenerateMovieDatabase(config);
  ASSERT_TRUE(db.ok());
  auto pools = MovieCandidatePools(*db);
  ASSERT_TRUE(pools.ok());
  // genre, actor name, director name, region, year.
  EXPECT_EQ(pools->size(), 5u);
  for (const CandidatePool& pool : *pools) {
    EXPECT_FALSE(pool.values.empty()) << pool.attribute.ToString();
  }
}

TEST(MovieCandidatePoolsTest, RespectsCap) {
  MovieDbConfig config;
  config.num_movies = 50;
  auto db = GenerateMovieDatabase(config);
  ASSERT_TRUE(db.ok());
  auto pools = MovieCandidatePools(*db, 3);
  ASSERT_TRUE(pools.ok());
  for (const CandidatePool& pool : *pools) {
    EXPECT_LE(pool.values.size(), 3u);
  }
}

}  // namespace
}  // namespace qp
