// Stress tests for the work-stealing thread pool: correctness of every
// submitted task across N threads x M batches, submissions from worker
// threads (the stealing path), and teardown with work still queued.

#include <atomic>
#include <future>
#include <vector>

#include "gtest/gtest.h"
#include "qp/service/thread_pool.h"

namespace qp {
namespace {

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);

  constexpr int kTasks = 1000;
  std::atomic<int> done{0};
  std::vector<std::promise<int>> results(kTasks);
  std::vector<std::future<int>> futures;
  futures.reserve(kTasks);
  for (int i = 0; i < kTasks; ++i) futures.push_back(results[i].get_future());

  for (int i = 0; i < kTasks; ++i) {
    pool.Submit([i, &done, &results] {
      results[i].set_value(i * i);
      done.fetch_add(1);
    });
  }
  for (int i = 0; i < kTasks; ++i) {
    EXPECT_EQ(futures[i].get(), i * i);
  }
  EXPECT_EQ(done.load(), kTasks);
}

TEST(ThreadPoolTest, ZeroThreadsClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::promise<int> p;
  auto f = p.get_future();
  pool.Submit([&p] { p.set_value(7); });
  EXPECT_EQ(f.get(), 7);
}

TEST(ThreadPoolTest, StressManyBatchesDeterministicResults) {
  // N threads x M batches of tasks computing a pure function; every batch
  // must produce exactly the serial answer no matter how work is stolen.
  constexpr size_t kThreads = 8;
  constexpr int kBatches = 20;
  constexpr int kTasksPerBatch = 64;
  ThreadPool pool(kThreads);

  auto f = [](int batch, int i) { return batch * 1000003 + i * i; };

  for (int batch = 0; batch < kBatches; ++batch) {
    std::vector<std::promise<int>> results(kTasksPerBatch);
    std::vector<std::future<int>> futures;
    for (auto& r : results) futures.push_back(r.get_future());
    for (int i = 0; i < kTasksPerBatch; ++i) {
      pool.Submit([&, i] { results[i].set_value(f(batch, i)); });
    }
    for (int i = 0; i < kTasksPerBatch; ++i) {
      EXPECT_EQ(futures[i].get(), f(batch, i)) << "batch " << batch;
    }
  }
}

TEST(ThreadPoolTest, SubmitFromWorkerThreadIsStealable) {
  // A task fans out subtasks from inside the pool; with one producer
  // worker, the children land on its own deque and must be stolen (or
  // drained) by the others for the count to converge.
  ThreadPool pool(4);
  constexpr int kChildren = 200;
  std::atomic<int> done{0};
  std::promise<void> all_done;
  auto all_done_future = all_done.get_future();

  pool.Submit([&] {
    for (int i = 0; i < kChildren; ++i) {
      pool.Submit([&] {
        if (done.fetch_add(1) + 1 == kChildren) all_done.set_value();
      });
    }
  });
  all_done_future.wait();
  EXPECT_EQ(done.load(), kChildren);
}

TEST(ThreadPoolTest, DestructorDrainsQueuedWork) {
  std::atomic<int> done{0};
  constexpr int kTasks = 300;
  {
    ThreadPool pool(2);
    for (int i = 0; i < kTasks; ++i) {
      pool.Submit([&done] { done.fetch_add(1); });
    }
    // Destructor runs with most tasks still queued.
  }
  EXPECT_EQ(done.load(), kTasks);
}

TEST(ThreadPoolTest, QueueDepthReflectsBacklog) {
  ThreadPool pool(1);
  std::promise<void> release;
  std::shared_future<void> gate(release.get_future());
  std::promise<void> started;
  pool.Submit([&started, gate] {
    started.set_value();
    gate.wait();
  });
  started.get_future().wait();  // Worker is now blocked inside the task.
  for (int i = 0; i < 5; ++i) {
    pool.Submit([gate] { gate.wait(); });
  }
  EXPECT_EQ(pool.ApproxQueueDepth(), 5u);
  release.set_value();
}

TEST(ThreadPoolTest, ExplicitShutdownDrainsAndRejectsLateSubmits) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  constexpr int kTasks = 200;
  for (int i = 0; i < kTasks; ++i) {
    EXPECT_TRUE(pool.Submit([&done] { done.fetch_add(1); }));
  }
  pool.Shutdown(ThreadPool::DrainMode::kDrain);
  EXPECT_EQ(done.load(), kTasks);

  // After shutdown, Submit is a documented failure, not UB: it returns
  // false and the task never runs.
  std::atomic<bool> ran{false};
  EXPECT_FALSE(pool.Submit([&ran] { ran.store(true); }));
  EXPECT_FALSE(ran.load());

  // Idempotent: a second shutdown (and the destructor after it) no-op.
  pool.Shutdown(ThreadPool::DrainMode::kDiscard);
  EXPECT_EQ(done.load(), kTasks);
}

TEST(ThreadPoolTest, ShutdownDiscardDropsQueuedTasks) {
  ThreadPool pool(1);
  std::promise<void> release;
  std::shared_future<void> gate(release.get_future());
  std::promise<void> started;
  pool.Submit([&started, gate] {
    started.set_value();
    gate.wait();
  });
  started.get_future().wait();  // The only worker is pinned in a task.

  std::atomic<int> done{0};
  constexpr int kQueued = 50;
  for (int i = 0; i < kQueued; ++i) {
    EXPECT_TRUE(pool.Submit([&done] { done.fetch_add(1); }));
  }

  // Shutdown(kDiscard) sweeps the deques before joining; it can only
  // return once the pinned task finishes, so release the gate as soon as
  // the sweep is observable (queue depth drops to zero).
  std::thread shutdown([&pool] {
    pool.Shutdown(ThreadPool::DrainMode::kDiscard);
  });
  while (pool.ApproxQueueDepth() != 0) std::this_thread::yield();
  release.set_value();
  shutdown.join();

  // Every queued task was dropped; only the pinned one ran.
  EXPECT_EQ(done.load(), 0);
  EXPECT_FALSE(pool.Submit([&done] { done.fetch_add(1); }));
}

TEST(ThreadPoolTest, ConcurrentShutdownsAreSafe) {
  for (int round = 0; round < 20; ++round) {
    ThreadPool pool(2);
    std::atomic<int> done{0};
    for (int i = 0; i < 20; ++i) {
      pool.Submit([&done] { done.fetch_add(1); });
    }
    // Two racing shutdowns with different modes: the first caller picks
    // the mode, the loser must block until the join completes — either
    // way both return with the pool fully stopped.
    std::thread a([&pool] { pool.Shutdown(ThreadPool::DrainMode::kDrain); });
    std::thread b([&pool] { pool.Shutdown(ThreadPool::DrainMode::kDiscard); });
    a.join();
    b.join();
    EXPECT_FALSE(pool.Submit([] {}));
    EXPECT_LE(done.load(), 20);
  }
}

TEST(ThreadPoolTest, SubmitRacingShutdownNeverLosesATask) {
  // A submitter hammering the pool while another thread shuts it down:
  // every Submit that returned true must have its task run (kDrain), and
  // every false return must leave the task unrun. Accounting both sides
  // proves no task is silently dropped-but-acknowledged.
  for (int round = 0; round < 10; ++round) {
    auto pool = std::make_unique<ThreadPool>(2);
    std::atomic<int> ran{0};
    std::atomic<int> accepted{0};
    std::atomic<bool> go{false};

    std::thread submitter([&] {
      while (!go.load()) std::this_thread::yield();
      for (int i = 0; i < 500; ++i) {
        if (pool->Submit([&ran] { ran.fetch_add(1); })) {
          accepted.fetch_add(1);
        }
      }
    });
    std::thread stopper([&] {
      while (!go.load()) std::this_thread::yield();
      pool->Shutdown(ThreadPool::DrainMode::kDrain);
    });
    go.store(true);
    submitter.join();
    stopper.join();
    EXPECT_EQ(ran.load(), accepted.load()) << "round " << round;
  }
}

}  // namespace
}  // namespace qp
