// Stress tests for the work-stealing thread pool: correctness of every
// submitted task across N threads x M batches, submissions from worker
// threads (the stealing path), and teardown with work still queued.

#include <atomic>
#include <future>
#include <vector>

#include "gtest/gtest.h"
#include "qp/service/thread_pool.h"

namespace qp {
namespace {

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);

  constexpr int kTasks = 1000;
  std::atomic<int> done{0};
  std::vector<std::promise<int>> results(kTasks);
  std::vector<std::future<int>> futures;
  futures.reserve(kTasks);
  for (int i = 0; i < kTasks; ++i) futures.push_back(results[i].get_future());

  for (int i = 0; i < kTasks; ++i) {
    pool.Submit([i, &done, &results] {
      results[i].set_value(i * i);
      done.fetch_add(1);
    });
  }
  for (int i = 0; i < kTasks; ++i) {
    EXPECT_EQ(futures[i].get(), i * i);
  }
  EXPECT_EQ(done.load(), kTasks);
}

TEST(ThreadPoolTest, ZeroThreadsClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::promise<int> p;
  auto f = p.get_future();
  pool.Submit([&p] { p.set_value(7); });
  EXPECT_EQ(f.get(), 7);
}

TEST(ThreadPoolTest, StressManyBatchesDeterministicResults) {
  // N threads x M batches of tasks computing a pure function; every batch
  // must produce exactly the serial answer no matter how work is stolen.
  constexpr size_t kThreads = 8;
  constexpr int kBatches = 20;
  constexpr int kTasksPerBatch = 64;
  ThreadPool pool(kThreads);

  auto f = [](int batch, int i) { return batch * 1000003 + i * i; };

  for (int batch = 0; batch < kBatches; ++batch) {
    std::vector<std::promise<int>> results(kTasksPerBatch);
    std::vector<std::future<int>> futures;
    for (auto& r : results) futures.push_back(r.get_future());
    for (int i = 0; i < kTasksPerBatch; ++i) {
      pool.Submit([&, i] { results[i].set_value(f(batch, i)); });
    }
    for (int i = 0; i < kTasksPerBatch; ++i) {
      EXPECT_EQ(futures[i].get(), f(batch, i)) << "batch " << batch;
    }
  }
}

TEST(ThreadPoolTest, SubmitFromWorkerThreadIsStealable) {
  // A task fans out subtasks from inside the pool; with one producer
  // worker, the children land on its own deque and must be stolen (or
  // drained) by the others for the count to converge.
  ThreadPool pool(4);
  constexpr int kChildren = 200;
  std::atomic<int> done{0};
  std::promise<void> all_done;
  auto all_done_future = all_done.get_future();

  pool.Submit([&] {
    for (int i = 0; i < kChildren; ++i) {
      pool.Submit([&] {
        if (done.fetch_add(1) + 1 == kChildren) all_done.set_value();
      });
    }
  });
  all_done_future.wait();
  EXPECT_EQ(done.load(), kChildren);
}

TEST(ThreadPoolTest, DestructorDrainsQueuedWork) {
  std::atomic<int> done{0};
  constexpr int kTasks = 300;
  {
    ThreadPool pool(2);
    for (int i = 0; i < kTasks; ++i) {
      pool.Submit([&done] { done.fetch_add(1); });
    }
    // Destructor runs with most tasks still queued.
  }
  EXPECT_EQ(done.load(), kTasks);
}

TEST(ThreadPoolTest, QueueDepthReflectsBacklog) {
  ThreadPool pool(1);
  std::promise<void> release;
  std::shared_future<void> gate(release.get_future());
  std::promise<void> started;
  pool.Submit([&started, gate] {
    started.set_value();
    gate.wait();
  });
  started.get_future().wait();  // Worker is now blocked inside the task.
  for (int i = 0; i < 5; ++i) {
    pool.Submit([gate] { gate.wait(); });
  }
  EXPECT_EQ(pool.ApproxQueueDepth(), 5u);
  release.set_value();
}

}  // namespace
}  // namespace qp
