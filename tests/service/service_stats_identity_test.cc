// The ServiceStats accounting identity under concurrency: `requests ==
// full + degraded + shed + deadline_exceeded + errors` holds exactly at
// quiescence, and a reader racing the workers may see the disposition
// sum lag behind `requests` but never overshoot it (requests are counted
// at admission, dispositions at resolution; stats() reads dispositions
// first and the counters are seq_cst). Run under ThreadSanitizer by
// tests/ci.sh via the "obs" label.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "common/test_util.h"
#include "gtest/gtest.h"
#include "qp/data/paper_example.h"
#include "qp/service/service.h"
#include "qp/storage/fault_injection.h"

namespace qp {
namespace {

TEST(ServiceStatsIdentityTest, DispositionSumNeverOvershootsRequests) {
  QP_ASSERT_OK_AND_ASSIGN(Database db, BuildPaperDatabase());
  ServiceOptions options;
  options.num_workers = 2;
  options.max_queue_depth = 6;     // Force sheds.
  options.degrade_queue_depth = 2; // Force K step-downs.
  options.cache_capacity = 0;      // Every request pays full cost.
  PersonalizationService service(&db, options);
  QP_ASSERT_OK(service.profiles().Put("julie", JulieProfile()));

  constexpr size_t kBatch = 24;
  constexpr int kRounds = 6;

  // A mixed batch: mostly runnable requests, plus expired deadlines
  // (deadline_exceeded) and an unknown user (errors), so every
  // disposition counter moves while the reader races.
  std::vector<PersonalizationRequest> batch;
  for (size_t i = 0; i < kBatch; ++i) {
    PersonalizationRequest request;
    // Indexes 0-5 admit unconditionally (the enqueue loop can have at
    // most i requests queued when request i arrives, and the bound is
    // 6), so an error user at 3 and an expired deadline at 5 guarantee
    // both counters move every round.
    request.user_id = i % 8 == 3 ? "nobody" : "julie";
    request.query = TonightQuery();
    request.options.criterion = InterestCriterion::TopCount(4);
    if (i % 6 == 5) request.deadline_ms = 1e-6;  // Expired on arrival.
    batch.push_back(std::move(request));
  }

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> reads{0};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      ServiceStats stats = service.stats();
      uint64_t dispositions = stats.full + stats.degraded + stats.shed +
                              stats.deadline_exceeded + stats.errors;
      // The one inequality a concurrent reader may rely on.
      ASSERT_LE(dispositions, stats.requests);
      reads.fetch_add(1, std::memory_order_relaxed);
    }
  });

  for (int round = 0; round < kRounds; ++round) {
    std::vector<PersonalizationResponse> responses =
        service.PersonalizeBatchAndWait(batch);
    ASSERT_EQ(responses.size(), kBatch);
  }
  stop.store(true, std::memory_order_release);
  reader.join();
  EXPECT_GT(reads.load(), 0u) << "reader never observed the counters";

  // Quiescent: the identity is exact and matches what was submitted.
  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.requests, kRounds * kBatch);
  EXPECT_EQ(stats.full + stats.degraded + stats.shed +
                stats.deadline_exceeded + stats.errors,
            stats.requests);
  EXPECT_GT(stats.errors, 0u);
  EXPECT_GT(stats.deadline_exceeded, 0u);
  EXPECT_EQ(stats.batches, static_cast<uint64_t>(kRounds));
}

// The identity — and the breaker's own accounting — must survive full
// open -> half-open -> closed cycles happening concurrently with served
// traffic. Readers race the transitions; the invariants they may rely
// on at any instant: the disposition sum never overshoots requests,
// trips never lag recoveries (every recovery follows a trip), and once
// quiescent-and-healed the breaker gauge is down with trips a true
// cumulative counter.
TEST(ServiceStatsIdentityTest, IdentityHoldsWhileBreakerCycles) {
  QP_ASSERT_OK_AND_ASSIGN(Database db, BuildPaperDatabase());
  storage::FaultInjectingFileSystem fs;
  ServiceOptions options;
  options.num_workers = 2;
  options.cache_capacity = 0;
  options.storage.dir = "db";
  options.storage.fs = &fs;
  options.storage.background_compaction = false;
  options.storage.wal.max_sync_retries = 0;
  options.storage.wal.retry_backoff = std::chrono::milliseconds(0);
  options.storage.breaker_threshold = 2;
  options.storage.breaker_backoff = std::chrono::milliseconds(1);
  options.storage.breaker_backoff_max = std::chrono::milliseconds(10);
  QP_ASSERT_OK_AND_ASSIGN(auto service,
                          PersonalizationService::OpenDurable(&db, options));
  QP_ASSERT_OK(service->profiles().Put("julie", JulieProfile()));

  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      ServiceStats stats = service->stats();
      uint64_t dispositions = stats.full + stats.degraded + stats.shed +
                              stats.deadline_exceeded + stats.errors;
      ASSERT_LE(dispositions, stats.requests);
      ASSERT_GE(stats.storage.breaker_trips, stats.storage.breaker_recoveries);
    }
  });
  std::thread traffic([&] {
    std::vector<PersonalizationRequest> batch(8);
    for (auto& request : batch) {
      request.user_id = "julie";
      request.query = TonightQuery();
      request.options.criterion = InterestCriterion::TopCount(4);
    }
    for (int round = 0; round < 4; ++round) {
      service->PersonalizeBatchAndWait(batch);
    }
  });

  constexpr int kCycles = 3;
  for (int cycle = 0; cycle < kCycles; ++cycle) {
    // Trip: a dead disk fails mutations until the breaker opens.
    fs.SetSyncFailure(true);
    for (int i = 0; i < 64 && !service->stats().storage.breaker_open; ++i) {
      (void)service->profiles().Put("rob", RobProfile());
    }
    ASSERT_TRUE(service->stats().storage.breaker_open);
    // Heal: after the backoff a mutation is admitted as the half-open
    // probe, recovers the store and closes the breaker.
    fs.SetSyncFailure(false);
    bool closed = false;
    for (int i = 0; i < 2000 && !closed; ++i) {
      closed = service->profiles().Put("rob", RobProfile()).ok();
      if (!closed) std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    ASSERT_TRUE(closed) << "breaker never closed in cycle " << cycle;
  }
  traffic.join();
  stop.store(true, std::memory_order_release);
  reader.join();

  ServiceStats stats = service->stats();
  EXPECT_EQ(stats.full + stats.degraded + stats.shed +
                stats.deadline_exceeded + stats.errors,
            stats.requests);
  EXPECT_FALSE(stats.storage.breaker_open);
  EXPECT_GE(stats.storage.breaker_recoveries, kCycles);
  EXPECT_GE(stats.storage.breaker_trips, stats.storage.breaker_recoveries);
}

}  // namespace
}  // namespace qp
