// ProfileStore tests: put/get/remove semantics, epoch monotonicity, and
// the snapshot-isolation guarantee — concurrent mutation plus selection
// never observes a half-updated profile (run under -DQP_SANITIZE=thread
// to also prove data-race freedom).

#include <atomic>
#include <thread>
#include <vector>

#include "common/test_util.h"
#include "gtest/gtest.h"
#include "qp/core/selection.h"
#include "qp/data/movie_db.h"
#include "qp/data/paper_example.h"
#include "qp/service/profile_store.h"

namespace qp {
namespace {

class ProfileStoreTest : public ::testing::Test {
 protected:
  ProfileStoreTest() : schema_(MovieSchema()) {}
  Schema schema_;
};

TEST_F(ProfileStoreTest, PutGetRemove) {
  ProfileStore store(&schema_, 4);
  EXPECT_EQ(store.size(), 0u);
  EXPECT_FALSE(store.Get("julie").ok());

  QP_ASSERT_OK(store.Put("julie", JulieProfile()));
  QP_ASSERT_OK(store.Put("rob", RobProfile()));
  EXPECT_EQ(store.size(), 2u);

  QP_ASSERT_OK_AND_ASSIGN(ProfileSnapshot snapshot, store.Get("julie"));
  EXPECT_EQ(snapshot.profile->size(), JulieProfile().size());
  EXPECT_GT(snapshot.graph->num_selection_edges(), 0u);

  QP_ASSERT_OK(store.Remove("julie"));
  EXPECT_EQ(store.Remove("julie").code(), StatusCode::kNotFound);
  EXPECT_FALSE(store.Get("julie").ok());
  EXPECT_EQ(store.size(), 1u);

  // The snapshot taken before the removal stays fully usable.
  EXPECT_EQ(snapshot.profile->size(), JulieProfile().size());
}

TEST_F(ProfileStoreTest, InvalidProfileIsRejected) {
  ProfileStore store(&schema_);
  UserProfile bad;
  QP_ASSERT_OK(bad.Add(AtomicPreference::Selection(
      AttributeRef{"NO_SUCH_TABLE", "x"}, Value::Str("y"), 0.5)));
  EXPECT_FALSE(store.Put("u", std::move(bad)).ok());
  EXPECT_FALSE(store.Get("u").ok());
}

TEST_F(ProfileStoreTest, EpochBumpsOnEveryMutation) {
  ProfileStore store(&schema_);
  QP_ASSERT_OK(store.Put("julie", JulieProfile()));
  QP_ASSERT_OK_AND_ASSIGN(ProfileSnapshot first, store.Get("julie"));

  QP_ASSERT_OK(store.Put("julie", JulieProfile()));
  QP_ASSERT_OK_AND_ASSIGN(ProfileSnapshot second, store.Get("julie"));
  EXPECT_GT(second.epoch, first.epoch);

  // Upsert mutates too.
  AtomicPreference extra = AtomicPreference::Selection(
      AttributeRef{"GENRE", "genre"}, Value::Str("drama"), 0.4);
  QP_ASSERT_OK(store.Upsert("julie", {extra}));
  QP_ASSERT_OK_AND_ASSIGN(ProfileSnapshot third, store.Get("julie"));
  EXPECT_GT(third.epoch, second.epoch);
  EXPECT_EQ(third.profile->size(), second.profile->size() + 1);
}

TEST_F(ProfileStoreTest, RemoveThenReinsertNeverReusesAnEpoch) {
  // Cache keys embed (user, epoch); a re-inserted user reusing an old
  // epoch would resurrect cache entries of the deleted profile.
  ProfileStore store(&schema_, 1);
  QP_ASSERT_OK(store.Put("julie", JulieProfile()));
  QP_ASSERT_OK(store.Put("julie", JulieProfile()));
  QP_ASSERT_OK_AND_ASSIGN(ProfileSnapshot before, store.Get("julie"));
  QP_ASSERT_OK(store.Remove("julie"));
  QP_ASSERT_OK(store.Put("julie", RobProfile()));
  QP_ASSERT_OK_AND_ASSIGN(ProfileSnapshot after, store.Get("julie"));
  EXPECT_GT(after.epoch, before.epoch);
}

TEST_F(ProfileStoreTest, ConcurrentUpsertsNeverLoseAnUpdate) {
  // Regression: Upsert used to read the profile under a shared lock,
  // merge, then install under an exclusive lock — two racing upserts of
  // *different* preferences could both start from the same base and the
  // second install would silently drop the first writer's preference.
  // The epoch-validated retry makes the merge atomic: after two threads
  // each upsert their own preference set, both sets must be present.
  AtomicPreference mine = AtomicPreference::Selection(
      AttributeRef{"GENRE", "genre"}, Value::Str("western"), 0.31);
  AtomicPreference yours = AtomicPreference::Selection(
      AttributeRef{"ACTOR", "name"}, Value::Str("G. Binoche"), 0.57);

  for (int round = 0; round < 50; ++round) {
    ProfileStore store(&schema_, 4);
    QP_ASSERT_OK(store.Put("julie", JulieProfile()));

    std::atomic<bool> go{false};
    std::thread a([&] {
      while (!go.load()) std::this_thread::yield();
      ASSERT_TRUE(store.Upsert("julie", {mine}).ok());
    });
    std::thread b([&] {
      while (!go.load()) std::this_thread::yield();
      ASSERT_TRUE(store.Upsert("julie", {yours}).ok());
    });
    go.store(true);
    a.join();
    b.join();

    QP_ASSERT_OK_AND_ASSIGN(ProfileSnapshot snapshot, store.Get("julie"));
    EXPECT_EQ(snapshot.profile->size(), JulieProfile().size() + 2)
        << "round " << round << ": a concurrent upsert was lost";
  }
}

TEST_F(ProfileStoreTest, SnapshotIsolationUnderConcurrentMutation) {
  // Two writers flip user "julie" between two internally consistent
  // profiles while readers continuously run preference selection on
  // their snapshots. A torn read would surface as a selection edge count
  // matching neither profile, a crossed profile/graph pair, or (under
  // TSan) a race report.
  ProfileStore store(&schema_, 4);

  UserProfile a = JulieProfile();
  UserProfile b = RobProfile();
  const size_t a_size = a.size();
  const size_t b_size = b.size();
  ASSERT_NE(a_size, b_size);  // Distinguishable variants.
  QP_ASSERT_OK(store.Put("julie", a));

  std::atomic<bool> stop{false};
  std::atomic<int> observed{0};
  SelectQuery query = TonightQuery();

  std::vector<std::thread> threads;
  for (int w = 0; w < 2; ++w) {
    threads.emplace_back([&, w] {
      for (int i = 0; i < 200; ++i) {
        ASSERT_TRUE(
            store.Put("julie", (i % 2 == w % 2) ? JulieProfile() : RobProfile())
                .ok());
      }
    });
  }
  for (int r = 0; r < 3; ++r) {
    threads.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        auto snapshot = store.Get("julie");
        ASSERT_TRUE(snapshot.ok());
        size_t profile_size = snapshot->profile->size();
        ASSERT_TRUE(profile_size == a_size || profile_size == b_size)
            << "torn profile: " << profile_size;
        // The graph must correspond to the same variant as the profile.
        size_t edges = snapshot->graph->num_selection_edges() +
                       snapshot->graph->num_negative_selection_edges() +
                       snapshot->graph->num_join_edges();
        ASSERT_EQ(edges, profile_size) << "profile/graph snapshot mismatch";
        // And selection over the snapshot must run cleanly.
        PreferenceSelector selector(snapshot->graph.get());
        auto selected =
            selector.Select(query, InterestCriterion::TopCount(3));
        ASSERT_TRUE(selected.ok());
        observed.fetch_add(1);
      }
    });
  }
  threads[0].join();
  threads[1].join();
  stop.store(true, std::memory_order_release);
  for (size_t i = 2; i < threads.size(); ++i) threads[i].join();
  EXPECT_GT(observed.load(), 0);
}

}  // namespace
}  // namespace qp
