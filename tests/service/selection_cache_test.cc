// SelectionCache unit tests: hit/miss accounting, LRU eviction bound,
// epoch-keyed invalidation, and concurrent access sanity.

#include <memory>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "qp/core/interest_criterion.h"
#include "qp/service/selection_cache.h"

namespace qp {
namespace {

SelectionCache::Paths MakePaths(size_t n) {
  std::vector<PreferencePath> paths;
  for (size_t i = 0; i < n; ++i) {
    paths.emplace_back("MV", "MOVIE");
  }
  return std::make_shared<const std::vector<PreferencePath>>(
      std::move(paths));
}

TEST(SelectionCacheTest, HitAfterInsertMissBefore) {
  SelectionCache cache(8);
  std::string key = SelectionCache::MakeKey(
      "julie", 1, "select MV.title from MV:MOVIE where true",
      InterestCriterion::TopCount(5));

  EXPECT_EQ(cache.Lookup(key), nullptr);
  cache.Insert(key, MakePaths(3));
  SelectionCache::Paths hit = cache.Lookup(key);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->size(), 3u);

  SelectionCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_EQ(stats.evictions, 0u);
}

TEST(SelectionCacheTest, KeyDistinguishesEpochQueryAndCriterion) {
  // Any component changing must change the key: the epoch is how profile
  // mutations invalidate, the criterion is part of what was computed.
  std::string base = SelectionCache::MakeKey(
      "julie", 1, "q1", InterestCriterion::TopCount(5));
  EXPECT_NE(base, SelectionCache::MakeKey("julie", 2, "q1",
                                          InterestCriterion::TopCount(5)));
  EXPECT_NE(base, SelectionCache::MakeKey("julie", 1, "q2",
                                          InterestCriterion::TopCount(5)));
  EXPECT_NE(base, SelectionCache::MakeKey("julie", 1, "q1",
                                          InterestCriterion::TopCount(6)));
  EXPECT_NE(base, SelectionCache::MakeKey("julie", 1, "q1",
                                          InterestCriterion::MinDegree(0.5)));
  EXPECT_NE(base, SelectionCache::MakeKey("rob", 1, "q1",
                                          InterestCriterion::TopCount(5)));
  // Same components, same key.
  EXPECT_EQ(base, SelectionCache::MakeKey("julie", 1, "q1",
                                          InterestCriterion::TopCount(5)));
}

TEST(SelectionCacheTest, EpochBumpInvalidates) {
  SelectionCache cache(8);
  auto criterion = InterestCriterion::TopCount(5);
  cache.Insert(SelectionCache::MakeKey("julie", 1, "q", criterion),
               MakePaths(2));
  // After a profile mutation the caller looks up under the new epoch:
  // a miss, never the stale entry.
  EXPECT_EQ(cache.Lookup(SelectionCache::MakeKey("julie", 2, "q", criterion)),
            nullptr);
}

TEST(SelectionCacheTest, LruEvictionBound) {
  SelectionCache cache(4);
  auto criterion = InterestCriterion::TopCount(5);
  auto key = [&](int i) {
    return SelectionCache::MakeKey("u", 1, "q" + std::to_string(i),
                                   criterion);
  };
  for (int i = 0; i < 10; ++i) {
    cache.Insert(key(i), MakePaths(1));
    EXPECT_LE(cache.size(), 4u);
  }
  EXPECT_EQ(cache.size(), 4u);
  EXPECT_EQ(cache.stats().evictions, 6u);
  // The four most recent survive; the oldest six are gone.
  for (int i = 0; i < 6; ++i) EXPECT_EQ(cache.Lookup(key(i)), nullptr);
  for (int i = 6; i < 10; ++i) EXPECT_NE(cache.Lookup(key(i)), nullptr);
}

TEST(SelectionCacheTest, LookupRefreshesRecency) {
  SelectionCache cache(2);
  auto criterion = InterestCriterion::TopCount(5);
  auto key = [&](int i) {
    return SelectionCache::MakeKey("u", 1, "q" + std::to_string(i),
                                   criterion);
  };
  cache.Insert(key(0), MakePaths(1));
  cache.Insert(key(1), MakePaths(1));
  EXPECT_NE(cache.Lookup(key(0)), nullptr);  // 0 becomes most recent.
  cache.Insert(key(2), MakePaths(1));        // Evicts 1, not 0.
  EXPECT_NE(cache.Lookup(key(0)), nullptr);
  EXPECT_EQ(cache.Lookup(key(1)), nullptr);
  EXPECT_NE(cache.Lookup(key(2)), nullptr);
}

TEST(SelectionCacheTest, InsertSameKeyReplaces) {
  SelectionCache cache(4);
  std::string key = SelectionCache::MakeKey(
      "u", 1, "q", InterestCriterion::TopCount(5));
  cache.Insert(key, MakePaths(1));
  cache.Insert(key, MakePaths(5));
  EXPECT_EQ(cache.size(), 1u);
  auto hit = cache.Lookup(key);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->size(), 5u);
}

TEST(SelectionCacheTest, ClearDropsEntriesKeepsStats) {
  SelectionCache cache(4);
  std::string key = SelectionCache::MakeKey(
      "u", 1, "q", InterestCriterion::TopCount(5));
  cache.Insert(key, MakePaths(1));
  EXPECT_NE(cache.Lookup(key), nullptr);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.Lookup(key), nullptr);
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(SelectionCacheTest, EraseUserDropsOnlyThatUsersEntries) {
  SelectionCache cache(16);
  auto criterion = InterestCriterion::TopCount(5);
  auto key = [&](const std::string& user, int i) {
    return SelectionCache::MakeKey(user, 1, "q" + std::to_string(i),
                                   criterion);
  };
  // User-aware inserts for A and B, plus one anonymous (keyed-only)
  // entry that no per-user invalidation may touch.
  for (int i = 0; i < 3; ++i) cache.Insert("alice", key("alice", i),
                                           MakePaths(1));
  for (int i = 0; i < 2; ++i) cache.Insert("bob", key("bob", i),
                                           MakePaths(1));
  cache.Insert(key("anon", 0), MakePaths(1));
  ASSERT_EQ(cache.size(), 6u);

  // Mutating Alice drops exactly her three entries; Bob's and the
  // anonymous entry survive untouched.
  EXPECT_EQ(cache.EraseUser("alice"), 3u);
  EXPECT_EQ(cache.size(), 3u);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(cache.Lookup(key("alice", i)),
                                        nullptr);
  for (int i = 0; i < 2; ++i) EXPECT_NE(cache.Lookup(key("bob", i)),
                                        nullptr);
  EXPECT_NE(cache.Lookup(key("anon", 0)), nullptr);
  EXPECT_EQ(cache.stats().user_invalidations, 3u);

  // Unknown or already-erased users are clean no-ops.
  EXPECT_EQ(cache.EraseUser("alice"), 0u);
  EXPECT_EQ(cache.EraseUser("nobody"), 0u);
  EXPECT_EQ(cache.stats().user_invalidations, 3u);
}

TEST(SelectionCacheTest, EvictionAndReplaceMaintainUserIndex) {
  SelectionCache cache(2);
  auto criterion = InterestCriterion::TopCount(5);
  auto key = [&](int i) {
    return SelectionCache::MakeKey("u", 1, "q" + std::to_string(i),
                                   criterion);
  };
  // LRU eviction of a user-owned entry must unindex it: a later
  // EraseUser sees only what is still resident.
  cache.Insert("alice", key(0), MakePaths(1));
  cache.Insert("alice", key(1), MakePaths(1));
  cache.Insert("alice", key(2), MakePaths(1));  // Evicts key(0).
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.EraseUser("alice"), 2u);
  EXPECT_EQ(cache.size(), 0u);

  // Re-inserting the same key under a different owner re-homes it.
  cache.Insert("alice", key(7), MakePaths(1));
  cache.Insert("bob", key(7), MakePaths(2));
  EXPECT_EQ(cache.EraseUser("alice"), 0u);
  auto hit = cache.Lookup(key(7));
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->size(), 2u);
  EXPECT_EQ(cache.EraseUser("bob"), 1u);
  EXPECT_EQ(cache.Lookup(key(7)), nullptr);
}

TEST(SelectionCacheTest, ReHomingAKeyMovesItsOwnerIndexEntry) {
  // Regression pin: re-inserting an existing key under a new owner must
  // unindex the old owner binding *before* touching the slot — the
  // re-home path once erased the index entry and then dereferenced the
  // invalidated iterator. The observable contract: the old owner no
  // longer invalidates the entry, the new owner does, and lookups keep
  // returning the freshest value throughout.
  SelectionCache cache(8);
  auto criterion = InterestCriterion::TopCount(5);
  std::string key = SelectionCache::MakeKey("shared", 1, "q", criterion);

  cache.Insert("alice", key, MakePaths(1));
  cache.Insert("bob", key, MakePaths(3));  // Same key, new owner.

  auto hit = cache.Lookup(key);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->size(), 3u);

  EXPECT_EQ(cache.EraseUser("alice"), 0u);  // Alice's binding is gone.
  ASSERT_NE(cache.Lookup(key), nullptr);
  EXPECT_EQ(cache.EraseUser("bob"), 1u);    // Bob owns it now.
  EXPECT_EQ(cache.Lookup(key), nullptr);

  // Round-trip the other way: owned -> anonymous -> owned again.
  cache.Insert("carol", key, MakePaths(2));
  cache.Insert(key, MakePaths(4));  // Anonymous re-home.
  EXPECT_EQ(cache.EraseUser("carol"), 0u);
  hit = cache.Lookup(key);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->size(), 4u);
  cache.Insert("dave", key, MakePaths(5));
  EXPECT_EQ(cache.EraseUser("dave"), 1u);
  EXPECT_EQ(cache.Lookup(key), nullptr);
}

TEST(SelectionCacheTest, ConcurrentMixedAccess) {
  // Hammer one small cache from several threads; correctness here is
  // "no crash, bounded size, every hit returns an intact vector" (TSan
  // covers the rest).
  SelectionCache cache(16);
  auto criterion = InterestCriterion::TopCount(5);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 500; ++i) {
        std::string key = SelectionCache::MakeKey(
            "u" + std::to_string((t + i) % 8), 1, "q" + std::to_string(i % 8),
            criterion);
        if (i % 3 == 0) {
          cache.Insert(key, MakePaths(static_cast<size_t>(i % 5)));
        } else {
          auto hit = cache.Lookup(key);
          if (hit != nullptr) {
            ASSERT_LT(hit->size(), 5u);
          }
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_LE(cache.size(), 16u);
}

}  // namespace
}  // namespace qp
