// Request lifecycle under load: admission control (shedding past the
// queue/inflight bounds), per-request deadlines (exceeded in queue vs
// degraded mid-run), the degradation ladder (K stepped down under queue
// pressure), and the disposition accounting that ties it all together —
// every response is exactly one of full / degraded / shed /
// deadline_exceeded, and the stats counters agree with the responses.
// Run under -DQP_SANITIZE=thread to prove the admission path is race-free.

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/test_util.h"
#include "gtest/gtest.h"
#include "qp/data/movie_db.h"
#include "qp/data/paper_example.h"
#include "qp/data/workload.h"
#include "qp/pref/profile_generator.h"
#include "qp/service/service.h"

namespace qp {
namespace {

class ServiceLifecycleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MovieDbConfig config;
    config.num_movies = 300;
    config.num_actors = 150;
    config.num_directors = 40;
    config.num_theatres = 8;
    config.num_days = 4;
    config.seed = 20040308;
    QP_ASSERT_OK_AND_ASSIGN(Database db, GenerateMovieDatabase(config));
    db_ = std::make_unique<Database>(std::move(db));
    QP_ASSERT_OK_AND_ASSIGN(auto pools, MovieCandidatePools(*db_));
    generator_ =
        std::make_unique<ProfileGenerator>(&db_->schema(), std::move(pools));
  }

  UserProfile MakeProfile(uint64_t seed) {
    Rng rng(seed);
    ProfileGeneratorOptions options;
    options.num_selections = 30;
    auto profile = generator_->Generate(options, &rng);
    EXPECT_TRUE(profile.ok()) << profile.status();
    return std::move(profile).value();
  }

  std::vector<PersonalizationRequest> MakeRequests(size_t count,
                                                   uint64_t seed) {
    WorkloadGenerator workload(db_.get(), seed);
    auto queries = workload.RandomQueries(count);
    EXPECT_TRUE(queries.ok());
    std::vector<PersonalizationRequest> requests;
    for (size_t i = 0; i < count; ++i) {
      PersonalizationRequest request;
      request.user_id = "julie";
      request.query = (*queries)[i % queries->size()];
      request.options.criterion = InterestCriterion::TopCount(8);
      requests.push_back(std::move(request));
    }
    return requests;
  }

  std::unique_ptr<Database> db_;
  std::unique_ptr<ProfileGenerator> generator_;
};

/// Counts responses per disposition and checks per-disposition status
/// invariants: shed => Unavailable, deadline_exceeded => DeadlineExceeded
/// (both without results); full/degraded => Ok here (all requests in
/// these tests are valid).
std::map<RequestDisposition, size_t> Account(
    const std::vector<PersonalizationResponse>& responses) {
  std::map<RequestDisposition, size_t> counts;
  for (const PersonalizationResponse& response : responses) {
    ++counts[response.disposition];
    switch (response.disposition) {
      case RequestDisposition::kShed:
        EXPECT_EQ(response.status.code(), StatusCode::kUnavailable);
        EXPECT_EQ(response.results.num_rows(), 0u);
        EXPECT_TRUE(response.outcome.selected.empty());
        break;
      case RequestDisposition::kDeadlineExceeded:
        EXPECT_EQ(response.status.code(), StatusCode::kDeadlineExceeded);
        EXPECT_EQ(response.results.num_rows(), 0u);
        EXPECT_TRUE(response.outcome.selected.empty());
        break;
      case RequestDisposition::kFull:
      case RequestDisposition::kDegraded:
        EXPECT_TRUE(response.status.ok()) << response.status;
        break;
    }
  }
  return counts;
}

TEST_F(ServiceLifecycleTest, DispositionNamesAreStable) {
  EXPECT_STREQ(ToString(RequestDisposition::kFull), "full");
  EXPECT_STREQ(ToString(RequestDisposition::kDegraded), "degraded");
  EXPECT_STREQ(ToString(RequestDisposition::kShed), "shed");
  EXPECT_STREQ(ToString(RequestDisposition::kDeadlineExceeded),
               "deadline_exceeded");
}

TEST_F(ServiceLifecycleTest, UnboundedServiceNeverSheds) {
  ServiceOptions options;
  options.num_workers = 2;
  PersonalizationService service(db_.get(), options);
  QP_ASSERT_OK(service.profiles().Put("julie", MakeProfile(1)));

  auto responses = service.PersonalizeBatchAndWait(MakeRequests(16, 7));
  auto counts = Account(responses);
  EXPECT_EQ(counts[RequestDisposition::kFull], 16u);
  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.shed, 0u);
  EXPECT_EQ(stats.deadline_exceeded, 0u);
  EXPECT_EQ(stats.degraded, 0u);
}

TEST_F(ServiceLifecycleTest, AdmissionControlShedsPastTheBound) {
  ServiceOptions options;
  options.num_workers = 1;
  options.max_queue_depth = 2;
  PersonalizationService service(db_.get(), options);
  QP_ASSERT_OK(service.profiles().Put("julie", MakeProfile(1)));

  constexpr size_t kBatch = 24;
  auto responses = service.PersonalizeBatchAndWait(MakeRequests(kBatch, 11));
  auto counts = Account(responses);

  // Submission is far faster than personalization, so with one worker
  // and a queue of two, most of the batch must be rejected at admission.
  EXPECT_GE(counts[RequestDisposition::kShed], kBatch / 2)
      << "admission control admitted nearly everything";
  // Admitted requests all completed normally (no deadlines configured).
  EXPECT_EQ(counts[RequestDisposition::kShed] +
                counts[RequestDisposition::kFull] +
                counts[RequestDisposition::kDegraded],
            kBatch);

  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.requests, kBatch);
  EXPECT_EQ(stats.shed, counts[RequestDisposition::kShed]);
  EXPECT_LE(stats.max_queue_depth, options.max_queue_depth);

  // The service is healthy after the storm: a fresh request completes.
  auto calm = service.PersonalizeBatchAndWait(MakeRequests(1, 13));
  EXPECT_EQ(calm[0].disposition, RequestDisposition::kFull);
}

TEST_F(ServiceLifecycleTest, MaxInflightBoundsAdmittedWork) {
  ServiceOptions options;
  options.num_workers = 2;
  options.max_inflight = 3;  // Queue unbounded, total admitted capped.
  PersonalizationService service(db_.get(), options);
  QP_ASSERT_OK(service.profiles().Put("julie", MakeProfile(1)));

  constexpr size_t kBatch = 24;
  auto responses = service.PersonalizeBatchAndWait(MakeRequests(kBatch, 17));
  auto counts = Account(responses);
  EXPECT_GE(counts[RequestDisposition::kShed], kBatch / 2);
  EXPECT_EQ(counts[RequestDisposition::kShed] +
                counts[RequestDisposition::kFull] +
                counts[RequestDisposition::kDegraded],
            kBatch);
}

TEST_F(ServiceLifecycleTest, ExpiredBudgetResolvesWithoutRunning) {
  ServiceOptions options;
  options.num_workers = 2;
  PersonalizationService service(db_.get(), options);
  QP_ASSERT_OK(service.profiles().Put("julie", MakeProfile(1)));

  PersonalizationRequest request = MakeRequests(1, 19)[0];
  request.deadline_ms = 1e-7;  // Expired by the time anything looks.
  PersonalizationResponse response = service.PersonalizeOne(request);
  EXPECT_EQ(response.disposition, RequestDisposition::kDeadlineExceeded);
  EXPECT_EQ(response.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(response.results.num_rows(), 0u);

  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.requests, 1u);
  EXPECT_EQ(stats.deadline_exceeded, 1u);
  // The pipeline never ran: no selection or execution time was spent.
  EXPECT_EQ(stats.cache_hits + stats.cache_misses + stats.cache_bypasses, 0u);
}

TEST_F(ServiceLifecycleTest, ContextLatencyBudgetActsAsDeadline) {
  ServiceOptions options;
  options.num_workers = 1;
  PersonalizationService service(db_.get(), options);
  QP_ASSERT_OK(service.profiles().Put("julie", MakeProfile(1)));

  // No explicit deadline_ms: the context's desired response time is the
  // budget. An absurdly tight one expires before the run starts.
  PersonalizationRequest request = MakeRequests(1, 23)[0];
  QueryContext context;
  context.device = QueryContext::Device::kPhone;
  context.max_latency_ms = 1e-7;
  request.context = context;
  PersonalizationResponse response = service.PersonalizeOne(request);
  EXPECT_EQ(response.disposition, RequestDisposition::kDeadlineExceeded);

  // A relaxed context runs fully, with the phone's derived K (at most 3
  // preferences selected).
  context.max_latency_ms = 60000.0;
  request.context = context;
  response = service.PersonalizeOne(request);
  EXPECT_EQ(response.disposition, RequestDisposition::kFull);
  EXPECT_TRUE(response.status.ok()) << response.status;
  EXPECT_LE(response.outcome.selected.size(), 3u);
}

TEST_F(ServiceLifecycleTest, QueuePressureStepsKDown) {
  // One worker, degradation watermark at depth 1: while the worker chews
  // a request, everything queued behind it runs with K halved (8 -> 4).
  QP_ASSERT_OK_AND_ASSIGN(Database paper_db, BuildPaperDatabase());
  ServiceOptions options;
  options.num_workers = 1;
  options.degrade_queue_depth = 1;
  options.cache_capacity = 0;  // Every request runs a real selection.
  PersonalizationService service(&paper_db, options);
  QP_ASSERT_OK(service.profiles().Put("julie", JulieProfile()));

  constexpr size_t kBatch = 12;
  std::vector<PersonalizationRequest> requests;
  for (size_t i = 0; i < kBatch; ++i) {
    PersonalizationRequest request;
    request.user_id = "julie";
    request.query = TonightQuery();
    request.options.criterion = InterestCriterion::TopCount(8);
    requests.push_back(std::move(request));
  }
  auto responses = service.PersonalizeBatchAndWait(requests);
  auto counts = Account(responses);

  // Julie has 9 related preferences, so a full run selects exactly 8 and
  // a stepped-down run at most 4 — the two modes are distinguishable.
  size_t degraded = 0;
  for (const PersonalizationResponse& response : responses) {
    ASSERT_TRUE(response.status.ok()) << response.status;
    if (response.disposition == RequestDisposition::kDegraded) {
      ++degraded;
      EXPECT_LE(response.outcome.selected.size(), 4u);
    } else {
      EXPECT_EQ(response.outcome.selected.size(), 8u);
    }
  }
  // The worker cannot outrun the submit loop for the whole batch: at
  // least one request must have seen a backlog and stepped down.
  EXPECT_GE(degraded, 1u);
  EXPECT_EQ(counts[RequestDisposition::kDegraded], degraded);
  EXPECT_EQ(service.stats().degraded, degraded);
}

TEST_F(ServiceLifecycleTest, OverloadAccountingAcceptance) {
  // The acceptance scenario: batch of 4x-plus the worker count, tight
  // deadlines on half the requests, a small queue bound. Every response
  // must land in exactly one disposition bucket, the queue must never
  // exceed its bound, and no past-deadline request may produce a full
  // answer.
  ServiceOptions options;
  options.num_workers = 2;
  options.max_queue_depth = 4;
  options.degrade_queue_depth = 2;
  PersonalizationService service(db_.get(), options);
  QP_ASSERT_OK(service.profiles().Put("julie", MakeProfile(1)));
  QP_ASSERT_OK(service.profiles().Put("rob", MakeProfile(2)));

  constexpr size_t kBatch = 40;  // 20x the worker count.
  std::vector<PersonalizationRequest> requests = MakeRequests(kBatch, 29);
  for (size_t i = 0; i < kBatch; ++i) {
    requests[i].user_id = (i % 2 == 0) ? "julie" : "rob";
    if (i % 2 == 1) {
      requests[i].deadline_ms = 1e-6;  // Expired before any work starts.
    }
  }

  auto responses = service.PersonalizeBatchAndWait(requests);
  ASSERT_EQ(responses.size(), kBatch);
  auto counts = Account(responses);

  // Exhaustive accounting: the four buckets partition the batch.
  EXPECT_EQ(counts[RequestDisposition::kFull] +
                counts[RequestDisposition::kDegraded] +
                counts[RequestDisposition::kShed] +
                counts[RequestDisposition::kDeadlineExceeded],
            kBatch);

  // No past-deadline request ran the full pipeline: each tight-deadline
  // request was shed at admission, expired in the queue, or (at most)
  // stopped cooperatively mid-run — never disposition full.
  for (size_t i = 1; i < kBatch; i += 2) {
    EXPECT_NE(responses[i].disposition, RequestDisposition::kFull)
        << "request " << i << " ignored its expired deadline";
  }

  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.requests, kBatch);
  EXPECT_EQ(stats.shed, counts[RequestDisposition::kShed]);
  EXPECT_EQ(stats.deadline_exceeded,
            counts[RequestDisposition::kDeadlineExceeded]);
  EXPECT_EQ(stats.degraded, counts[RequestDisposition::kDegraded]);
  EXPECT_EQ(stats.errors, 0u);
  // The sampled backlog never exceeded the admission bound.
  EXPECT_LE(stats.max_queue_depth, options.max_queue_depth);

  // The sum rule documented on ServiceStats: full completions are the
  // remainder.
  EXPECT_EQ(stats.requests - stats.errors - stats.shed -
                stats.deadline_exceeded - stats.degraded,
            counts[RequestDisposition::kFull]);
}

TEST_F(ServiceLifecycleTest, RepeatedOverloadRoundsStayAccounted) {
  // Several rounds against the same service: counters accumulate and the
  // accounting identity holds at every step (catches lost decrements in
  // the admission counters — a leak would eventually shed everything).
  ServiceOptions options;
  options.num_workers = 2;
  options.max_queue_depth = 3;
  options.max_inflight = 6;
  PersonalizationService service(db_.get(), options);
  QP_ASSERT_OK(service.profiles().Put("julie", MakeProfile(1)));

  size_t total = 0;
  for (int round = 0; round < 4; ++round) {
    constexpr size_t kBatch = 16;
    auto responses =
        service.PersonalizeBatchAndWait(MakeRequests(kBatch, 31 + round));
    Account(responses);
    total += kBatch;

    ServiceStats stats = service.stats();
    EXPECT_EQ(stats.requests, total);
    EXPECT_LE(stats.max_queue_depth, options.max_queue_depth);
  }
  // After the storms, admission slots must all have been released: a
  // full batch of fresh requests is admitted and completes.
  auto calm = service.PersonalizeBatchAndWait(MakeRequests(3, 97));
  for (const PersonalizationResponse& response : calm) {
    EXPECT_TRUE(response.disposition == RequestDisposition::kFull ||
                response.disposition == RequestDisposition::kDegraded)
        << ToString(response.disposition);
  }
}

}  // namespace
}  // namespace qp
