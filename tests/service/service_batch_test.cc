// PersonalizationService end-to-end tests: batch results must be
// bit-identical to a serial Personalizer baseline for every (user,
// query) pair, across worker counts and repeated rounds (the thread-pool
// stress of the concurrency suite), with the cache both cold and warm.

#include <string>
#include <vector>

#include "common/test_util.h"
#include "gtest/gtest.h"
#include "qp/core/personalizer.h"
#include "qp/data/movie_db.h"
#include "qp/data/paper_example.h"
#include "qp/data/workload.h"
#include "qp/pref/profile_generator.h"
#include "qp/service/service.h"

namespace qp {
namespace {

class ServiceBatchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MovieDbConfig config;
    config.num_movies = 300;
    config.num_actors = 150;
    config.num_directors = 40;
    config.num_theatres = 8;
    config.num_days = 4;
    config.seed = 20040308;
    QP_ASSERT_OK_AND_ASSIGN(Database db, GenerateMovieDatabase(config));
    db_ = std::make_unique<Database>(std::move(db));
    QP_ASSERT_OK_AND_ASSIGN(auto pools, MovieCandidatePools(*db_));
    generator_ = std::make_unique<ProfileGenerator>(&db_->schema(),
                                                    std::move(pools));
  }

  UserProfile MakeProfile(uint64_t seed, size_t num_selections = 30) {
    Rng rng(seed);
    ProfileGeneratorOptions options;
    options.num_selections = num_selections;
    auto profile = generator_->Generate(options, &rng);
    EXPECT_TRUE(profile.ok()) << profile.status();
    return std::move(profile).value();
  }

  std::unique_ptr<Database> db_;
  std::unique_ptr<ProfileGenerator> generator_;
};

/// The serial ground truth for one request.
Result<ResultSet> SerialBaseline(const Database& db,
                                 const PersonalizationGraph& graph,
                                 const PersonalizationRequest& request) {
  Personalizer personalizer(&graph);
  return personalizer.PersonalizeAndExecute(request.query, request.options,
                                            db);
}

TEST_F(ServiceBatchTest, BatchMatchesSerialBaselineAcrossWorkerCounts) {
  constexpr size_t kUsers = 4;
  constexpr size_t kQueries = 6;

  // Shared request set over several users and queries.
  WorkloadGenerator workload(db_.get(), 7);
  QP_ASSERT_OK_AND_ASSIGN(std::vector<SelectQuery> queries,
                          workload.RandomQueries(kQueries));
  std::vector<UserProfile> profiles;
  for (size_t u = 0; u < kUsers; ++u) profiles.push_back(MakeProfile(u + 1));

  std::vector<PersonalizationRequest> requests;
  for (size_t u = 0; u < kUsers; ++u) {
    for (const SelectQuery& query : queries) {
      PersonalizationRequest request;
      request.user_id = "user" + std::to_string(u);
      request.query = query;
      request.options.criterion = InterestCriterion::TopCount(4);
      requests.push_back(std::move(request));
    }
  }

  // Serial baseline, straight through the Personalizer.
  std::vector<std::string> expected;
  for (const PersonalizationRequest& request : requests) {
    size_t u = static_cast<size_t>(request.user_id.back() - '0');
    QP_ASSERT_OK_AND_ASSIGN(
        PersonalizationGraph graph,
        PersonalizationGraph::Build(&db_->schema(), profiles[u]));
    QP_ASSERT_OK_AND_ASSIGN(ResultSet result,
                            SerialBaseline(*db_, graph, request));
    expected.push_back(result.DebugString(1000));
  }

  for (size_t workers : {1u, 2u, 4u}) {
    ServiceOptions options;
    options.num_workers = workers;
    PersonalizationService service(db_.get(), options);
    for (size_t u = 0; u < kUsers; ++u) {
      QP_ASSERT_OK(
          service.profiles().Put("user" + std::to_string(u), profiles[u]));
    }
    // Two rounds: cold cache, then warm (every selection a hit).
    for (int round = 0; round < 2; ++round) {
      std::vector<PersonalizationResponse> responses =
          service.PersonalizeBatchAndWait(requests);
      ASSERT_EQ(responses.size(), requests.size());
      for (size_t i = 0; i < responses.size(); ++i) {
        ASSERT_TRUE(responses[i].status.ok())
            << workers << " workers, request " << i << ": "
            << responses[i].status;
        EXPECT_EQ(responses[i].results.DebugString(1000), expected[i])
            << workers << " workers, round " << round << ", request " << i;
        EXPECT_EQ(responses[i].cache_hit, round == 1);
      }
    }
    ServiceStats stats = service.stats();
    EXPECT_EQ(stats.requests, 2 * requests.size());
    EXPECT_EQ(stats.cache_hits, requests.size());
    EXPECT_EQ(stats.cache_misses, requests.size());
    EXPECT_EQ(stats.errors, 0u);
  }
}

TEST_F(ServiceBatchTest, UnknownUserAndBadQuerySurfacePerResponse) {
  PersonalizationService service(db_.get(), ServiceOptions{.num_workers = 2});
  QP_ASSERT_OK(service.profiles().Put("julie", MakeProfile(42)));

  WorkloadGenerator workload(db_.get(), 3);
  QP_ASSERT_OK_AND_ASSIGN(std::vector<SelectQuery> queries,
                          workload.RandomQueries(1));

  PersonalizationRequest good;
  good.user_id = "julie";
  good.query = queries[0];

  PersonalizationRequest unknown = good;
  unknown.user_id = "nobody";

  PersonalizationRequest bad = good;
  SelectQuery broken;
  QP_ASSERT_OK(broken.AddVariable("X", "NO_SUCH_TABLE"));
  broken.AddProjection("X", "nope");
  bad.query = broken;

  std::vector<PersonalizationResponse> responses =
      service.PersonalizeBatchAndWait({good, unknown, bad});
  EXPECT_TRUE(responses[0].status.ok());
  EXPECT_FALSE(responses[1].status.ok());
  EXPECT_FALSE(responses[2].status.ok());
  EXPECT_EQ(service.stats().errors, 2u);
}

TEST_F(ServiceBatchTest, ProfileMutationInvalidatesCachedSelections) {
  PersonalizationService service(db_.get(), ServiceOptions{.num_workers = 2});
  QP_ASSERT_OK(service.profiles().Put("julie", MakeProfile(1)));

  WorkloadGenerator workload(db_.get(), 11);
  QP_ASSERT_OK_AND_ASSIGN(std::vector<SelectQuery> queries,
                          workload.RandomQueries(1));
  PersonalizationRequest request;
  request.user_id = "julie";
  request.query = queries[0];
  request.execute = false;

  PersonalizationResponse first = service.PersonalizeOne(request);
  QP_ASSERT_OK(first.status);
  EXPECT_FALSE(first.cache_hit);
  PersonalizationResponse second = service.PersonalizeOne(request);
  QP_ASSERT_OK(second.status);
  EXPECT_TRUE(second.cache_hit);

  // Swap in a different profile: the cached selection must not be served.
  QP_ASSERT_OK(service.profiles().Put("julie", MakeProfile(2)));
  PersonalizationResponse third = service.PersonalizeOne(request);
  QP_ASSERT_OK(third.status);
  EXPECT_FALSE(third.cache_hit);

  // And the fresh selection must match a from-scratch baseline.
  QP_ASSERT_OK_AND_ASSIGN(ProfileSnapshot snapshot,
                          service.profiles().Get("julie"));
  Personalizer personalizer(snapshot.graph.get());
  QP_ASSERT_OK_AND_ASSIGN(
      PersonalizationOutcome baseline,
      personalizer.Personalize(request.query, request.options));
  ASSERT_EQ(third.outcome.selected.size(), baseline.selected.size());
  for (size_t i = 0; i < baseline.selected.size(); ++i) {
    EXPECT_TRUE(third.outcome.selected[i].SameShape(baseline.selected[i]));
  }
}

TEST_F(ServiceBatchTest, PaperExampleThroughTheService) {
  // The paper's worked example survives the service path: Julie's top
  // preferences personalize the "tonight" query identically to the
  // direct pipeline (which the end-to-end test pins to the paper).
  QP_ASSERT_OK_AND_ASSIGN(Database paper_db, BuildPaperDatabase());
  PersonalizationService service(&paper_db,
                                 ServiceOptions{.num_workers = 2});
  QP_ASSERT_OK(service.profiles().Put("julie", JulieProfile()));

  PersonalizationRequest request;
  request.user_id = "julie";
  request.query = TonightQuery();
  request.options.criterion = InterestCriterion::TopCount(3);

  PersonalizationResponse response = service.PersonalizeOne(request);
  QP_ASSERT_OK(response.status);
  ASSERT_EQ(response.outcome.selected.size(), 3u);
  EXPECT_NEAR(response.outcome.selected[0].doi(), 0.81, 1e-9);
  EXPECT_NEAR(response.outcome.selected[1].doi(), 0.8, 1e-9);
  EXPECT_NEAR(response.outcome.selected[2].doi(), 0.72, 1e-9);
  EXPECT_GT(response.results.num_rows(), 0u);
}

}  // namespace
}  // namespace qp
