// Property test for the selection cache: across randomized profiles,
// queries and interest criteria, a cache-served selection must be
// bit-identical to an uncached PreferenceSelector::Select run — same
// paths, same order, same degrees — and the downstream rewritten SQL
// must match exactly. Catches stale-cache and key-collision bugs.

#include <string>
#include <vector>

#include "common/test_util.h"
#include "gtest/gtest.h"
#include "qp/core/selection.h"
#include "qp/data/movie_db.h"
#include "qp/data/workload.h"
#include "qp/pref/profile_generator.h"
#include "qp/query/sql_writer.h"
#include "qp/service/service.h"
#include "qp/util/random.h"

namespace qp {
namespace {

InterestCriterion RandomCriterion(Rng* rng) {
  switch (rng->Below(4)) {
    case 0:
      return InterestCriterion::TopCount(1 + rng->Below(8));
    case 1:
      return InterestCriterion::MinDegree(rng->NextDouble());
    case 2:
      return InterestCriterion::DisjunctiveAbove(rng->NextDouble() * 0.8);
    default:
      return InterestCriterion::ConjunctiveUntil(rng->NextDouble());
  }
}

/// Bit-identical path lists: same length, same anchor/edges/degrees in
/// the same order. SameShape compares edge sequences including degrees;
/// doi() equality is exact (==), not approximate.
void ExpectIdenticalPaths(const std::vector<PreferencePath>& a,
                          const std::vector<PreferencePath>& b,
                          size_t trial) {
  ASSERT_EQ(a.size(), b.size()) << "trial " << trial;
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(a[i].SameShape(b[i]))
        << "trial " << trial << " path " << i << ": " << a[i].ToString()
        << " vs " << b[i].ToString();
    EXPECT_EQ(a[i].doi(), b[i].doi()) << "trial " << trial << " path " << i;
  }
}

TEST(SelectionCachePropertyTest, CachedEqualsUncachedOverRandomizedTrials) {
  MovieDbConfig config;
  config.num_movies = 200;
  config.num_actors = 100;
  config.num_directors = 30;
  config.num_theatres = 6;
  config.num_days = 3;
  config.seed = 97;
  QP_ASSERT_OK_AND_ASSIGN(Database db, GenerateMovieDatabase(config));
  QP_ASSERT_OK_AND_ASSIGN(auto pools, MovieCandidatePools(db));
  ProfileGenerator generator(&db.schema(), std::move(pools));
  WorkloadGenerator workload(&db, 4242);

  PersonalizationService service(&db, ServiceOptions{.num_workers = 2});

  constexpr size_t kTrials = 1000;
  Rng rng(20040307);
  size_t nonempty = 0;
  for (size_t trial = 0; trial < kTrials; ++trial) {
    // Fresh random profile for a fresh user every trial.
    ProfileGeneratorOptions profile_options;
    profile_options.num_selections = 5 + rng.Below(30);
    profile_options.negative_fraction = 0.1;
    QP_ASSERT_OK_AND_ASSIGN(UserProfile profile,
                            generator.Generate(profile_options, &rng));
    std::string user = "user" + std::to_string(trial);
    QP_ASSERT_OK(service.profiles().Put(user, profile));

    PersonalizationRequest request;
    request.user_id = user;
    QP_ASSERT_OK_AND_ASSIGN(request.query, workload.RandomQuery());
    request.options.criterion = RandomCriterion(&rng);
    request.execute = false;

    // Uncached ground truth over the same snapshot.
    QP_ASSERT_OK_AND_ASSIGN(ProfileSnapshot snapshot,
                            service.profiles().Get(user));
    PreferenceSelector selector(snapshot.graph.get());
    QP_ASSERT_OK_AND_ASSIGN(
        std::vector<PreferencePath> uncached,
        selector.Select(request.query, request.options.criterion));

    // First service call misses and fills; second must hit and agree.
    PersonalizationResponse miss = service.PersonalizeOne(request);
    QP_ASSERT_OK(miss.status);
    ASSERT_FALSE(miss.cache_hit) << "trial " << trial;
    PersonalizationResponse hit = service.PersonalizeOne(request);
    QP_ASSERT_OK(hit.status);
    ASSERT_TRUE(hit.cache_hit) << "trial " << trial;

    ExpectIdenticalPaths(miss.outcome.selected, uncached, trial);
    ExpectIdenticalPaths(hit.outcome.selected, uncached, trial);
    if (!uncached.empty()) ++nonempty;

    // The rewrite built from the cached selection is the same SQL.
    ASSERT_EQ(miss.outcome.mq.has_value(), hit.outcome.mq.has_value());
    if (miss.outcome.mq.has_value()) {
      EXPECT_EQ(ToSql(*miss.outcome.mq), ToSql(*hit.outcome.mq))
          << "trial " << trial;
    }
  }
  // The trials must actually exercise selection, not vacuous empties.
  EXPECT_GT(nonempty, kTrials / 4);

  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.cache_hits, kTrials);
  EXPECT_EQ(stats.cache_misses, kTrials);
  EXPECT_EQ(stats.errors, 0u);
}

}  // namespace
}  // namespace qp
