#include "qp/util/random.h"

#include <algorithm>
#include <set>
#include <vector>

#include "gtest/gtest.h"

namespace qp {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int differences = 0;
  for (int i = 0; i < 20; ++i) {
    if (a.Next() != b.Next()) ++differences;
  }
  EXPECT_GT(differences, 15);
}

TEST(RngTest, BelowStaysInBounds) {
  Rng rng(7);
  for (uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.Below(bound), bound);
    }
  }
}

TEST(RngTest, BelowOneIsAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(rng.Below(1), 0u);
}

TEST(RngTest, BelowCoversAllResidues) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.Below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, RangeInclusive) {
  Rng rng(13);
  std::set<int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    int64_t v = rng.Range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(17);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, NextDoubleRoughlyUniform) {
  Rng rng(19);
  int below_half = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    if (rng.NextDouble() < 0.5) ++below_half;
  }
  EXPECT_NEAR(below_half, n / 2, n / 20);
}

TEST(RngTest, BernoulliEdges) {
  Rng rng(21);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(23);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  std::vector<int> shuffled = v;
  rng.Shuffle(&shuffled);
  std::vector<int> sorted = shuffled;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, v);
}

TEST(ZipfTest, UniformWhenThetaZero) {
  ZipfDistribution zipf(4, 0.0);
  Rng rng(29);
  std::vector<int> counts(4, 0);
  const int n = 20000;
  for (int i = 0; i < n; ++i) ++counts[zipf.Sample(&rng)];
  for (int c : counts) EXPECT_NEAR(c, n / 4, n / 20);
}

TEST(ZipfTest, SkewFavorsLowRanks) {
  ZipfDistribution zipf(10, 1.0);
  Rng rng(31);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 20000; ++i) ++counts[zipf.Sample(&rng)];
  EXPECT_GT(counts[0], counts[4]);
  EXPECT_GT(counts[4], counts[9]);
}

TEST(ZipfTest, SamplesInRange) {
  ZipfDistribution zipf(5, 0.8);
  Rng rng(37);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(zipf.Sample(&rng), 5u);
}

TEST(ZipfTest, SingleElement) {
  ZipfDistribution zipf(1, 0.8);
  Rng rng(41);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(zipf.Sample(&rng), 0u);
}

}  // namespace
}  // namespace qp
