#include "qp/util/fault_hub.h"

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace qp {
namespace {

/// Every test arms/resets the process-global hub, so each uses the
/// ScopedFaultInjection RAII guard to guarantee no schedule leaks.

TEST(FaultHubTest, DisarmedNeverFires) {
  FaultHub* hub = FaultHub::Global();
  hub->Reset();
  FaultRule always;
  always.probability = 1.0;
  hub->SetRule("t.disarmed", always);  // Rule present but hub not armed.
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(hub->Evaluate("t.disarmed").fire);
    EXPECT_TRUE(hub->Check("t.disarmed").ok());
  }
  EXPECT_EQ(hub->total_fires(), 0u);
  // Disarmed evaluation does not even count calls (single-load fast path).
  EXPECT_EQ(hub->calls("t.disarmed"), 0u);
  hub->Reset();
}

TEST(FaultHubTest, FireOnNthFiresExactlyOnce) {
  ScopedFaultInjection chaos(1);
  FaultRule rule;
  rule.fire_on_nth = 3;
  FaultHub::Global()->SetRule("t.nth", rule);
  std::vector<bool> fired;
  for (int i = 0; i < 6; ++i) {
    fired.push_back(FaultHub::Global()->Evaluate("t.nth").fire);
  }
  EXPECT_EQ(fired, std::vector<bool>({false, false, true, false, false,
                                      false}));
  EXPECT_EQ(FaultHub::Global()->calls("t.nth"), 6u);
  EXPECT_EQ(FaultHub::Global()->fires("t.nth"), 1u);
}

TEST(FaultHubTest, FireEveryFiresPeriodically) {
  ScopedFaultInjection chaos(1);
  FaultRule rule;
  rule.fire_every = 4;
  FaultHub::Global()->SetRule("t.every", rule);
  int fires = 0;
  for (int i = 1; i <= 12; ++i) {
    bool fire = FaultHub::Global()->Evaluate("t.every").fire;
    EXPECT_EQ(fire, i % 4 == 0) << "call " << i;
    fires += fire;
  }
  EXPECT_EQ(fires, 3);
}

TEST(FaultHubTest, MaxFiresCapsTheSchedule) {
  ScopedFaultInjection chaos(1);
  FaultRule rule;
  rule.probability = 1.0;
  rule.max_fires = 2;
  FaultHub::Global()->SetRule("t.capped", rule);
  int fires = 0;
  for (int i = 0; i < 50; ++i) {
    fires += FaultHub::Global()->Evaluate("t.capped").fire;
  }
  EXPECT_EQ(fires, 2);
}

TEST(FaultHubTest, SameSeedSameSchedule) {
  FaultRule rule;
  rule.probability = 0.3;
  std::vector<bool> first;
  {
    ScopedFaultInjection chaos(42);
    FaultHub::Global()->SetRule("t.repro", rule);
    for (int i = 0; i < 200; ++i) {
      first.push_back(FaultHub::Global()->Evaluate("t.repro").fire);
    }
  }
  std::vector<bool> second;
  {
    ScopedFaultInjection chaos(42);
    FaultHub::Global()->SetRule("t.repro", rule);
    for (int i = 0; i < 200; ++i) {
      second.push_back(FaultHub::Global()->Evaluate("t.repro").fire);
    }
  }
  EXPECT_EQ(first, second);
}

TEST(FaultHubTest, DifferentSeedsDiverge) {
  FaultRule rule;
  rule.probability = 0.5;
  auto run = [&](uint64_t seed) {
    ScopedFaultInjection chaos(seed);
    FaultHub::Global()->SetRule("t.diverge", rule);
    std::vector<bool> fired;
    for (int i = 0; i < 200; ++i) {
      fired.push_back(FaultHub::Global()->Evaluate("t.diverge").fire);
    }
    return fired;
  };
  EXPECT_NE(run(1), run(2));
}

TEST(FaultHubTest, SitesAreIndependentStreams) {
  // Interleaving calls to a second site must not shift the first site's
  // schedule: decisions are pure hashes of (seed, site, index).
  FaultRule rule;
  rule.probability = 0.4;
  std::vector<bool> alone;
  {
    ScopedFaultInjection chaos(7);
    FaultHub::Global()->SetRule("t.a", rule);
    for (int i = 0; i < 100; ++i) {
      alone.push_back(FaultHub::Global()->Evaluate("t.a").fire);
    }
  }
  std::vector<bool> interleaved;
  {
    ScopedFaultInjection chaos(7);
    FaultHub::Global()->SetRule("t.a", rule);
    FaultHub::Global()->SetRule("t.b", rule);
    for (int i = 0; i < 100; ++i) {
      interleaved.push_back(FaultHub::Global()->Evaluate("t.a").fire);
      FaultHub::Global()->Evaluate("t.b");
      FaultHub::Global()->Evaluate("t.b");
    }
  }
  EXPECT_EQ(alone, interleaved);
}

TEST(FaultHubTest, ProbabilityIsRoughlyHonored) {
  ScopedFaultInjection chaos(99);
  FaultRule rule;
  rule.probability = 0.2;
  FaultHub::Global()->SetRule("t.prob", rule);
  int fires = 0;
  const int kCalls = 5000;
  for (int i = 0; i < kCalls; ++i) {
    fires += FaultHub::Global()->Evaluate("t.prob").fire;
  }
  // 0.2 * 5000 = 1000 expected; a generous +/-20% band keeps this
  // deterministic test far from flaking while still catching a broken
  // hash-to-uniform mapping.
  EXPECT_GT(fires, 800);
  EXPECT_LT(fires, 1200);
}

TEST(FaultHubTest, CheckMapsModesToStatuses) {
  ScopedFaultInjection chaos(1);
  FaultRule error;
  error.fire_on_nth = 1;
  error.mode = FaultMode::kError;
  error.error_code = StatusCode::kDeadlineExceeded;
  FaultHub::Global()->SetRule("t.err", error);
  Status status = FaultHub::Global()->Check("t.err");
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(status.message().find("t.err"), std::string::npos);
  EXPECT_TRUE(FaultHub::Global()->Check("t.err").ok());  // Call 2: clean.

  FaultRule delay;
  delay.fire_on_nth = 1;
  delay.mode = FaultMode::kDelay;
  delay.delay = std::chrono::microseconds(100);
  FaultHub::Global()->SetRule("t.delay", delay);
  // A delay fault stalls but still succeeds.
  EXPECT_TRUE(FaultHub::Global()->Check("t.delay").ok());

  FaultRule partial;
  partial.fire_on_nth = 1;
  partial.mode = FaultMode::kPartial;
  FaultHub::Global()->SetRule("t.partial", partial);
  // Check() has no partial semantics: degenerates to an error.
  EXPECT_FALSE(FaultHub::Global()->Check("t.partial").ok());
}

TEST(FaultHubTest, ArmRandomIsDeterministicPerSeed) {
  const std::vector<std::string>& sites = FaultHub::KnownSites();
  ASSERT_FALSE(sites.empty());
  auto run = [&](uint64_t seed) {
    FaultHub::Global()->Reset();
    FaultHub::Global()->ArmRandom(seed, sites);
    std::vector<bool> fired;
    for (int i = 0; i < 50; ++i) {
      for (const std::string& site : sites) {
        fired.push_back(FaultHub::Global()->Evaluate(site).fire);
      }
    }
    FaultHub::Global()->Reset();
    return fired;
  };
  EXPECT_EQ(run(1234), run(1234));
  EXPECT_NE(run(1234), run(1235));
}

TEST(FaultHubTest, ScopedInjectionResetsEverything) {
  {
    ScopedFaultInjection chaos(5);
    FaultRule rule;
    rule.probability = 1.0;
    FaultHub::Global()->SetRule("t.scoped", rule);
    EXPECT_TRUE(FaultHub::Global()->Evaluate("t.scoped").fire);
  }
  EXPECT_FALSE(FaultHub::Global()->armed());
  EXPECT_EQ(FaultHub::Global()->total_fires(), 0u);
  EXPECT_FALSE(FaultHub::Global()->Evaluate("t.scoped").fire);
}

TEST(FaultHubTest, ConcurrentEvaluationIsSafeAndCounted) {
  ScopedFaultInjection chaos(11);
  FaultRule rule;
  rule.probability = 0.5;
  rule.max_fires = 64;
  FaultHub::Global()->SetRule("t.mt", rule);
  constexpr int kThreads = 8;
  constexpr int kCallsPerThread = 500;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kCallsPerThread; ++i) {
        FaultHub::Global()->Evaluate("t.mt");
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(FaultHub::Global()->calls("t.mt"),
            static_cast<uint64_t>(kThreads) * kCallsPerThread);
  // max_fires is a hard cap even under contention (reserve-or-rollback).
  EXPECT_LE(FaultHub::Global()->fires("t.mt"), 64u);
}

TEST(FaultHubTest, SummaryNamesArmedSites) {
  ScopedFaultInjection chaos(3);
  FaultRule rule;
  rule.fire_on_nth = 1;
  FaultHub::Global()->SetRule("t.summary", rule);
  FaultHub::Global()->Evaluate("t.summary");
  std::string summary = FaultHub::Global()->Summary();
  EXPECT_NE(summary.find("t.summary"), std::string::npos);
}

}  // namespace
}  // namespace qp
