#include "qp/util/status.h"

#include <sstream>

#include "gtest/gtest.h"

namespace qp {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoriesCarryCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("bad").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::ParseError("x").code(), StatusCode::kParseError);
  EXPECT_EQ(Status::NotFound("missing table").message(), "missing table");
}

TEST(StatusTest, ToStringIncludesCodeName) {
  EXPECT_EQ(Status::NotFound("t").ToString(), "not_found: t");
  EXPECT_EQ(Status::ParseError("p").ToString(), "parse_error: p");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusTest, StreamOperator) {
  std::ostringstream os;
  os << Status::Internal("boom");
  EXPECT_EQ(os.str(), "internal: boom");
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "ok");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInvalidArgument),
               "invalid_argument");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "payload");
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r = std::string("abc");
  EXPECT_EQ(r->size(), 3u);
}

namespace {

Status FailIf(bool fail) {
  if (fail) return Status::Internal("requested failure");
  return Status::Ok();
}

Status UsesReturnIfError(bool fail) {
  QP_RETURN_IF_ERROR(FailIf(fail));
  return Status::Ok();
}

Result<int> ProduceInt(bool fail) {
  if (fail) return Status::NotFound("no int");
  return 7;
}

Result<int> UsesAssignOrReturn(bool fail) {
  QP_ASSIGN_OR_RETURN(int v, ProduceInt(fail));
  return v + 1;
}

}  // namespace

TEST(StatusMacrosTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(UsesReturnIfError(false).ok());
  EXPECT_EQ(UsesReturnIfError(true).code(), StatusCode::kInternal);
}

TEST(StatusMacrosTest, AssignOrReturnPropagates) {
  Result<int> ok = UsesAssignOrReturn(false);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 8);
  Result<int> err = UsesAssignOrReturn(true);
  EXPECT_EQ(err.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace qp
