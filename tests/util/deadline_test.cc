#include "qp/util/deadline.h"

#include <cmath>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace qp {
namespace {

TEST(DeadlineTest, DefaultIsInfinite) {
  Deadline deadline;
  EXPECT_TRUE(deadline.is_infinite());
  EXPECT_FALSE(deadline.expired());
  EXPECT_TRUE(std::isinf(deadline.remaining_millis()));

  Deadline infinite = Deadline::Infinite();
  EXPECT_TRUE(infinite.is_infinite());
  EXPECT_FALSE(infinite.expired());
}

TEST(DeadlineTest, ZeroAndNegativeBudgetsAreAlreadyExpired) {
  EXPECT_TRUE(Deadline::AfterMillis(0).expired());
  EXPECT_TRUE(Deadline::AfterMillis(-5).expired());
  EXPECT_DOUBLE_EQ(Deadline::AfterMillis(0).remaining_millis(), 0.0);
}

TEST(DeadlineTest, FutureDeadlineExpiresAfterItsBudget) {
  Deadline deadline = Deadline::AfterMillis(5);
  EXPECT_FALSE(deadline.is_infinite());
  EXPECT_GT(deadline.remaining_millis(), 0.0);
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_TRUE(deadline.expired());
  EXPECT_DOUBLE_EQ(deadline.remaining_millis(), 0.0);
}

TEST(DeadlineTest, RemainingIsBoundedByTheBudget) {
  Deadline deadline = Deadline::AfterMillis(10000);
  EXPECT_FALSE(deadline.expired());
  EXPECT_LE(deadline.remaining_millis(), 10000.0);
}

TEST(CancelTokenTest, DefaultNeverStops) {
  CancelToken token;
  for (int i = 0; i < 1000; ++i) EXPECT_FALSE(token.ShouldStop());
  EXPECT_FALSE(token.cancelled());
}

TEST(CancelTokenTest, CancelIsSticky) {
  CancelToken token;
  EXPECT_FALSE(token.ShouldStop());
  token.Cancel();
  EXPECT_TRUE(token.cancelled());
  EXPECT_TRUE(token.ShouldStop());
  EXPECT_TRUE(token.ShouldStop());
}

TEST(CancelTokenTest, ExpiredDeadlineStops) {
  CancelToken token(Deadline::AfterMillis(0));
  EXPECT_TRUE(token.ShouldStop());
  // The deadline tripping does not set the explicit cancel flag.
  CancelToken fresh(Deadline::AfterMillis(60000));
  EXPECT_FALSE(fresh.ShouldStop());
}

TEST(CancelTokenTest, PollBudgetTripsAfterExactlyNPolls) {
  CancelToken token;
  token.set_poll_budget(5);
  for (int i = 0; i < 5; ++i) {
    EXPECT_FALSE(token.ShouldStop()) << "poll " << i;
  }
  EXPECT_TRUE(token.ShouldStop());
  // Exhaustion is sticky: the flag stays tripped even though the counter
  // keeps decrementing past zero.
  EXPECT_TRUE(token.cancelled());
  EXPECT_TRUE(token.ShouldStop());
}

TEST(CancelTokenTest, NegativeBudgetDisablesTheBudget) {
  CancelToken token;
  token.set_poll_budget(3);
  EXPECT_FALSE(token.ShouldStop());
  token.set_poll_budget(-1);
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(token.ShouldStop());
}

TEST(CancelTokenTest, CancelFromAnotherThreadIsObserved) {
  CancelToken token;
  std::atomic<bool> observed{false};
  std::thread poller([&] {
    while (!token.ShouldStop()) std::this_thread::yield();
    observed.store(true);
  });
  token.Cancel();
  poller.join();
  EXPECT_TRUE(observed.load());
}

TEST(CancelTokenTest, ConcurrentPollersAllObserveTheTrip) {
  // Budget exhaustion from many threads: every poller must terminate
  // (the trip is sticky), regardless of who consumed the last unit.
  CancelToken token;
  token.set_poll_budget(1000);
  std::vector<std::thread> pollers;
  std::atomic<int> done{0};
  for (int t = 0; t < 4; ++t) {
    pollers.emplace_back([&] {
      while (!token.ShouldStop()) {
      }
      done.fetch_add(1);
    });
  }
  for (auto& thread : pollers) thread.join();
  EXPECT_EQ(done.load(), 4);
  EXPECT_TRUE(token.cancelled());
}

}  // namespace
}  // namespace qp
