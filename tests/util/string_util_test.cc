#include "qp/util/string_util.h"

#include "gtest/gtest.h"

namespace qp {
namespace {

TEST(JoinTest, Basic) {
  EXPECT_EQ(Join({}, ", "), "");
  EXPECT_EQ(Join({"a"}, ", "), "a");
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({"x", "y"}, ""), "xy");
}

TEST(SplitTest, Basic) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(SplitTest, RoundTripsWithJoin) {
  std::string original = "one|two|three";
  EXPECT_EQ(Join(Split(original, '|'), "|"), original);
}

TEST(StripWhitespaceTest, Basic) {
  EXPECT_EQ(StripWhitespace("  abc  "), "abc");
  EXPECT_EQ(StripWhitespace("abc"), "abc");
  EXPECT_EQ(StripWhitespace("\t\n abc\r "), "abc");
  EXPECT_EQ(StripWhitespace("   "), "");
  EXPECT_EQ(StripWhitespace(""), "");
}

TEST(ToLowerTest, Basic) {
  EXPECT_EQ(ToLower("SELECT"), "select");
  EXPECT_EQ(ToLower("MiXeD123"), "mixed123");
  EXPECT_EQ(ToLower(""), "");
}

TEST(StartsEndsWithTest, Basic) {
  EXPECT_TRUE(StartsWith("abcdef", "abc"));
  EXPECT_FALSE(StartsWith("abcdef", "bcd"));
  EXPECT_TRUE(StartsWith("abc", ""));
  EXPECT_FALSE(StartsWith("ab", "abc"));
  EXPECT_TRUE(EndsWith("abcdef", "def"));
  EXPECT_FALSE(EndsWith("abcdef", "abc"));
  EXPECT_TRUE(EndsWith("abc", ""));
}

TEST(FormatDoubleTest, TrimsTrailingZeros) {
  EXPECT_EQ(FormatDouble(0.9), "0.9");
  EXPECT_EQ(FormatDouble(1.0), "1");
  EXPECT_EQ(FormatDouble(0.72), "0.72");
  EXPECT_EQ(FormatDouble(0.125), "0.125");
}

TEST(FormatDoubleTest, RespectsPrecision) {
  EXPECT_EQ(FormatDouble(0.123456789, 3), "0.123");
  EXPECT_EQ(FormatDouble(123456.0, 3), "1.23e+05");
}

}  // namespace
}  // namespace qp
