// FakeClock semantics: time moves only under Advance, SleepFor returns
// immediately, and WaitFor never loses the wakeup that Advance sends —
// a notify racing the waiter's evaluate-then-park window must still
// land (the regression here hung deterministic suites).

#include "qp/util/clock.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "gtest/gtest.h"

namespace qp {
namespace {

TEST(FakeClockTest, TimeMovesOnlyUnderAdvance) {
  FakeClock clock(100);
  EXPECT_EQ(clock.NowNanos(), 100);
  clock.Advance(std::chrono::nanoseconds(50));
  EXPECT_EQ(clock.NowNanos(), 150);
  // SleepFor is an Advance: the caller never blocks on wall time.
  clock.SleepFor(std::chrono::nanoseconds(25));
  EXPECT_EQ(clock.NowNanos(), 175);
}

TEST(FakeClockTest, WaitForReturnsWhenPredicateAlreadyHolds) {
  FakeClock clock;
  std::condition_variable cv;
  std::mutex mutex;
  std::unique_lock<std::mutex> lock(mutex);
  EXPECT_TRUE(clock.WaitFor(cv, lock, std::chrono::seconds(1),
                            [] { return true; }));
  EXPECT_TRUE(lock.owns_lock());
}

TEST(FakeClockTest, WaitForWakesOnExternalNotification) {
  FakeClock clock;
  std::condition_variable cv;
  std::mutex mutex;
  bool ready = false;
  std::thread waiter([&] {
    std::unique_lock<std::mutex> lock(mutex);
    EXPECT_TRUE(clock.WaitFor(cv, lock, std::chrono::hours(1),
                              [&] { return ready; }));
  });
  {
    std::lock_guard<std::mutex> lock(mutex);
    ready = true;
  }
  cv.notify_all();
  waiter.join();
  EXPECT_EQ(clock.NowNanos(), 0);
}

TEST(FakeClockTest, AdvanceNeverLosesTheDeadlineWakeup) {
  // The lost-wakeup shape: the waiter evaluates its deadline (not yet
  // reached) and is about to park when Advance pushes time past it. A
  // notify that does not serialize with the waiter's mutex can land in
  // that window and vanish, parking the waiter forever. Many iterations
  // widen the window; a hang here is the failure (ctest timeout).
  FakeClock clock;
  std::condition_variable cv;
  std::mutex mutex;
  for (int i = 0; i < 500; ++i) {
    std::atomic<bool> entered{false};
    std::thread waiter([&] {
      std::unique_lock<std::mutex> lock(mutex);
      entered.store(true, std::memory_order_release);
      EXPECT_FALSE(clock.WaitFor(cv, lock, std::chrono::nanoseconds(10),
                                 [] { return false; }));
      EXPECT_TRUE(lock.owns_lock());
    });
    while (!entered.load(std::memory_order_acquire)) std::this_thread::yield();
    // One shot past the deadline: the waiter must observe it no matter
    // where between evaluation and park it currently is.
    clock.Advance(std::chrono::nanoseconds(20));
    waiter.join();
  }
}

TEST(FakeClockTest, AdvanceWakesMultipleWaiters) {
  FakeClock clock;
  std::condition_variable cv_a, cv_b;
  std::mutex mutex_a, mutex_b;
  std::atomic<int> done{0};
  std::thread a([&] {
    std::unique_lock<std::mutex> lock(mutex_a);
    EXPECT_FALSE(clock.WaitFor(cv_a, lock, std::chrono::nanoseconds(5),
                               [] { return false; }));
    done.fetch_add(1, std::memory_order_acq_rel);
  });
  std::thread b([&] {
    std::unique_lock<std::mutex> lock(mutex_b);
    EXPECT_FALSE(clock.WaitFor(cv_b, lock, std::chrono::nanoseconds(5),
                               [] { return false; }));
    done.fetch_add(1, std::memory_order_acq_rel);
  });
  // Advance until both waiters' deadlines pass: each must unpark
  // regardless of registration order relative to the advances.
  while (done.load(std::memory_order_acquire) < 2) {
    clock.Advance(std::chrono::nanoseconds(10));
    std::this_thread::yield();
  }
  a.join();
  b.join();
}

}  // namespace
}  // namespace qp
