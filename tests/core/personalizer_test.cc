#include "qp/core/personalizer.h"

#include "common/test_util.h"
#include "gtest/gtest.h"
#include "qp/data/movie_db.h"
#include "qp/data/paper_example.h"
#include "qp/query/sql_writer.h"

namespace qp {
namespace {

class PersonalizerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    schema_ = MovieSchema();
    auto db = BuildPaperDatabase();
    ASSERT_TRUE(db.ok());
    db_ = std::make_unique<Database>(std::move(db).value());

    auto julie = PersonalizationGraph::Build(&schema_, JulieProfile());
    ASSERT_TRUE(julie.ok());
    julie_graph_ =
        std::make_unique<PersonalizationGraph>(std::move(julie).value());

    auto rob = PersonalizationGraph::Build(&schema_, RobProfile());
    ASSERT_TRUE(rob.ok());
    rob_graph_ =
        std::make_unique<PersonalizationGraph>(std::move(rob).value());
  }

  PersonalizationOptions JulieOptions() {
    PersonalizationOptions options;
    options.criterion = InterestCriterion::TopCount(3);
    options.integration.min_satisfied = 2;
    return options;
  }

  Schema schema_;
  std::unique_ptr<Database> db_;
  std::unique_ptr<PersonalizationGraph> julie_graph_;
  std::unique_ptr<PersonalizationGraph> rob_graph_;
};

TEST_F(PersonalizerTest, JulieEndToEndMq) {
  Personalizer personalizer(julie_graph_.get());
  PersonalizationOutcome outcome;
  auto result = personalizer.PersonalizeAndExecute(
      TonightQuery(), JulieOptions(), *db_, &outcome);
  ASSERT_TRUE(result.ok()) << result.status();

  ASSERT_EQ(outcome.selected.size(), 3u);
  ASSERT_TRUE(outcome.mq.has_value());
  EXPECT_FALSE(outcome.sq.has_value());

  ASSERT_EQ(result->num_rows(), 3u);
  EXPECT_EQ(result->row(0)[0], Value::Str("The Quiet Comedy"));
  EXPECT_TRUE(result->Contains({Value::Str("Night Chase")}));
  EXPECT_TRUE(result->Contains({Value::Str("Dream Theatre")}));
  EXPECT_FALSE(result->Contains({Value::Str("Laugh Lines")}));
  EXPECT_FALSE(result->Contains({Value::Str("Asian Cuisine Stories")}));
}

TEST_F(PersonalizerTest, JulieEndToEndSq) {
  Personalizer personalizer(julie_graph_.get());
  PersonalizationOptions options = JulieOptions();
  options.approach = IntegrationApproach::kSingleQuery;
  PersonalizationOutcome outcome;
  auto result = personalizer.PersonalizeAndExecute(TonightQuery(), options,
                                                   *db_, &outcome);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_TRUE(outcome.sq.has_value());
  EXPECT_EQ(result->num_rows(), 3u);
}

TEST_F(PersonalizerTest, RobGetsDifferentAnswers) {
  // The motivating example: the same question, different users,
  // different answers.
  Personalizer personalizer(rob_graph_.get());
  PersonalizationOptions options;
  options.criterion = InterestCriterion::TopCount(2);
  options.integration.min_satisfied = 1;
  auto result = personalizer.PersonalizeAndExecute(TonightQuery(), options,
                                                   *db_);
  ASSERT_TRUE(result.ok()) << result.status();
  // Rob: sci-fi (Space Odyssey) or J. Roberts (Space Odyssey, Dream
  // Theatre).
  EXPECT_EQ(result->num_rows(), 2u);
  EXPECT_EQ(result->row(0)[0], Value::Str("Space Odyssey"));
  EXPECT_TRUE(result->Contains({Value::Str("Dream Theatre")}));
}

TEST_F(PersonalizerTest, EmptyProfileReturnsOriginalResults) {
  UserProfile empty;
  auto graph = PersonalizationGraph::Build(&schema_, empty);
  ASSERT_TRUE(graph.ok());
  Personalizer personalizer(&*graph);
  PersonalizationOptions options;
  PersonalizationOutcome outcome;
  auto result = personalizer.PersonalizeAndExecute(TonightQuery(), options,
                                                   *db_, &outcome);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(outcome.selected.empty());
  EXPECT_EQ(result->num_rows(), 6u);  // All of tonight's movies.
}

TEST_F(PersonalizerTest, OutcomeCarriesTimings) {
  Personalizer personalizer(julie_graph_.get());
  auto outcome = personalizer.Personalize(TonightQuery(), JulieOptions());
  ASSERT_TRUE(outcome.ok());
  EXPECT_GE(outcome->selection_millis, 0.0);
  EXPECT_GE(outcome->integration_millis, 0.0);
  EXPECT_GT(outcome->selection_stats.paths_pushed, 0u);
}

TEST_F(PersonalizerTest, PersonalizedResultIsSubsetOfOriginal) {
  Personalizer personalizer(julie_graph_.get());
  Executor executor(db_.get());
  auto original = executor.Execute(TonightQuery());
  ASSERT_TRUE(original.ok());

  auto result = personalizer.PersonalizeAndExecute(TonightQuery(),
                                                   JulieOptions(), *db_);
  ASSERT_TRUE(result.ok());
  for (const Row& row : result->rows()) {
    EXPECT_TRUE(original->Contains(row));
  }
  EXPECT_LE(result->num_rows(), original->num_rows());
}

TEST_F(PersonalizerTest, MinDegreeVariant) {
  Personalizer personalizer(julie_graph_.get());
  PersonalizationOptions options;
  options.criterion = InterestCriterion::TopCount(3);
  options.integration.min_degree = 0.9;
  auto result = personalizer.PersonalizeAndExecute(TonightQuery(), options,
                                                   *db_);
  ASSERT_TRUE(result.ok()) << result.status();
  for (double degree : result->degrees()) {
    EXPECT_GT(degree, 0.9);
  }
}

TEST_F(PersonalizerTest, MandatoryByDegreeThreshold) {
  // Paper Section 4: "a criterion for M could be that preferences with a
  // degree of interest equal to 1 are considered mandatory". Julie's top
  // tonight preferences are 0.81 / 0.8 / 0.72 — with threshold 0.8 the
  // first two become mandatory.
  Personalizer personalizer(julie_graph_.get());
  PersonalizationOptions options;
  options.criterion = InterestCriterion::TopCount(3);
  options.integration.min_satisfied = 1;
  options.mandatory_min_doi = 0.8;
  PersonalizationOutcome outcome;
  auto result = personalizer.PersonalizeAndExecute(TonightQuery(), options,
                                                   *db_, &outcome);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_TRUE(outcome.mq.has_value());
  // K - M = 1 optional preference -> a single partial query.
  EXPECT_EQ(outcome.mq->parts().size(), 1u);
  // Comedy AND Lynch mandatory, Kidman optional (L=1): only The Quiet
  // Comedy satisfies comedy+lynch (and happens to satisfy kidman too).
  EXPECT_EQ(result->num_rows(), 1u);
  EXPECT_TRUE(result->Contains({Value::Str("The Quiet Comedy")}));
}

TEST_F(PersonalizerTest, MandatoryThresholdAboveEverythingIsOriginalFilter) {
  // Threshold higher than all degrees: M = 0, plain L-of-K behaviour.
  Personalizer personalizer(julie_graph_.get());
  PersonalizationOptions options;
  options.criterion = InterestCriterion::TopCount(3);
  options.integration.min_satisfied = 2;
  options.mandatory_min_doi = 0.99;
  auto result =
      personalizer.PersonalizeAndExecute(TonightQuery(), options, *db_);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->num_rows(), 3u);  // Same as the plain K=3/L=2 run.
}

TEST_F(PersonalizerTest, MqSqlMatchesPaperShape) {
  Personalizer personalizer(julie_graph_.get());
  auto outcome = personalizer.Personalize(TonightQuery(), JulieOptions());
  ASSERT_TRUE(outcome.ok());
  std::string sql = ToSql(*outcome->mq);
  EXPECT_NE(sql.find("union all"), std::string::npos) << sql;
  EXPECT_NE(sql.find("group by MV.title"), std::string::npos) << sql;
  EXPECT_NE(sql.find(".genre='comedy'"), std::string::npos) << sql;
  EXPECT_NE(sql.find(".name='N. Kidman'"), std::string::npos) << sql;
  EXPECT_NE(sql.find(".name='D. Lynch'"), std::string::npos) << sql;
}

}  // namespace
}  // namespace qp
