#include "qp/core/interest_criterion.h"

#include "gtest/gtest.h"

namespace qp {
namespace {

TEST(CriterionStateTest, Accumulates) {
  CriterionState state;
  EXPECT_EQ(state.count, 0u);
  EXPECT_DOUBLE_EQ(state.DisjunctiveDegree(), 0.0);
  EXPECT_DOUBLE_EQ(state.ConjunctiveDegree(), 0.0);
  state.Add(0.8);
  state.Add(0.6);
  EXPECT_EQ(state.count, 2u);
  EXPECT_DOUBLE_EQ(state.DisjunctiveDegree(), 0.7);
  EXPECT_NEAR(state.ConjunctiveDegree(), 1 - 0.2 * 0.4, 1e-12);
}

TEST(TopCountTest, AcceptsUpToR) {
  InterestCriterion c = InterestCriterion::TopCount(2);
  CriterionState state;
  EXPECT_TRUE(c.Accepts(state, 0.9));
  state.Add(0.9);
  EXPECT_TRUE(c.Accepts(state, 0.5));
  state.Add(0.5);
  EXPECT_FALSE(c.Accepts(state, 0.99));  // Independent of the degree.
}

TEST(TopCountTest, ZeroSelectsNothing) {
  InterestCriterion c = InterestCriterion::TopCount(0);
  CriterionState state;
  EXPECT_FALSE(c.Accepts(state, 1.0));
}

TEST(MinDegreeTest, StrictThreshold) {
  InterestCriterion c = InterestCriterion::MinDegree(0.6);
  CriterionState state;
  EXPECT_TRUE(c.Accepts(state, 0.61));
  EXPECT_FALSE(c.Accepts(state, 0.6));  // Strictly greater, per Table 1.
  EXPECT_FALSE(c.Accepts(state, 0.59));
  // Unbounded in count.
  for (int i = 0; i < 100; ++i) state.Add(0.9);
  EXPECT_TRUE(c.Accepts(state, 0.7));
}

TEST(DisjunctiveAboveTest, KeepsAverageAboveThreshold) {
  InterestCriterion c = InterestCriterion::DisjunctiveAbove(0.5);
  CriterionState state;
  EXPECT_TRUE(c.Accepts(state, 0.9));   // avg {0.9} = 0.9.
  state.Add(0.9);
  EXPECT_TRUE(c.Accepts(state, 0.2));   // avg {0.9, 0.2} = 0.55.
  EXPECT_FALSE(c.Accepts(state, 0.05)); // avg {0.9, 0.05} = 0.475.
}

TEST(DisjunctiveAboveTest, MonotoneInCandidateDegree) {
  // Required by the selection algorithm's expansion pruning.
  InterestCriterion c = InterestCriterion::DisjunctiveAbove(0.4);
  CriterionState state;
  state.Add(0.5);
  // If it accepts d it must accept any d' > d.
  for (double d = 0.0; d <= 1.0; d += 0.05) {
    if (c.Accepts(state, d)) {
      EXPECT_TRUE(c.Accepts(state, std::min(1.0, d + 0.1)));
    }
  }
}

TEST(ConjunctiveUntilTest, StopsOnceConjunctionExceeds) {
  InterestCriterion c = InterestCriterion::ConjunctiveUntil(0.9);
  CriterionState state;
  EXPECT_TRUE(c.Accepts(state, 0.8));
  state.Add(0.8);  // Conjunction 0.8 <= 0.9: keep going.
  EXPECT_TRUE(c.Accepts(state, 0.7));
  state.Add(0.7);  // Conjunction 1-0.2*0.3 = 0.94 > 0.9: stop.
  EXPECT_FALSE(c.Accepts(state, 0.99));
}

TEST(CriterionTest, ToString) {
  EXPECT_EQ(InterestCriterion::TopCount(5).ToString(), "top-count(5)");
  EXPECT_EQ(InterestCriterion::MinDegree(0.6).ToString(),
            "min-degree(0.6)");
  EXPECT_EQ(InterestCriterion::DisjunctiveAbove(0.5).ToString(),
            "disjunctive-above(0.5)");
  EXPECT_EQ(InterestCriterion::ConjunctiveUntil(0.9).ToString(),
            "conjunctive-until(0.9)");
}

TEST(CriterionTest, KindAndThresholdAccessors) {
  InterestCriterion c = InterestCriterion::MinDegree(0.25);
  EXPECT_EQ(c.kind(), InterestCriterion::Kind::kMinDegree);
  EXPECT_DOUBLE_EQ(c.threshold(), 0.25);
}

}  // namespace
}  // namespace qp
