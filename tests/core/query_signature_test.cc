// Query-signature tests: the canonical key is insensitive to the
// orderings a cache must not care about (FROM variable order, AND/OR
// sibling order, join atom side) and sensitive to everything that
// changes the query's meaning.

#include <string>

#include "common/test_util.h"
#include "gtest/gtest.h"
#include "qp/core/query_signature.h"
#include "qp/query/sql_parser.h"

namespace qp {
namespace {

SelectQuery Parse(const std::string& sql) {
  auto result = ParseSelectQuery(sql);
  if (!result.ok()) {
    ADD_FAILURE() << sql << ": " << result.status();
    return SelectQuery();
  }
  return std::move(result).value();
}

void ExpectSameKey(const std::string& a, const std::string& b) {
  EXPECT_EQ(CanonicalQueryKey(Parse(a)), CanonicalQueryKey(Parse(b)))
      << a << "  vs  " << b;
  EXPECT_EQ(QuerySignature(Parse(a)), QuerySignature(Parse(b)));
}

void ExpectDifferentKey(const std::string& a, const std::string& b) {
  EXPECT_NE(CanonicalQueryKey(Parse(a)), CanonicalQueryKey(Parse(b)))
      << a << "  vs  " << b;
}

TEST(QuerySignatureTest, EqualQueriesEqualKeys) {
  const char* sql =
      "select MV.title from MOVIE MV, PLAY PL where MV.mid=PL.mid and "
      "PL.date='2/7/2003'";
  ExpectSameKey(sql, sql);
}

TEST(QuerySignatureTest, FromOrderDoesNotMatter) {
  ExpectSameKey(
      "select MV.title from MOVIE MV, PLAY PL where MV.mid=PL.mid",
      "select MV.title from PLAY PL, MOVIE MV where MV.mid=PL.mid");
}

TEST(QuerySignatureTest, ConjunctOrderDoesNotMatter) {
  ExpectSameKey(
      "select MV.title from MOVIE MV where MV.year=1999 and MV.title='x'",
      "select MV.title from MOVIE MV where MV.title='x' and MV.year=1999");
}

TEST(QuerySignatureTest, DisjunctOrderDoesNotMatter) {
  ExpectSameKey(
      "select MV.title from MOVIE MV where MV.year=1999 or MV.year=2000",
      "select MV.title from MOVIE MV where MV.year=2000 or MV.year=1999");
}

TEST(QuerySignatureTest, JoinAtomSideDoesNotMatter) {
  ExpectSameKey(
      "select MV.title from MOVIE MV, PLAY PL where MV.mid=PL.mid",
      "select MV.title from MOVIE MV, PLAY PL where PL.mid=MV.mid");
}

TEST(QuerySignatureTest, NestedSiblingSortIsRecursive) {
  ExpectSameKey(
      "select MV.title from MOVIE MV where (MV.year=1999 and MV.title='x') "
      "or (MV.year=2000 and MV.title='y')",
      "select MV.title from MOVIE MV where (MV.title='y' and MV.year=2000) "
      "or (MV.title='x' and MV.year=1999)");
}

TEST(QuerySignatureTest, MeaningfulDifferencesChangeTheKey) {
  const char* base = "select MV.title from MOVIE MV where MV.year=1999";
  // Projection, distinct, predicate value, comparison, structure.
  ExpectDifferentKey(base, "select MV.year from MOVIE MV where MV.year=1999");
  ExpectDifferentKey(
      base, "select distinct MV.title from MOVIE MV where MV.year=1999");
  ExpectDifferentKey(base,
                     "select MV.title from MOVIE MV where MV.year=2000");
  ExpectDifferentKey(base,
                     "select MV.title from MOVIE MV where MV.title=1999");
  ExpectDifferentKey(base, "select MV.title from MOVIE MV");
  // Typed literals: the number 1999 and the string '1999' are distinct.
  ExpectDifferentKey(base,
                     "select MV.title from MOVIE MV where MV.year='1999'");
}

TEST(QuerySignatureTest, ProjectionOrderMatters) {
  // Output column order is part of the result, so it stays in the key.
  ExpectDifferentKey("select MV.title, MV.year from MOVIE MV",
                     "select MV.year, MV.title from MOVIE MV");
}

TEST(QuerySignatureTest, NearConditionsAreKeyed) {
  ExpectSameKey("select MV.title from MOVIE MV where near(MV.year, 1994, 5)",
                "select MV.title from MOVIE MV where near(MV.year, 1994, 5)");
  ExpectDifferentKey(
      "select MV.title from MOVIE MV where near(MV.year, 1994, 5)",
      "select MV.title from MOVIE MV where near(MV.year, 1994, 9)");
}

TEST(QuerySignatureTest, Fnv1a64KnownVectors) {
  EXPECT_EQ(Fnv1a64(""), 0xcbf29ce484222325ull);
  EXPECT_EQ(Fnv1a64("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_NE(Fnv1a64("ab"), Fnv1a64("ba"));
}

}  // namespace
}  // namespace qp
