// Cooperative cancellation of best-first selection: a run cut short by a
// CancelToken must return an exact *prefix* of the unconstrained result
// in decreasing-doi order (DESIGN.md Section 9). The poll budget makes
// the cut deterministic — every possible stopping point is exercised.

#include <memory>

#include "common/test_util.h"
#include "gtest/gtest.h"
#include "qp/core/selection.h"
#include "qp/data/movie_db.h"
#include "qp/data/paper_example.h"
#include "qp/data/workload.h"
#include "qp/pref/profile_generator.h"
#include "qp/util/deadline.h"

namespace qp {
namespace {

class SelectionDeadlineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    schema_ = MovieSchema();
    auto graph = PersonalizationGraph::Build(&schema_, JulieProfile());
    ASSERT_TRUE(graph.ok());
    graph_ = std::make_unique<PersonalizationGraph>(std::move(graph).value());
    selector_ = std::make_unique<PreferenceSelector>(graph_.get());
  }

  Schema schema_;
  std::unique_ptr<PersonalizationGraph> graph_;
  std::unique_ptr<PreferenceSelector> selector_;
};

TEST_F(SelectionDeadlineTest, NullAndUntrippedTokensChangeNothing) {
  auto baseline =
      selector_->Select(TonightQuery(), InterestCriterion::TopCount(9));
  ASSERT_TRUE(baseline.ok());

  CancelToken token(Deadline::AfterMillis(60000));
  SelectionStats stats;
  auto with_token = selector_->Select(
      TonightQuery(), InterestCriterion::TopCount(9), &stats,
      /*semantic=*/nullptr, &token);
  ASSERT_TRUE(with_token.ok());
  EXPECT_FALSE(stats.degraded);
  ASSERT_EQ(with_token->size(), baseline->size());
  for (size_t i = 0; i < baseline->size(); ++i) {
    EXPECT_TRUE((*with_token)[i].SameShape((*baseline)[i]));
  }
}

TEST_F(SelectionDeadlineTest, AlreadyCancelledReturnsEmptyDegraded) {
  CancelToken token;
  token.Cancel();
  SelectionStats stats;
  auto selected = selector_->Select(
      TonightQuery(), InterestCriterion::TopCount(9), &stats,
      /*semantic=*/nullptr, &token);
  ASSERT_TRUE(selected.ok());
  EXPECT_TRUE(selected->empty());
  EXPECT_TRUE(stats.degraded);
}

TEST_F(SelectionDeadlineTest, ExpiredDeadlineDegradesTheRun) {
  CancelToken token(Deadline::AfterMillis(0));
  SelectionStats stats;
  auto selected = selector_->Select(
      TonightQuery(), InterestCriterion::TopCount(9), &stats,
      /*semantic=*/nullptr, &token);
  ASSERT_TRUE(selected.ok());
  EXPECT_TRUE(stats.degraded);
  EXPECT_TRUE(selected->empty());
}

TEST_F(SelectionDeadlineTest, EveryStoppingPointYieldsAPrefix) {
  auto full =
      selector_->Select(TonightQuery(), InterestCriterion::TopCount(9));
  ASSERT_TRUE(full.ok());
  ASSERT_EQ(full->size(), 9u);

  // Walk the poll budget from 0 upwards until the run stops degrading;
  // each cut must be a prefix of the full result, never a reordering.
  bool saw_full = false;
  for (int64_t budget = 0; budget < 2000 && !saw_full; ++budget) {
    CancelToken token;
    token.set_poll_budget(budget);
    SelectionStats stats;
    auto cut = selector_->Select(
        TonightQuery(), InterestCriterion::TopCount(9), &stats,
        /*semantic=*/nullptr, &token);
    ASSERT_TRUE(cut.ok()) << "budget " << budget;
    ASSERT_LE(cut->size(), full->size());
    for (size_t i = 0; i < cut->size(); ++i) {
      EXPECT_DOUBLE_EQ((*cut)[i].doi(), (*full)[i].doi())
          << "budget " << budget << " i=" << i;
      EXPECT_TRUE((*cut)[i].SameShape((*full)[i]))
          << "budget " << budget << " i=" << i;
    }
    if (!stats.degraded) {
      EXPECT_EQ(cut->size(), full->size());
      saw_full = true;
    }
  }
  EXPECT_TRUE(saw_full) << "no budget large enough to finish the run";
}

/// The prefix property on random profiles and queries, against the
/// brute-force oracle: a degraded run agrees element-by-element with the
/// exact top-K for as many selections as it returned.
class SelectionDeadlinePropertyTest
    : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SelectionDeadlinePropertyTest, DegradedIsPrefixOfBruteForce) {
  Schema schema = MovieSchema();
  MovieDbConfig config;
  config.num_movies = 50;
  config.num_actors = 25;
  config.num_directors = 10;
  config.num_theatres = 5;
  config.seed = GetParam();
  auto db = GenerateMovieDatabase(config);
  ASSERT_TRUE(db.ok());
  auto pools = MovieCandidatePools(*db);
  ASSERT_TRUE(pools.ok());
  ProfileGenerator profiles(&schema, std::move(pools).value());
  WorkloadGenerator workload(&*db, GetParam() * 13 + 5);
  Rng rng(GetParam());

  for (int trial = 0; trial < 5; ++trial) {
    ProfileGeneratorOptions options;
    options.num_selections = 10 + rng.Below(40);
    options.near_fraction = 0.3;
    auto profile = profiles.Generate(options, &rng);
    ASSERT_TRUE(profile.ok());
    auto graph = PersonalizationGraph::Build(&schema, *profile);
    ASSERT_TRUE(graph.ok());
    PreferenceSelector selector(&*graph);

    auto query = workload.RandomQuery();
    ASSERT_TRUE(query.ok());
    const InterestCriterion criterion =
        InterestCriterion::TopCount(1 + rng.Below(15));

    auto oracle = selector.SelectBruteForce(*query, criterion);
    ASSERT_TRUE(oracle.ok()) << oracle.status();

    for (int64_t budget : {0, 1, 2, 3, 5, 8, 13, 21, 55, 200}) {
      CancelToken token;
      token.set_poll_budget(budget);
      SelectionStats stats;
      auto cut = selector.Select(*query, criterion, &stats,
                                 /*semantic=*/nullptr, &token);
      ASSERT_TRUE(cut.ok()) << cut.status();
      ASSERT_LE(cut->size(), oracle->size())
          << "trial " << trial << " budget " << budget;
      for (size_t i = 0; i < cut->size(); ++i) {
        // Degrees must agree exactly; shapes may differ only on ties
        // (same tolerance the completeness property test grants).
        EXPECT_DOUBLE_EQ((*cut)[i].doi(), (*oracle)[i].doi())
            << "trial " << trial << " budget " << budget << " i=" << i;
      }
      if (!stats.degraded) {
        EXPECT_EQ(cut->size(), oracle->size())
            << "trial " << trial << " budget " << budget;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SelectionDeadlinePropertyTest,
                         ::testing::Values(3, 11, 23));

}  // namespace
}  // namespace qp
