#include "qp/core/selection.h"

#include "common/test_util.h"
#include "gtest/gtest.h"
#include "qp/data/movie_db.h"
#include "qp/data/paper_example.h"
#include "qp/data/workload.h"
#include "qp/query/sql_parser.h"

namespace qp {
namespace {

class SelectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    schema_ = MovieSchema();
    auto graph = PersonalizationGraph::Build(&schema_, JulieProfile());
    ASSERT_TRUE(graph.ok());
    graph_ = std::make_unique<PersonalizationGraph>(std::move(graph).value());
    selector_ = std::make_unique<PreferenceSelector>(graph_.get());
  }

  Schema schema_;
  std::unique_ptr<PersonalizationGraph> graph_;
  std::unique_ptr<PreferenceSelector> selector_;
};

TEST_F(SelectionTest, PaperTop3ForTonightQuery) {
  // Section 5's worked result: comedy, D. Lynch, N. Kidman.
  auto selected =
      selector_->Select(TonightQuery(), InterestCriterion::TopCount(3));
  ASSERT_TRUE(selected.ok()) << selected.status();
  ASSERT_EQ(selected->size(), 3u);

  EXPECT_EQ((*selected)[0].ConditionString(),
            "MOVIE.mid=GENRE.mid and GENRE.genre='comedy'");
  EXPECT_NEAR((*selected)[0].doi(), 0.81, 1e-12);

  EXPECT_EQ((*selected)[1].ConditionString(),
            "MOVIE.mid=DIRECTED.mid and DIRECTED.did=DIRECTOR.did and "
            "DIRECTOR.name='D. Lynch'");
  EXPECT_NEAR((*selected)[1].doi(), 0.8, 1e-12);

  EXPECT_EQ((*selected)[2].ConditionString(),
            "MOVIE.mid=CAST.mid and CAST.aid=ACTOR.aid and "
            "ACTOR.name='N. Kidman'");
  EXPECT_NEAR((*selected)[2].doi(), 0.72, 1e-12);
}

TEST_F(SelectionTest, DegreesNonIncreasing) {
  auto selected =
      selector_->Select(TonightQuery(), InterestCriterion::TopCount(10));
  ASSERT_TRUE(selected.ok());
  for (size_t i = 1; i < selected->size(); ++i) {
    EXPECT_GE((*selected)[i - 1].doi(), (*selected)[i].doi());
  }
}

TEST_F(SelectionTest, AllPathsAnchoredAtQueryVariables) {
  auto selected =
      selector_->Select(TonightQuery(), InterestCriterion::TopCount(20));
  ASSERT_TRUE(selected.ok());
  for (const PreferencePath& path : *selected) {
    EXPECT_TRUE(path.anchor_alias() == "MV" || path.anchor_alias() == "PL");
    // Expansion never re-enters the query's relations.
    for (const JoinEdge& join : path.joins()) {
      EXPECT_NE(join.to.table, "MOVIE");
      EXPECT_NE(join.to.table, "PLAY");
    }
  }
}

TEST_F(SelectionTest, MinDegreeCriterion) {
  auto selected = selector_->Select(TonightQuery(),
                                    InterestCriterion::MinDegree(0.7));
  ASSERT_TRUE(selected.ok());
  // Degrees above 0.7: comedy 0.81, lynch 0.8, kidman 0.72. The downtown
  // path (0.7) fails the strict inequality.
  ASSERT_EQ(selected->size(), 3u);
  for (const PreferencePath& path : *selected) {
    EXPECT_GT(path.doi(), 0.7);
  }
}

TEST_F(SelectionTest, TopCountZeroSelectsNothing) {
  auto selected =
      selector_->Select(TonightQuery(), InterestCriterion::TopCount(0));
  ASSERT_TRUE(selected.ok());
  EXPECT_TRUE(selected->empty());
}

TEST_F(SelectionTest, LargeKExhaustsRelatedPreferences) {
  auto selected =
      selector_->Select(TonightQuery(), InterestCriterion::TopCount(1000));
  ASSERT_TRUE(selected.ok());
  // From MV: 3 genre + 2 director + 3 actor transitive selections;
  // from PL: 1 theatre region. Total 9.
  EXPECT_EQ(selected->size(), 9u);
}

TEST_F(SelectionTest, ConflictingPreferenceExcluded) {
  // A query already asking for uptown theatres: Julie's downtown
  // preference must not be selected.
  auto query = ParseSelectQuery(
      "select PL.date from PLAY PL, THEATRE TH where PL.tid=TH.tid and "
      "TH.region='uptown'");
  ASSERT_TRUE(query.ok());
  auto selected =
      selector_->Select(*query, InterestCriterion::TopCount(100));
  ASSERT_TRUE(selected.ok());
  for (const PreferencePath& path : *selected) {
    EXPECT_EQ(path.selection()->value == Value::Str("downtown") &&
                  path.joins().empty(),
              false);
    if (path.selection()->attribute.column == "region") {
      ADD_FAILURE() << "conflicting region preference selected: "
                    << path.ToString();
    }
  }
}

TEST_F(SelectionTest, QueryWithNoRelatedPreferences) {
  UserProfile empty;
  auto graph = PersonalizationGraph::Build(&schema_, empty);
  ASSERT_TRUE(graph.ok());
  PreferenceSelector selector(&*graph);
  auto selected =
      selector.Select(TonightQuery(), InterestCriterion::TopCount(5));
  ASSERT_TRUE(selected.ok());
  EXPECT_TRUE(selected->empty());
}

TEST_F(SelectionTest, StatsAreTracked) {
  SelectionStats stats;
  auto selected = selector_->Select(TonightQuery(),
                                    InterestCriterion::TopCount(3), &stats);
  ASSERT_TRUE(selected.ok());
  EXPECT_GT(stats.paths_pushed, 0u);
  EXPECT_GT(stats.paths_popped, 0u);
  EXPECT_GT(stats.max_queue_size, 0u);
}

TEST_F(SelectionTest, MatchesBruteForceOnPaperExample) {
  for (size_t k : {1u, 2u, 3u, 5u, 9u, 20u}) {
    auto fast =
        selector_->Select(TonightQuery(), InterestCriterion::TopCount(k));
    auto slow = selector_->SelectBruteForce(TonightQuery(),
                                            InterestCriterion::TopCount(k));
    ASSERT_TRUE(fast.ok());
    ASSERT_TRUE(slow.ok());
    ASSERT_EQ(fast->size(), slow->size()) << "K=" << k;
    for (size_t i = 0; i < fast->size(); ++i) {
      EXPECT_DOUBLE_EQ((*fast)[i].doi(), (*slow)[i].doi());
      EXPECT_TRUE((*fast)[i].SameShape((*slow)[i]))
          << "K=" << k << " i=" << i << "\nfast: " << (*fast)[i].ToString()
          << "\nslow: " << (*slow)[i].ToString();
    }
  }
}

/// Completeness (paper Theorems 1-2) on random profiles and random
/// queries: the best-first algorithm must return exactly what exhaustive
/// enumeration + greedy criterion application returns.
class SelectionPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SelectionPropertyTest, AgreesWithBruteForce) {
  Schema schema = MovieSchema();
  MovieDbConfig config;
  config.num_movies = 50;
  config.num_actors = 25;
  config.num_directors = 10;
  config.num_theatres = 5;
  config.seed = GetParam();
  auto db = GenerateMovieDatabase(config);
  ASSERT_TRUE(db.ok());
  auto pools = MovieCandidatePools(*db);
  ASSERT_TRUE(pools.ok());
  ProfileGenerator profiles(&schema, std::move(pools).value());
  WorkloadGenerator workload(&*db, GetParam() * 7 + 1);
  Rng rng(GetParam());

  for (int trial = 0; trial < 10; ++trial) {
    ProfileGeneratorOptions options;
    options.num_selections = 10 + rng.Below(40);
    // Mix in soft preferences: the algorithm must treat them like any
    // other selection edge.
    options.near_fraction = 0.3;
    auto profile = profiles.Generate(options, &rng);
    ASSERT_TRUE(profile.ok());
    auto graph = PersonalizationGraph::Build(&schema, *profile);
    ASSERT_TRUE(graph.ok());
    PreferenceSelector selector(&*graph);

    auto query = workload.RandomQuery();
    ASSERT_TRUE(query.ok());

    const InterestCriterion criteria[] = {
        InterestCriterion::TopCount(1 + rng.Below(15)),
        InterestCriterion::MinDegree(rng.NextDouble()),
        InterestCriterion::DisjunctiveAbove(0.3 + 0.4 * rng.NextDouble()),
    };
    for (const InterestCriterion& criterion : criteria) {
      auto fast = selector.Select(*query, criterion);
      auto slow = selector.SelectBruteForce(*query, criterion);
      ASSERT_TRUE(fast.ok()) << fast.status();
      ASSERT_TRUE(slow.ok()) << slow.status();
      ASSERT_EQ(fast->size(), slow->size())
          << criterion.ToString() << " trial " << trial;
      for (size_t i = 0; i < fast->size(); ++i) {
        // Degrees must agree exactly; shapes may differ only on ties.
        EXPECT_DOUBLE_EQ((*fast)[i].doi(), (*slow)[i].doi())
            << criterion.ToString() << " trial " << trial << " i=" << i;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SelectionPropertyTest,
                         ::testing::Values(7, 17, 27, 37, 47));

}  // namespace
}  // namespace qp
