// Tests for the soft-preference (proximity) extension: preferences like
// "movies from around 2002" expressed as near(MOVIE.year, 2002, width),
// whose per-row satisfaction scales the estimated degree of interest.

#include "common/test_util.h"
#include "gtest/gtest.h"
#include "qp/core/personalizer.h"
#include "qp/data/movie_db.h"
#include "qp/data/paper_example.h"
#include "qp/query/sql_parser.h"
#include "qp/query/sql_writer.h"

namespace qp {
namespace {

TEST(NearConditionTest, SatisfactionDecaysLinearly) {
  AtomicCondition near =
      AtomicCondition::Near("MV", "year", Value::Int(2000), 10.0);
  EXPECT_DOUBLE_EQ(near.Satisfaction(Value::Int(2000)), 1.0);
  EXPECT_DOUBLE_EQ(near.Satisfaction(Value::Int(2005)), 0.5);
  EXPECT_DOUBLE_EQ(near.Satisfaction(Value::Int(1995)), 0.5);
  EXPECT_DOUBLE_EQ(near.Satisfaction(Value::Int(2010)), 0.0);
  EXPECT_DOUBLE_EQ(near.Satisfaction(Value::Int(2020)), 0.0);
  EXPECT_DOUBLE_EQ(near.Satisfaction(Value::Real(2001.0)), 0.9);
  EXPECT_DOUBLE_EQ(near.Satisfaction(Value::Null()), 0.0);
  EXPECT_DOUBLE_EQ(near.Satisfaction(Value::Str("2000")), 0.0);
}

TEST(NearConditionTest, SqlRenderingAndEquality) {
  AtomicCondition a =
      AtomicCondition::Near("MV", "year", Value::Int(1994), 5.0);
  EXPECT_EQ(a.ToSql(), "near(MV.year, 1994, 5)");
  EXPECT_TRUE(a.is_near());
  EXPECT_FALSE(a.is_selection());
  EXPECT_EQ(a.ReferencedVars(), (std::vector<std::string>{"MV"}));
  EXPECT_EQ(a, AtomicCondition::Near("MV", "year", Value::Int(1994), 5.0));
  EXPECT_NE(a, AtomicCondition::Near("MV", "year", Value::Int(1994), 6.0));
  EXPECT_NE(a, AtomicCondition::Selection("MV", "year", Value::Int(1994)));
}

TEST(NearConditionTest, ParserRoundTrip) {
  auto query = ParseSelectQuery(
      "select MV.title from MOVIE MV where near(MV.year, 1994, 5)");
  ASSERT_TRUE(query.ok()) << query.status();
  QP_EXPECT_OK(query->Validate(MovieSchema()));
  std::string sql = ToSql(*query);
  EXPECT_NE(sql.find("near(MV.year, 1994, 5)"), std::string::npos) << sql;
  auto reparsed = ParseSelectQuery(sql);
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(ToSql(*reparsed), sql);
}

TEST(NearConditionTest, ValidationRules) {
  Schema schema = MovieSchema();
  auto on_string = ParseSelectQuery(
      "select MV.title from MOVIE MV where near(MV.title, 3, 1)");
  ASSERT_TRUE(on_string.ok());
  EXPECT_FALSE(on_string->Validate(schema).ok());
}

TEST(NearConditionTest, ExecutorFiltersAndRanksByCloseness) {
  auto db = BuildPaperDatabase();
  ASSERT_TRUE(db.ok());
  Executor executor(&*db);
  // Paper DB years: 2002, 2001, 2003, 2003, 2000, 1999.
  auto query = ParseSelectQuery(
      "select distinct MV.title, MV.year from MOVIE MV where "
      "near(MV.year, 2002, 3)");
  ASSERT_TRUE(query.ok());
  auto result = executor.Execute(*query);
  ASSERT_TRUE(result.ok()) << result.status();
  // Matching years: 2000..2003 inclusive-exclusive bounds: 2000 (1/3),
  // 2001 (2/3), 2002 (1), 2003 (2/3) -> 5 movies (1999 excluded).
  EXPECT_EQ(result->num_rows(), 5u);
  ASSERT_TRUE(result->has_satisfactions());
  for (size_t i = 0; i < result->num_rows(); ++i) {
    int64_t year = result->row(i)[1].as_int();
    double expected = 1.0 - std::abs(static_cast<double>(year - 2002)) / 3.0;
    EXPECT_NEAR(result->satisfaction(i), expected, 1e-12) << year;
  }
}

TEST(SoftPreferenceTest, ProfileEntryRoundTrip) {
  UserProfile profile;
  QP_ASSERT_OK(profile.Add(AtomicPreference::NearSelection(
      {"MOVIE", "year"}, Value::Int(2002), 4.0, 0.8)));
  EXPECT_EQ(profile.Serialize(), "[ near(MOVIE.year, 2002, 4), 0.8 ]\n");
  auto reparsed = UserProfile::Parse(profile.Serialize());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status();
  ASSERT_EQ(reparsed->size(), 1u);
  const AtomicPreference& p = reparsed->preferences()[0];
  EXPECT_TRUE(p.is_near());
  EXPECT_EQ(p.value(), Value::Int(2002));
  EXPECT_DOUBLE_EQ(p.width(), 4.0);
  EXPECT_DOUBLE_EQ(p.doi(), 0.8);
  QP_EXPECT_OK(reparsed->Validate(MovieSchema()));
}

TEST(SoftPreferenceTest, ValidationRejectsBadNearPreferences) {
  Schema schema = MovieSchema();
  UserProfile non_numeric;
  QP_ASSERT_OK(non_numeric.Add(AtomicPreference::NearSelection(
      {"MOVIE", "title"}, Value::Int(3), 1.0, 0.5)));
  EXPECT_FALSE(non_numeric.Validate(schema).ok());

  UserProfile bad_width;
  QP_ASSERT_OK(bad_width.Add(AtomicPreference::NearSelection(
      {"MOVIE", "year"}, Value::Int(2000), 0.0, 0.5)));
  EXPECT_FALSE(bad_width.Validate(schema).ok());
}

class SoftPersonalizationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    schema_ = MovieSchema();
    auto db = BuildPaperDatabase();
    ASSERT_TRUE(db.ok());
    db_ = std::make_unique<Database>(std::move(db).value());
  }

  /// Join skeleton + one soft year preference around 2002.
  UserProfile SoftProfile(double doi = 0.8, double width = 4.0) {
    UserProfile profile;
    for (const SchemaJoin& join : schema_.joins()) {
      (void)profile.Add(AtomicPreference::Join(join.left, join.right, 1.0));
      (void)profile.Add(AtomicPreference::Join(join.right, join.left, 1.0));
    }
    (void)profile.Add(AtomicPreference::NearSelection(
        {"MOVIE", "year"}, Value::Int(2002), width, doi));
    return profile;
  }

  Schema schema_;
  std::unique_ptr<Database> db_;
};

TEST_F(SoftPersonalizationTest, SoftPreferenceSelectedAndIntegrated) {
  UserProfile profile = SoftProfile();
  auto graph = PersonalizationGraph::Build(&schema_, profile);
  ASSERT_TRUE(graph.ok()) << graph.status();
  Personalizer personalizer(&*graph);

  PersonalizationOptions options;
  options.criterion = InterestCriterion::TopCount(1);
  options.integration.min_satisfied = 1;

  PersonalizationOutcome outcome;
  auto result = personalizer.PersonalizeAndExecute(TonightQuery(), options,
                                                   *db_, &outcome);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(outcome.selected.size(), 1u);
  EXPECT_NE(outcome.selected[0].ConditionString().find("near(MOVIE.year"),
            std::string::npos);
  // The rewritten SQL carries the near condition.
  std::string sql = ToSql(*outcome.mq);
  EXPECT_NE(sql.find("near(MV.year, 2002, 4)"), std::string::npos) << sql;

  // Years within (1998, 2006): all six movies... 1999 has sat 0.25; the
  // ranking must be ordered by closeness to 2002.
  ASSERT_GE(result->num_rows(), 3u);
  int64_t previous_distance = -1;
  (void)previous_distance;
  for (size_t i = 1; i < result->num_rows(); ++i) {
    EXPECT_GE(result->degrees()[i - 1], result->degrees()[i]);
  }
  // Top row is a 2002 movie with full degree 0.8.
  EXPECT_NEAR(result->degrees()[0], 0.8, 1e-12);
}

TEST_F(SoftPersonalizationTest, DegreeScalesWithDistance) {
  UserProfile profile = SoftProfile(/*doi=*/1.0, /*width=*/4.0);
  auto graph = PersonalizationGraph::Build(&schema_, profile);
  ASSERT_TRUE(graph.ok());
  Personalizer personalizer(&*graph);
  PersonalizationOptions options;
  options.criterion = InterestCriterion::TopCount(1);
  options.integration.min_satisfied = 1;
  auto result =
      personalizer.PersonalizeAndExecute(TonightQuery(), options, *db_);
  ASSERT_TRUE(result.ok());
  // Expected degrees: |year-2002| of {0:1, 1:0.75, 2:0.5, 3:0.25}.
  for (size_t i = 0; i < result->num_rows(); ++i) {
    double d = result->degrees()[i];
    EXPECT_TRUE(std::abs(d - 1.0) < 1e-9 || std::abs(d - 0.75) < 1e-9 ||
                std::abs(d - 0.5) < 1e-9 || std::abs(d - 0.25) < 1e-9)
        << d;
  }
}

TEST_F(SoftPersonalizationTest, SharedCoreAgreesOnSoftDegrees) {
  UserProfile profile = SoftProfile();
  // A second preference so the compound has two parts (enables the
  // shared-core path).
  (void)profile.Add(AtomicPreference::Selection(
      {"GENRE", "genre"}, Value::Str("comedy"), 0.7));
  auto graph = PersonalizationGraph::Build(&schema_, profile);
  ASSERT_TRUE(graph.ok());
  Personalizer personalizer(&*graph);
  PersonalizationOptions options;
  options.criterion = InterestCriterion::TopCount(2);
  options.integration.min_satisfied = 1;
  auto outcome = personalizer.Personalize(TonightQuery(), options);
  ASSERT_TRUE(outcome.ok());

  Executor shared(db_.get());
  Executor naive(db_.get());
  naive.set_shared_core(false);
  auto a = shared.Execute(*outcome->mq);
  auto b = naive.Execute(*outcome->mq);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->num_rows(), b->num_rows());
  for (size_t i = 0; i < a->num_rows(); ++i) {
    EXPECT_EQ(a->row(i), b->row(i));
    EXPECT_NEAR(a->degrees()[i], b->degrees()[i], 1e-12);
  }
}

TEST_F(SoftPersonalizationTest, SoftPreferenceWorksInSqForm) {
  // Unlike dislikes, positive soft preferences are expressible in SQ: the
  // near condition simply joins the complex qualification (results are
  // unranked, as SQ results always are).
  UserProfile profile = SoftProfile();
  (void)profile.Add(AtomicPreference::Selection(
      {"GENRE", "genre"}, Value::Str("comedy"), 0.7));
  auto graph = PersonalizationGraph::Build(&schema_, profile);
  ASSERT_TRUE(graph.ok());
  Personalizer personalizer(&*graph);
  PersonalizationOptions options;
  options.criterion = InterestCriterion::TopCount(2);
  options.integration.min_satisfied = 1;
  options.approach = IntegrationApproach::kSingleQuery;
  PersonalizationOutcome outcome;
  auto sq_result = personalizer.PersonalizeAndExecute(TonightQuery(), options,
                                                      *db_, &outcome);
  ASSERT_TRUE(sq_result.ok()) << sq_result.status();
  ASSERT_TRUE(outcome.sq.has_value());

  options.approach = IntegrationApproach::kMultipleQueries;
  auto mq_result =
      personalizer.PersonalizeAndExecute(TonightQuery(), options, *db_);
  ASSERT_TRUE(mq_result.ok());
  EXPECT_TRUE(
      testing_util::SameRows(sq_result->rows(), mq_result->rows()));
}

TEST_F(SoftPersonalizationTest, SoftNegativePreferenceDemotes) {
  // Dislike of films from around 1999 as a *soft* dislike.
  UserProfile profile = SoftProfile();
  (void)profile.Add(AtomicPreference::NearSelection(
      {"MOVIE", "year"}, Value::Int(1999), 3.0, -0.9));
  auto graph = PersonalizationGraph::Build(&schema_, profile);
  ASSERT_TRUE(graph.ok()) << graph.status();
  EXPECT_EQ(graph->num_negative_selection_edges(), 1u);
  Personalizer personalizer(&*graph);
  PersonalizationOptions options;
  options.criterion = InterestCriterion::TopCount(1);
  options.integration.min_satisfied = 1;
  options.max_negative = 3;
  auto result =
      personalizer.PersonalizeAndExecute(TonightQuery(), options, *db_);
  ASSERT_TRUE(result.ok()) << result.status();
  // 'Dream Theatre' (1999) satisfies the dislike fully and sinks to the
  // bottom of the ranked list.
  ASSERT_GE(result->num_rows(), 2u);
  EXPECT_EQ(result->row(result->num_rows() - 1)[0],
            Value::Str("Dream Theatre"));
}

}  // namespace
}  // namespace qp
