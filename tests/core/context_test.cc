#include "qp/core/context.h"

#include "common/test_util.h"
#include "gtest/gtest.h"
#include "qp/data/movie_db.h"
#include "qp/data/paper_example.h"

namespace qp {
namespace {

TEST(ContextTest, DeviceClassesScaleK) {
  QueryContext phone{QueryContext::Device::kPhone, {}, {}};
  QueryContext tablet{QueryContext::Device::kTablet, {}, {}};
  QueryContext desk{QueryContext::Device::kWorkstation, {}, {}};

  EXPECT_DOUBLE_EQ(DeriveOptions(phone).criterion.threshold(), 3);
  EXPECT_DOUBLE_EQ(DeriveOptions(tablet).criterion.threshold(), 10);
  EXPECT_DOUBLE_EQ(DeriveOptions(desk).criterion.threshold(), 25);
  EXPECT_EQ(DeriveOptions(phone).top_n, 10u);
  EXPECT_EQ(DeriveOptions(tablet).top_n, 25u);
  EXPECT_EQ(DeriveOptions(desk).top_n, 0u);
}

TEST(ContextTest, LatencyBudgetHalvesK) {
  QueryContext slow{QueryContext::Device::kWorkstation, 40.0, {}};
  EXPECT_DOUBLE_EQ(DeriveOptions(slow).criterion.threshold(), 12);
  QueryContext phone{QueryContext::Device::kPhone, 10.0, {}};
  EXPECT_DOUBLE_EQ(DeriveOptions(phone).criterion.threshold(), 1);
  QueryContext relaxed{QueryContext::Device::kWorkstation, 500.0, {}};
  EXPECT_DOUBLE_EQ(DeriveOptions(relaxed).criterion.threshold(), 25);
}

TEST(ContextTest, LowBandwidthCapsDelivery) {
  QueryContext thin{QueryContext::Device::kWorkstation, {}, 128.0};
  EXPECT_EQ(DeriveOptions(thin).top_n, 10u);
  QueryContext thin_tablet{QueryContext::Device::kTablet, {}, 64.0};
  EXPECT_EQ(DeriveOptions(thin_tablet).top_n, 10u);
  QueryContext broadband{QueryContext::Device::kWorkstation, {}, 10000.0};
  EXPECT_EQ(DeriveOptions(broadband).top_n, 0u);
}

TEST(ContextTest, BasePreservedForUntouchedFields) {
  PersonalizationOptions base;
  base.integration.min_satisfied = 3;
  base.integration.negative_mode = NegativeMode::kVeto;
  base.max_negative = 7;
  base.approach = IntegrationApproach::kSingleQuery;
  QueryContext phone{QueryContext::Device::kPhone, {}, {}};
  PersonalizationOptions derived = DeriveOptions(phone, base);
  EXPECT_EQ(derived.integration.min_satisfied, 3u);
  EXPECT_EQ(derived.integration.negative_mode, NegativeMode::kVeto);
  EXPECT_EQ(derived.max_negative, 7u);
  EXPECT_EQ(derived.approach, IntegrationApproach::kSingleQuery);
}

TEST(ContextTest, EndToEndPhoneVersusWorkstation) {
  Schema schema = MovieSchema();
  auto db = BuildPaperDatabase();
  ASSERT_TRUE(db.ok());
  auto graph = PersonalizationGraph::Build(&schema, JulieProfile());
  ASSERT_TRUE(graph.ok());
  Personalizer personalizer(&*graph);

  QueryContext phone{QueryContext::Device::kPhone, {}, {}};
  PersonalizationOptions base;
  base.integration.min_satisfied = 1;
  PersonalizationOutcome phone_outcome;
  auto phone_result = personalizer.PersonalizeAndExecute(
      TonightQuery(), DeriveOptions(phone, base), *db, &phone_outcome);
  ASSERT_TRUE(phone_result.ok()) << phone_result.status();
  EXPECT_LE(phone_outcome.selected.size(), 3u);

  QueryContext desk{QueryContext::Device::kWorkstation, {}, {}};
  PersonalizationOutcome desk_outcome;
  auto desk_result = personalizer.PersonalizeAndExecute(
      TonightQuery(), DeriveOptions(desk, base), *db, &desk_outcome);
  ASSERT_TRUE(desk_result.ok());
  // The workstation considers more preferences than the phone.
  EXPECT_GT(desk_outcome.selected.size(), phone_outcome.selected.size());
  EXPECT_GE(desk_result->num_rows(), phone_result->num_rows());
}

}  // namespace
}  // namespace qp
