#include "qp/core/context.h"

#include <algorithm>

#include "common/test_util.h"
#include "gtest/gtest.h"
#include "qp/data/movie_db.h"
#include "qp/data/paper_example.h"

namespace qp {
namespace {

TEST(ContextTest, DeviceClassesScaleK) {
  QueryContext phone{QueryContext::Device::kPhone, {}, {}};
  QueryContext tablet{QueryContext::Device::kTablet, {}, {}};
  QueryContext desk{QueryContext::Device::kWorkstation, {}, {}};

  EXPECT_DOUBLE_EQ(DeriveOptions(phone).criterion.threshold(), 3);
  EXPECT_DOUBLE_EQ(DeriveOptions(tablet).criterion.threshold(), 10);
  EXPECT_DOUBLE_EQ(DeriveOptions(desk).criterion.threshold(), 25);
  EXPECT_EQ(DeriveOptions(phone).top_n, 10u);
  EXPECT_EQ(DeriveOptions(tablet).top_n, 25u);
  EXPECT_EQ(DeriveOptions(desk).top_n, 0u);
}

TEST(ContextTest, LatencyBudgetHalvesK) {
  QueryContext slow{QueryContext::Device::kWorkstation, 40.0, {}};
  EXPECT_DOUBLE_EQ(DeriveOptions(slow).criterion.threshold(), 12);
  QueryContext phone{QueryContext::Device::kPhone, 10.0, {}};
  EXPECT_DOUBLE_EQ(DeriveOptions(phone).criterion.threshold(), 1);
  QueryContext relaxed{QueryContext::Device::kWorkstation, 500.0, {}};
  EXPECT_DOUBLE_EQ(DeriveOptions(relaxed).criterion.threshold(), 25);
}

TEST(ContextTest, LowBandwidthCapsDelivery) {
  QueryContext thin{QueryContext::Device::kWorkstation, {}, 128.0};
  EXPECT_EQ(DeriveOptions(thin).top_n, 10u);
  QueryContext thin_tablet{QueryContext::Device::kTablet, {}, 64.0};
  EXPECT_EQ(DeriveOptions(thin_tablet).top_n, 10u);
  QueryContext broadband{QueryContext::Device::kWorkstation, {}, 10000.0};
  EXPECT_EQ(DeriveOptions(broadband).top_n, 0u);
}

TEST(ContextTest, BudgetOfExactlyFiftyMillisDoesNotHalveK) {
  // The rule is *under* 50 ms; the boundary itself keeps the device K.
  QueryContext at_boundary{QueryContext::Device::kWorkstation, 50.0, {}};
  EXPECT_DOUBLE_EQ(DeriveOptions(at_boundary).criterion.threshold(), 25);
  QueryContext just_under{QueryContext::Device::kWorkstation, 49.999, {}};
  EXPECT_DOUBLE_EQ(DeriveOptions(just_under).criterion.threshold(), 12);
}

TEST(ContextTest, PhoneWithTightBudgetKeepsAtLeastOnePreference) {
  // Phone K=3, halved → 1, and never below 1 no matter how tight the
  // budget — a personalized answer with zero preferences would silently
  // revert to the unpersonalized query.
  for (double budget : {49.0, 10.0, 1.0, 0.5, 0.0}) {
    QueryContext phone{QueryContext::Device::kPhone, budget, {}};
    EXPECT_DOUBLE_EQ(DeriveOptions(phone).criterion.threshold(), 1)
        << "budget " << budget;
  }
}

TEST(ContextTest, BandwidthCapCombinesWithDeviceDeliveryLimit) {
  // The cap is min(device top_n, 10): it tightens the phone/tablet
  // limits and bounds the workstation's unlimited delivery, and the
  // boundary (exactly 256 kbps) is not "low bandwidth".
  QueryContext thin_phone{QueryContext::Device::kPhone, {}, 100.0};
  EXPECT_EQ(DeriveOptions(thin_phone).top_n, 10u);
  QueryContext thin_desk{QueryContext::Device::kWorkstation, {}, 100.0};
  EXPECT_EQ(DeriveOptions(thin_desk).top_n, 10u);
  QueryContext boundary{QueryContext::Device::kWorkstation, {}, 256.0};
  EXPECT_EQ(DeriveOptions(boundary).top_n, 0u);

  // An explicit base top_n is overridden by the derived value: context
  // derivation owns the delivery cap (callers adjust afterwards if they
  // must).
  PersonalizationOptions base;
  base.top_n = 3;
  QueryContext desk{QueryContext::Device::kWorkstation, {}, {}};
  EXPECT_EQ(DeriveOptions(desk, base).top_n, 0u);
}

TEST(ContextTest, TightBudgetAndThinPipeComposePerDevice) {
  // Both constraints at once: K halves and delivery caps, independently.
  for (auto device : {QueryContext::Device::kPhone,
                      QueryContext::Device::kTablet,
                      QueryContext::Device::kWorkstation}) {
    QueryContext context{device, 20.0, 64.0};
    PersonalizationOptions derived = DeriveOptions(context);
    size_t device_k = device == QueryContext::Device::kPhone    ? 3
                      : device == QueryContext::Device::kTablet ? 10
                                                                : 25;
    EXPECT_DOUBLE_EQ(derived.criterion.threshold(),
                     std::max<size_t>(1, device_k / 2));
    EXPECT_EQ(derived.top_n, 10u);
  }
}

TEST(ContextTest, BasePreservedForUntouchedFields) {
  PersonalizationOptions base;
  base.integration.min_satisfied = 3;
  base.integration.negative_mode = NegativeMode::kVeto;
  base.max_negative = 7;
  base.approach = IntegrationApproach::kSingleQuery;
  QueryContext phone{QueryContext::Device::kPhone, {}, {}};
  PersonalizationOptions derived = DeriveOptions(phone, base);
  EXPECT_EQ(derived.integration.min_satisfied, 3u);
  EXPECT_EQ(derived.integration.negative_mode, NegativeMode::kVeto);
  EXPECT_EQ(derived.max_negative, 7u);
  EXPECT_EQ(derived.approach, IntegrationApproach::kSingleQuery);
}

TEST(ContextTest, EndToEndPhoneVersusWorkstation) {
  Schema schema = MovieSchema();
  auto db = BuildPaperDatabase();
  ASSERT_TRUE(db.ok());
  auto graph = PersonalizationGraph::Build(&schema, JulieProfile());
  ASSERT_TRUE(graph.ok());
  Personalizer personalizer(&*graph);

  QueryContext phone{QueryContext::Device::kPhone, {}, {}};
  PersonalizationOptions base;
  base.integration.min_satisfied = 1;
  PersonalizationOutcome phone_outcome;
  auto phone_result = personalizer.PersonalizeAndExecute(
      TonightQuery(), DeriveOptions(phone, base), *db, &phone_outcome);
  ASSERT_TRUE(phone_result.ok()) << phone_result.status();
  EXPECT_LE(phone_outcome.selected.size(), 3u);

  QueryContext desk{QueryContext::Device::kWorkstation, {}, {}};
  PersonalizationOutcome desk_outcome;
  auto desk_result = personalizer.PersonalizeAndExecute(
      TonightQuery(), DeriveOptions(desk, base), *db, &desk_outcome);
  ASSERT_TRUE(desk_result.ok());
  // The workstation considers more preferences than the phone.
  EXPECT_GT(desk_outcome.selected.size(), phone_outcome.selected.size());
  EXPECT_GE(desk_result->num_rows(), phone_result->num_rows());
}

}  // namespace
}  // namespace qp
