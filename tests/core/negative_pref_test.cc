// Tests for the negative-preference (dislike) extension: the generalized
// preference model the paper lists as ongoing work. Dislikes are stored
// as selection preferences with degrees in [-1, 0), selected by |degree|,
// and enforced either as vetoes (EXCEPT blocks) or as ranking penalties
// (negative-degree parts).

#include "common/test_util.h"
#include "gtest/gtest.h"
#include "qp/core/personalizer.h"
#include "qp/data/movie_db.h"
#include "qp/pref/doi.h"
#include "qp/data/paper_example.h"
#include "qp/query/sql_parser.h"
#include "qp/query/sql_writer.h"

namespace qp {
namespace {

/// Julie's profile plus a strong dislike of documentaries and a softer
/// one of M. Tarkowski.
UserProfile JulieWithDislikes() {
  UserProfile profile = JulieProfile();
  (void)profile.Add(AtomicPreference::Selection(
      {"GENRE", "genre"}, Value::Str("documentary"), -1.0));
  (void)profile.Add(AtomicPreference::Selection(
      {"DIRECTOR", "name"}, Value::Str("M. Tarkowski"), -0.5));
  return profile;
}

class NegativePrefTest : public ::testing::Test {
 protected:
  void SetUp() override {
    schema_ = MovieSchema();
    auto db = BuildPaperDatabase();
    ASSERT_TRUE(db.ok());
    db_ = std::make_unique<Database>(std::move(db).value());
    auto graph = PersonalizationGraph::Build(&schema_, JulieWithDislikes());
    ASSERT_TRUE(graph.ok()) << graph.status();
    graph_ = std::make_unique<PersonalizationGraph>(std::move(graph).value());
  }

  Schema schema_;
  std::unique_ptr<Database> db_;
  std::unique_ptr<PersonalizationGraph> graph_;
};

TEST_F(NegativePrefTest, GraphSeparatesPolarities) {
  EXPECT_EQ(graph_->num_negative_selection_edges(), 2u);
  EXPECT_EQ(graph_->SelectionsOn("GENRE").size(), 3u);  // Positives only.
  ASSERT_EQ(graph_->NegativeSelectionsOn("GENRE").size(), 1u);
  EXPECT_DOUBLE_EQ(graph_->NegativeSelectionsOn("GENRE")[0].doi, -1.0);
  EXPECT_NE(graph_->DebugString().find("dislike"), std::string::npos);
}

TEST_F(NegativePrefTest, EnumerateNegativePaths) {
  auto paths = EnumerateNegativeTransitiveSelections(
      *graph_, "MV", "MOVIE", {"MOVIE", "PLAY"});
  // documentary via GENRE (0.9 * 1.0 magnitude) and Tarkowski via
  // DIRECTED/DIRECTOR (1 * 1 * 0.5).
  ASSERT_EQ(paths.size(), 2u);
  for (const PreferencePath& path : paths) {
    EXPECT_TRUE(path.is_negative());
    EXPECT_LT(path.doi(), 0.0);
    EXPECT_GT(path.AbsDoi(), 0.0);
  }
}

TEST_F(NegativePrefTest, SelectNegativeOrdersByMagnitude) {
  PreferenceSelector selector(graph_.get());
  auto negatives = selector.SelectNegative(TonightQuery(), 10);
  ASSERT_TRUE(negatives.ok()) << negatives.status();
  ASSERT_EQ(negatives->size(), 2u);
  EXPECT_GE((*negatives)[0].AbsDoi(), (*negatives)[1].AbsDoi());
  // documentary: |-1| * 0.9 = 0.9 beats Tarkowski 0.5.
  EXPECT_NEAR((*negatives)[0].AbsDoi(), 0.9, 1e-12);
  EXPECT_NEAR((*negatives)[1].AbsDoi(), 0.5, 1e-12);
}

TEST_F(NegativePrefTest, SelectNegativeRespectsCapAndThreshold) {
  PreferenceSelector selector(graph_.get());
  auto capped = selector.SelectNegative(TonightQuery(), 1);
  ASSERT_TRUE(capped.ok());
  EXPECT_EQ(capped->size(), 1u);
  auto thresholded = selector.SelectNegative(TonightQuery(), 10, 0.8);
  ASSERT_TRUE(thresholded.ok());
  EXPECT_EQ(thresholded->size(), 1u);  // Only the documentary dislike.
}

TEST_F(NegativePrefTest, VetoRemovesDislikedRows) {
  Personalizer personalizer(graph_.get());
  PersonalizationOptions options;
  options.criterion = InterestCriterion::TopCount(0);  // No positives.
  options.integration.min_satisfied = 0;
  options.max_negative = 5;
  options.integration.negative_mode = NegativeMode::kVeto;

  PersonalizationOutcome outcome;
  auto result = personalizer.PersonalizeAndExecute(TonightQuery(), options,
                                                   *db_, &outcome);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(outcome.negatives.size(), 2u);
  ASSERT_TRUE(outcome.mq.has_value());
  EXPECT_EQ(outcome.mq->exclusions().size(), 2u);
  // 'Asian Cuisine Stories' (documentary by Tarkowski) is vetoed; the
  // other five movies of tonight's programme survive.
  EXPECT_EQ(result->num_rows(), 5u);
  EXPECT_FALSE(result->Contains({Value::Str("Asian Cuisine Stories")}));
}

TEST_F(NegativePrefTest, PenaltyDemotesInsteadOfRemoving) {
  Personalizer personalizer(graph_.get());
  PersonalizationOptions options;
  options.criterion = InterestCriterion::TopCount(0);
  options.integration.min_satisfied = 0;
  options.max_negative = 5;
  options.integration.negative_mode = NegativeMode::kPenalty;

  PersonalizationOutcome outcome;
  auto result = personalizer.PersonalizeAndExecute(TonightQuery(), options,
                                                   *db_, &outcome);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_TRUE(outcome.mq.has_value());
  EXPECT_TRUE(outcome.mq->exclusions().empty());
  // All six movies stay, but the documentary sinks to the bottom.
  EXPECT_EQ(result->num_rows(), 6u);
  EXPECT_EQ(result->row(result->num_rows() - 1)[0],
            Value::Str("Asian Cuisine Stories"));
}

TEST_F(NegativePrefTest, PenaltyInteractsWithPositiveRanking) {
  // Positives top-3 + dislikes: the disliked documentary is not in the
  // positive answer anyway; add a movie that matches both a like and a
  // dislike to see the penalty multiply.
  UserProfile profile = JulieProfile();
  (void)profile.Add(AtomicPreference::Selection(
      {"GENRE", "genre"}, Value::Str("adventure"), -0.9));
  // Note: Julie also *likes* adventure at 0.5 in JulieProfile — replace
  // that with the dislike for this scenario.
  profile.AddOrUpdate(AtomicPreference::Selection(
      {"GENRE", "genre"}, Value::Str("adventure"), -0.9));
  auto graph = PersonalizationGraph::Build(&schema_, profile);
  ASSERT_TRUE(graph.ok()) << graph.status();
  Personalizer personalizer(&*graph);

  PersonalizationOptions options;
  options.criterion = InterestCriterion::TopCount(3);
  options.integration.min_satisfied = 1;
  options.max_negative = 5;
  options.integration.negative_mode = NegativeMode::kPenalty;

  PersonalizationOutcome outcome;
  auto result = personalizer.PersonalizeAndExecute(TonightQuery(), options,
                                                   *db_, &outcome);
  ASSERT_TRUE(result.ok()) << result.status();
  // 'Dream Theatre' is a comedy (like) AND an adventure (dislike 0.9*0.9
  // = 0.81 magnitude): its degree is scaled by (1-0.81) and it drops
  // below 'Night Chase'.
  ASSERT_GE(result->num_rows(), 3u);
  EXPECT_EQ(result->row(0)[0], Value::Str("The Quiet Comedy"));
  size_t dream_pos = 0;
  size_t chase_pos = 0;
  for (size_t i = 0; i < result->num_rows(); ++i) {
    if (result->row(i)[0] == Value::Str("Dream Theatre")) dream_pos = i;
    if (result->row(i)[0] == Value::Str("Night Chase")) chase_pos = i;
  }
  EXPECT_GT(dream_pos, chase_pos);
}

TEST_F(NegativePrefTest, SqRejectsDislikes) {
  Personalizer personalizer(graph_.get());
  PersonalizationOptions options;
  options.criterion = InterestCriterion::TopCount(2);
  options.integration.min_satisfied = 1;
  options.max_negative = 5;
  options.approach = IntegrationApproach::kSingleQuery;
  auto outcome = personalizer.Personalize(TonightQuery(), options);
  EXPECT_EQ(outcome.status().code(), StatusCode::kUnimplemented);
}

TEST_F(NegativePrefTest, ExceptSqlRoundTrips) {
  Personalizer personalizer(graph_.get());
  PersonalizationOptions options;
  options.criterion = InterestCriterion::TopCount(2);
  options.integration.min_satisfied = 1;
  options.max_negative = 5;
  options.integration.negative_mode = NegativeMode::kVeto;
  auto outcome = personalizer.Personalize(TonightQuery(), options);
  ASSERT_TRUE(outcome.ok()) << outcome.status();

  std::string sql = ToSql(*outcome->mq);
  EXPECT_NE(sql.find(" except ("), std::string::npos) << sql;
  auto parsed = ParseStatement(sql);
  ASSERT_TRUE(parsed.ok()) << parsed.status() << "\n" << sql;
  ASSERT_TRUE(parsed->is_compound());
  EXPECT_EQ(parsed->compound().exclusions().size(), 2u);
  EXPECT_EQ(ToSql(parsed->compound()), sql);
}

TEST_F(NegativePrefTest, NegativeDoiSqlRoundTrips) {
  Personalizer personalizer(graph_.get());
  PersonalizationOptions options;
  options.criterion = InterestCriterion::TopCount(2);
  options.integration.min_satisfied = 1;
  options.max_negative = 5;
  options.integration.negative_mode = NegativeMode::kPenalty;
  auto outcome = personalizer.Personalize(TonightQuery(), options);
  ASSERT_TRUE(outcome.ok()) << outcome.status();

  std::string sql = ToSql(*outcome->mq);
  EXPECT_NE(sql.find("-0.9 as doi"), std::string::npos) << sql;
  auto parsed = ParseStatement(sql);
  ASSERT_TRUE(parsed.ok()) << parsed.status() << "\n" << sql;
  EXPECT_EQ(ToSql(parsed->compound()), sql);
}

TEST_F(NegativePrefTest, TopNTruncatesRankedDelivery) {
  Personalizer personalizer(graph_.get());
  PersonalizationOptions options;
  options.criterion = InterestCriterion::TopCount(3);
  options.integration.min_satisfied = 1;
  options.top_n = 2;
  auto result =
      personalizer.PersonalizeAndExecute(TonightQuery(), options, *db_);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->num_rows(), 2u);
  EXPECT_EQ(result->row(0)[0], Value::Str("The Quiet Comedy"));
  EXPECT_EQ(result->degrees().size(), 2u);
}

TEST_F(NegativePrefTest, UnsatisfiableDislikeDropped) {
  // A dislike conflicting with the query through a to-one chain can never
  // match and must not be selected.
  UserProfile profile;
  (void)profile.Add(
      AtomicPreference::Join({"PLAY", "tid"}, {"THEATRE", "tid"}, 1.0));
  (void)profile.Add(AtomicPreference::Selection(
      {"THEATRE", "region"}, Value::Str("downtown"), -0.9));
  auto graph = PersonalizationGraph::Build(&schema_, profile);
  ASSERT_TRUE(graph.ok());
  PreferenceSelector selector(&*graph);

  // PLAY joined to THEATRE pinned to uptown.
  auto pinned = ParseSelectQuery(
      "select PL.date from PLAY PL, THEATRE TH where PL.tid=TH.tid and "
      "TH.region='uptown'");
  ASSERT_TRUE(pinned.ok());
  auto negatives = selector.SelectNegative(*pinned, 10);
  ASSERT_TRUE(negatives.ok()) << negatives.status();
  EXPECT_TRUE(negatives->empty());
}

TEST_F(NegativePrefTest, SignedCombinedDoiHelper) {
  EXPECT_DOUBLE_EQ(SignedCombinedDoi(0.8, {}), 0.8);
  EXPECT_NEAR(SignedCombinedDoi(0.8, {-0.5}), 0.3, 1e-12);
  EXPECT_NEAR(SignedCombinedDoi(0.8, {-1.0}), -0.2, 1e-12);
  // Two 0.5 dislikes combine by noisy-or: 1-(0.5*0.5) = 0.75.
  EXPECT_NEAR(SignedCombinedDoi(1.0, {-0.5, -0.5}), 0.25, 1e-12);
  EXPECT_NEAR(NegativeCombinedDoi({-0.5, -0.5}), 0.75, 1e-12);
  // A dislike-only row ranks strictly below a neutral one.
  EXPECT_LT(SignedCombinedDoi(0.0, {-0.3}), 0.0);
}

}  // namespace
}  // namespace qp
