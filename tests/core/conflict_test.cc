#include "qp/core/conflict.h"

#include "common/test_util.h"
#include "gtest/gtest.h"
#include "qp/data/movie_db.h"
#include "qp/data/paper_example.h"
#include "qp/query/sql_parser.h"

namespace qp {
namespace {

class ConflictTest : public ::testing::Test {
 protected:
  void SetUp() override {
    schema_ = MovieSchema();
    auto graph = PersonalizationGraph::Build(&schema_, JulieProfile());
    ASSERT_TRUE(graph.ok());
    graph_ = std::make_unique<PersonalizationGraph>(std::move(graph).value());
  }

  QueryGraph Build(const std::string& sql) {
    auto query = ParseSelectQuery(sql);
    EXPECT_TRUE(query.ok()) << query.status();
    auto graph = QueryGraph::Build(*query, schema_);
    EXPECT_TRUE(graph.ok()) << graph.status();
    return std::move(graph).value();
  }

  const JoinEdge& Join(const std::string& from, const std::string& to) {
    for (const JoinEdge& e : graph_->JoinsFrom(from)) {
      if (e.to.table == to) return e;
    }
    static JoinEdge dummy;
    ADD_FAILURE() << "join " << from << "->" << to;
    return dummy;
  }

  SelectionEdge Sel(const std::string& table, const std::string& column,
                    const std::string& value, double doi = 0.5) {
    return SelectionEdge{{table, column}, Value::Str(value), doi};
  }

  Schema schema_;
  std::unique_ptr<PersonalizationGraph> graph_;
};

TEST_F(ConflictTest, DirectSelectionConflict) {
  // The paper's example: query asks uptown, preference says downtown.
  QueryGraph qg =
      Build("select TH.name from THEATRE TH where TH.region='uptown'");
  PreferencePath path("TH", "THEATRE");
  path = path.ExtendedBy(Sel("THEATRE", "region", "downtown"));
  EXPECT_TRUE(ConflictDetector::ConflictsWithQuery(path, qg));
}

TEST_F(ConflictTest, SameValueIsNotAConflict) {
  QueryGraph qg =
      Build("select TH.name from THEATRE TH where TH.region='downtown'");
  PreferencePath path("TH", "THEATRE");
  path = path.ExtendedBy(Sel("THEATRE", "region", "downtown"));
  EXPECT_FALSE(ConflictDetector::ConflictsWithQuery(path, qg));
}

TEST_F(ConflictTest, DifferentAttributeNoConflict) {
  QueryGraph qg =
      Build("select TH.name from THEATRE TH where TH.name='Odeon'");
  PreferencePath path("TH", "THEATRE");
  path = path.ExtendedBy(Sel("THEATRE", "region", "downtown"));
  EXPECT_FALSE(ConflictDetector::ConflictsWithQuery(path, qg));
}

TEST_F(ConflictTest, ConflictThroughToOneChain) {
  // Query pins the theatre's region through PLAY -> THEATRE (to-one);
  // a preference for another region through the same chain conflicts.
  QueryGraph qg = Build(
      "select PL.date from PLAY PL, THEATRE TH where PL.tid=TH.tid and "
      "TH.region='uptown'");
  PreferencePath path("PL", "PLAY");
  path = path.ExtendedBy(Join("PLAY", "THEATRE"));
  path = path.ExtendedBy(Sel("THEATRE", "region", "downtown"));
  ASSERT_TRUE(path.AllJoinsToOne());
  EXPECT_TRUE(ConflictDetector::ConflictsWithQuery(path, qg));
}

TEST_F(ConflictTest, NoConflictThroughToManyChain) {
  // MOVIE -> GENRE is to-many: a movie can have several genres, so a
  // genre preference never conflicts with a genre condition in the query.
  QueryGraph qg = Build(
      "select MV.title from MOVIE MV, GENRE GN where MV.mid=GN.mid and "
      "GN.genre='thriller'");
  PreferencePath path("MV", "MOVIE");
  path = path.ExtendedBy(Join("MOVIE", "GENRE"));
  path = path.ExtendedBy(Sel("GENRE", "genre", "comedy"));
  ASSERT_FALSE(path.AllJoinsToOne());
  EXPECT_FALSE(ConflictDetector::ConflictsWithQuery(path, qg));
}

TEST_F(ConflictTest, NoConflictWhenQueryLacksTheChain) {
  // The query never joins THEATRE, so the preference binds a fresh chain.
  QueryGraph qg = Build(
      "select PL.date from PLAY PL where PL.date='2/7/2003'");
  PreferencePath path("PL", "PLAY");
  path = path.ExtendedBy(Join("PLAY", "THEATRE"));
  path = path.ExtendedBy(Sel("THEATRE", "region", "downtown"));
  EXPECT_FALSE(ConflictDetector::ConflictsWithQuery(path, qg));
}

TEST_F(ConflictTest, JoinOnlyPathNeverConflicts) {
  QueryGraph qg =
      Build("select TH.name from THEATRE TH where TH.region='uptown'");
  PreferencePath path("TH", "THEATRE");
  path = path.ExtendedBy(Join("THEATRE", "PLAY"));
  EXPECT_FALSE(ConflictDetector::ConflictsWithQuery(path, qg));
}

TEST_F(ConflictTest, PairwiseConflictSameAttribute) {
  PreferencePath a("TH", "THEATRE");
  a = a.ExtendedBy(Sel("THEATRE", "region", "downtown"));
  PreferencePath b("TH", "THEATRE");
  b = b.ExtendedBy(Sel("THEATRE", "region", "uptown"));
  EXPECT_TRUE(ConflictDetector::Conflicting(a, b));
  EXPECT_TRUE(ConflictDetector::Conflicting(b, a));
  EXPECT_FALSE(ConflictDetector::Conflicting(a, a));  // Same value.
}

TEST_F(ConflictTest, PairwiseNoConflictAcrossAnchors) {
  PreferencePath a("T1", "THEATRE");
  a = a.ExtendedBy(Sel("THEATRE", "region", "downtown"));
  PreferencePath b("T2", "THEATRE");
  b = b.ExtendedBy(Sel("THEATRE", "region", "uptown"));
  EXPECT_FALSE(ConflictDetector::Conflicting(a, b));
}

TEST_F(ConflictTest, PairwiseNoConflictThroughToMany) {
  // Two genre preferences via MOVIE -> GENRE (to-many) can both hold.
  PreferencePath a("MV", "MOVIE");
  a = a.ExtendedBy(Join("MOVIE", "GENRE"));
  a = a.ExtendedBy(Sel("GENRE", "genre", "comedy"));
  PreferencePath b("MV", "MOVIE");
  b = b.ExtendedBy(Join("MOVIE", "GENRE"));
  b = b.ExtendedBy(Sel("GENRE", "genre", "thriller"));
  EXPECT_FALSE(ConflictDetector::Conflicting(a, b));
}

TEST_F(ConflictTest, PairwiseConflictThroughToOneChain) {
  // Two different regions through PLAY -> THEATRE (to-one) conflict.
  PreferencePath a("PL", "PLAY");
  a = a.ExtendedBy(Join("PLAY", "THEATRE"));
  a = a.ExtendedBy(Sel("THEATRE", "region", "downtown"));
  PreferencePath b("PL", "PLAY");
  b = b.ExtendedBy(Join("PLAY", "THEATRE"));
  b = b.ExtendedBy(Sel("THEATRE", "region", "uptown"));
  EXPECT_TRUE(ConflictDetector::Conflicting(a, b));
}

TEST_F(ConflictTest, PairwiseDifferentAttributesNoConflict) {
  PreferencePath a("PL", "PLAY");
  a = a.ExtendedBy(Join("PLAY", "THEATRE"));
  a = a.ExtendedBy(Sel("THEATRE", "region", "downtown"));
  PreferencePath b("PL", "PLAY");
  b = b.ExtendedBy(Join("PLAY", "THEATRE"));
  b = b.ExtendedBy(Sel("THEATRE", "name", "Odeon"));
  EXPECT_FALSE(ConflictDetector::Conflicting(a, b));
}

}  // namespace
}  // namespace qp
