#include "qp/core/semantics.h"

#include "common/test_util.h"
#include "gtest/gtest.h"
#include "qp/core/personalizer.h"
#include "qp/data/movie_db.h"
#include "qp/data/paper_example.h"
#include "qp/query/sql_parser.h"

namespace qp {
namespace {

TEST(AssociationFilterTest, ReflexiveAndSymmetric) {
  AssociationSemanticFilter filter;
  EXPECT_TRUE(filter.Associated(Value::Str("x"), Value::Str("x")));
  EXPECT_FALSE(filter.Associated(Value::Str("x"), Value::Str("y")));
  filter.AddAssociation(Value::Str("x"), Value::Str("y"));
  EXPECT_TRUE(filter.Associated(Value::Str("x"), Value::Str("y")));
  EXPECT_TRUE(filter.Associated(Value::Str("y"), Value::Str("x")));
  EXPECT_FALSE(filter.Associated(Value::Str("y"), Value::Str("z")));
}

class SemanticSelectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    schema_ = MovieSchema();
    auto graph = PersonalizationGraph::Build(&schema_, JulieProfile());
    ASSERT_TRUE(graph.ok());
    graph_ = std::make_unique<PersonalizationGraph>(std::move(graph).value());
    selector_ = std::make_unique<PreferenceSelector>(graph_.get());
    // The paper's example: W. Allen is semantically related to comedies;
    // (M. Tarkowski would be semantically conflicting — he is simply not
    // associated, so the filter drops him.)
    filter_.AddAssociation(Value::Str("comedy"), Value::Str("W. Allen"));
    filter_.AddAssociation(Value::Str("comedy"), Value::Str("D. Lynch"));
  }

  SelectQuery ComedyQuery() {
    auto q = ParseSelectQuery(
        "select MV.title from MOVIE MV, GENRE GN where MV.mid=GN.mid and "
        "GN.genre='comedy'");
    return std::move(q).value();
  }

  Schema schema_;
  std::unique_ptr<PersonalizationGraph> graph_;
  std::unique_ptr<PreferenceSelector> selector_;
  AssociationSemanticFilter filter_;
};

TEST_F(SemanticSelectionTest, FilterNarrowsSelection) {
  // Without the filter, Julie's actors and directors are all related to a
  // comedy query; with it, only the associated directors survive.
  auto unfiltered =
      selector_->Select(ComedyQuery(), InterestCriterion::TopCount(50));
  ASSERT_TRUE(unfiltered.ok());
  SelectionStats stats;
  auto filtered = selector_->Select(
      ComedyQuery(), InterestCriterion::TopCount(50), &stats, &filter_);
  ASSERT_TRUE(filtered.ok());

  EXPECT_LT(filtered->size(), unfiltered->size());
  EXPECT_GT(stats.pruned_semantic, 0u);
  for (const PreferencePath& path : *filtered) {
    const Value& value = path.selection()->value;
    EXPECT_TRUE(value == Value::Str("W. Allen") ||
                value == Value::Str("D. Lynch") ||
                value == Value::Str("comedy"))
        << path.ToString();
  }
}

TEST_F(SemanticSelectionTest, SemanticOutputIsSubsetOfSyntactic) {
  // The paper's containment claim: semantically related preferences are a
  // subset of the syntactically related ones.
  auto syntactic =
      selector_->Select(ComedyQuery(), InterestCriterion::TopCount(100));
  auto semantic = selector_->Select(
      ComedyQuery(), InterestCriterion::TopCount(100), nullptr, &filter_);
  ASSERT_TRUE(syntactic.ok());
  ASSERT_TRUE(semantic.ok());
  for (const PreferencePath& path : *semantic) {
    bool found = false;
    for (const PreferencePath& other : *syntactic) {
      if (path.SameShape(other)) found = true;
    }
    EXPECT_TRUE(found) << path.ToString();
  }
}

TEST_F(SemanticSelectionTest, QueriesWithoutLiteralsAreUnconstrained) {
  auto query = ParseSelectQuery(
      "select MV.title from MOVIE MV, PLAY PL where MV.mid=PL.mid");
  ASSERT_TRUE(query.ok());
  auto filtered = selector_->Select(
      *query, InterestCriterion::TopCount(100), nullptr, &filter_);
  auto unfiltered =
      selector_->Select(*query, InterestCriterion::TopCount(100));
  ASSERT_TRUE(filtered.ok());
  ASSERT_TRUE(unfiltered.ok());
  EXPECT_EQ(filtered->size(), unfiltered->size());
}

TEST_F(SemanticSelectionTest, AgreesWithBruteForceUnderFilter) {
  for (size_t k : {1u, 2u, 5u, 20u}) {
    auto fast = selector_->Select(
        ComedyQuery(), InterestCriterion::TopCount(k), nullptr, &filter_);
    auto slow = selector_->SelectBruteForce(
        ComedyQuery(), InterestCriterion::TopCount(k), nullptr, &filter_);
    ASSERT_TRUE(fast.ok());
    ASSERT_TRUE(slow.ok());
    ASSERT_EQ(fast->size(), slow->size()) << "K=" << k;
    for (size_t i = 0; i < fast->size(); ++i) {
      EXPECT_TRUE((*fast)[i].SameShape((*slow)[i])) << "K=" << k;
    }
  }
}

TEST_F(SemanticSelectionTest, EndToEndThroughPersonalizer) {
  auto db = BuildPaperDatabase();
  ASSERT_TRUE(db.ok());
  Personalizer personalizer(graph_.get());
  PersonalizationOptions options;
  options.criterion = InterestCriterion::TopCount(3);
  options.integration.min_satisfied = 1;
  options.semantic_filter = &filter_;
  PersonalizationOutcome outcome;
  auto result = personalizer.PersonalizeAndExecute(ComedyQuery(), options,
                                                   *db, &outcome);
  ASSERT_TRUE(result.ok()) << result.status();
  for (const PreferencePath& path : outcome.selected) {
    EXPECT_NE(path.selection()->value, Value::Str("N. Kidman"))
        << "unassociated actress selected";
  }
}

}  // namespace
}  // namespace qp
