#include "qp/core/query_graph.h"

#include "common/test_util.h"
#include "gtest/gtest.h"
#include "qp/data/movie_db.h"
#include "qp/data/paper_example.h"
#include "qp/query/sql_parser.h"

namespace qp {
namespace {

class QueryGraphTest : public ::testing::Test {
 protected:
  void SetUp() override { schema_ = MovieSchema(); }

  QueryGraph Build(const std::string& sql) {
    auto query = ParseSelectQuery(sql);
    EXPECT_TRUE(query.ok()) << query.status();
    auto graph = QueryGraph::Build(*query, schema_);
    EXPECT_TRUE(graph.ok()) << graph.status();
    return std::move(graph).value();
  }

  Schema schema_;
};

TEST_F(QueryGraphTest, VariablesAndTables) {
  QueryGraph g = Build(
      "select MV.title from MOVIE MV, PLAY PL where MV.mid=PL.mid");
  EXPECT_EQ(g.variables().size(), 2u);
  EXPECT_TRUE(g.UsesTable("MOVIE"));
  EXPECT_TRUE(g.UsesTable("PLAY"));
  EXPECT_FALSE(g.UsesTable("GENRE"));
}

TEST_F(QueryGraphTest, SelectionsPerVariable) {
  QueryGraph g = Build(
      "select MV.title from MOVIE MV, PLAY PL where MV.mid=PL.mid and "
      "PL.date='2/7/2003' and MV.year=1999");
  ASSERT_EQ(g.SelectionsOn("PL").size(), 1u);
  EXPECT_EQ(g.SelectionsOn("PL")[0].first, "date");
  EXPECT_EQ(g.SelectionsOn("PL")[0].second, Value::Str("2/7/2003"));
  ASSERT_EQ(g.SelectionsOn("MV").size(), 1u);
  EXPECT_TRUE(g.SelectionsOn("ZZ").empty());
}

TEST_F(QueryGraphTest, FollowJoinBothDirections) {
  QueryGraph g = Build(
      "select MV.title from MOVIE MV, PLAY PL where MV.mid=PL.mid");
  // From MV following MOVIE.mid=PLAY.mid reaches PL...
  auto to_pl = g.FollowJoin("MV", {"MOVIE", "mid"}, {"PLAY", "mid"});
  ASSERT_TRUE(to_pl.has_value());
  EXPECT_EQ(*to_pl, "PL");
  // ...and the reverse direction reaches MV, regardless of the atom's
  // left/right orientation in the SQL text.
  auto to_mv = g.FollowJoin("PL", {"PLAY", "mid"}, {"MOVIE", "mid"});
  ASSERT_TRUE(to_mv.has_value());
  EXPECT_EQ(*to_mv, "MV");
}

TEST_F(QueryGraphTest, FollowJoinMissing) {
  QueryGraph g = Build(
      "select MV.title from MOVIE MV, PLAY PL where MV.mid=PL.mid");
  EXPECT_FALSE(
      g.FollowJoin("MV", {"MOVIE", "mid"}, {"GENRE", "mid"}).has_value());
  EXPECT_FALSE(
      g.FollowJoin("PL", {"PLAY", "tid"}, {"THEATRE", "tid"}).has_value());
}

TEST_F(QueryGraphTest, ReplicatedRelations) {
  QueryGraph g = Build(
      "select A1.name from ACTOR A1, ACTOR A2 where A1.name='x' and "
      "A2.name='y'");
  EXPECT_EQ(g.variables().size(), 2u);
  EXPECT_TRUE(g.UsesTable("ACTOR"));
  EXPECT_EQ(g.SelectionsOn("A1").size(), 1u);
  EXPECT_EQ(g.SelectionsOn("A2").size(), 1u);
}

TEST_F(QueryGraphTest, InvalidQueryRejected) {
  auto query = ParseSelectQuery("select MV.title from MOVIE MV where "
                                "MV.nope=1");
  ASSERT_TRUE(query.ok());
  EXPECT_FALSE(QueryGraph::Build(*query, schema_).ok());
}

TEST_F(QueryGraphTest, NoWhereClause) {
  QueryGraph g = Build("select MV.title from MOVIE MV");
  EXPECT_TRUE(g.SelectionsOn("MV").empty());
  EXPECT_TRUE(g.UsesTable("MOVIE"));
}

}  // namespace
}  // namespace qp
