#include "qp/core/integration.h"

#include "common/test_util.h"
#include "gtest/gtest.h"
#include "qp/core/conflict.h"
#include "qp/core/selection.h"
#include "qp/data/movie_db.h"
#include "qp/data/paper_example.h"
#include "qp/data/workload.h"
#include "qp/exec/executor.h"
#include "qp/query/sql_parser.h"
#include "qp/query/sql_writer.h"

namespace qp {
namespace {

using testing_util::SameRows;

class IntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    schema_ = MovieSchema();
    auto graph = PersonalizationGraph::Build(&schema_, JulieProfile());
    ASSERT_TRUE(graph.ok());
    graph_ = std::make_unique<PersonalizationGraph>(std::move(graph).value());
    selector_ = std::make_unique<PreferenceSelector>(graph_.get());
    auto db = BuildPaperDatabase();
    ASSERT_TRUE(db.ok());
    db_ = std::make_unique<Database>(std::move(db).value());
  }

  std::vector<PreferencePath> TopK(size_t k) {
    auto selected =
        selector_->Select(TonightQuery(), InterestCriterion::TopCount(k));
    EXPECT_TRUE(selected.ok()) << selected.status();
    return std::move(selected).value();
  }

  Schema schema_;
  std::unique_ptr<PersonalizationGraph> graph_;
  std::unique_ptr<PreferenceSelector> selector_;
  std::unique_ptr<Database> db_;
  PreferenceIntegrator integrator_;
};

TEST_F(IntegrationTest, SqStructureForPaperExample) {
  IntegrationParams params;
  params.min_satisfied = 2;  // L = 2 of the top K = 3, M = 0.
  auto sq = integrator_.BuildSingleQuery(TonightQuery(), TopK(3), params);
  ASSERT_TRUE(sq.ok()) << sq.status();

  EXPECT_TRUE(sq->distinct());
  QP_EXPECT_OK(sq->Validate(schema_));
  // Original MV, PL plus GENRE, DIRECTED, DIRECTOR, CAST, ACTOR.
  EXPECT_EQ(sq->from().size(), 7u);
  // Where: original 2 atoms AND an OR of C(3,2)=3 conjunctions.
  ASSERT_EQ(sq->where()->kind(), ConditionNode::Kind::kAnd);
  const auto& top = sq->where()->children();
  ASSERT_EQ(top.back()->kind(), ConditionNode::Kind::kOr);
  EXPECT_EQ(top.back()->children().size(), 3u);
}

TEST_F(IntegrationTest, SqExecutesToPaperResult) {
  IntegrationParams params;
  params.min_satisfied = 2;
  auto sq = integrator_.BuildSingleQuery(TonightQuery(), TopK(3), params);
  ASSERT_TRUE(sq.ok());
  Executor executor(db_.get());
  auto result = executor.Execute(*sq);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->num_rows(), 3u);
  EXPECT_TRUE(result->Contains({Value::Str("The Quiet Comedy")}));
  EXPECT_TRUE(result->Contains({Value::Str("Night Chase")}));
  EXPECT_TRUE(result->Contains({Value::Str("Dream Theatre")}));
}

TEST_F(IntegrationTest, MqStructureForPaperExample) {
  IntegrationParams params;
  params.min_satisfied = 2;
  auto mq = integrator_.BuildMultipleQueries(TonightQuery(), TopK(3), params);
  ASSERT_TRUE(mq.ok()) << mq.status();
  QP_EXPECT_OK(mq->Validate(schema_));

  ASSERT_EQ(mq->parts().size(), 3u);  // K - M partial queries.
  EXPECT_NEAR(mq->parts()[0].degree, 0.81, 1e-12);
  EXPECT_NEAR(mq->parts()[1].degree, 0.8, 1e-12);
  EXPECT_NEAR(mq->parts()[2].degree, 0.72, 1e-12);
  for (const CompoundPart& part : mq->parts()) {
    EXPECT_TRUE(part.query.distinct());
    // Original query vars plus this preference's chain only.
    EXPECT_GE(part.query.from().size(), 3u);
    EXPECT_LE(part.query.from().size(), 4u);
  }
  EXPECT_EQ(mq->having().kind, HavingClause::Kind::kCountAtLeast);
  EXPECT_EQ(mq->having().min_count, 2u);
  EXPECT_TRUE(mq->order_by_degree());
}

TEST_F(IntegrationTest, MqExecutesToPaperResultRanked) {
  IntegrationParams params;
  params.min_satisfied = 2;
  auto mq = integrator_.BuildMultipleQueries(TonightQuery(), TopK(3), params);
  ASSERT_TRUE(mq.ok());
  Executor executor(db_.get());
  auto result = executor.Execute(*mq);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->num_rows(), 3u);
  // Ranked: Quiet Comedy satisfies all three preferences.
  EXPECT_EQ(result->row(0)[0], Value::Str("The Quiet Comedy"));
  EXPECT_EQ(result->counts()[0], 3u);
}

TEST_F(IntegrationTest, SqAndMqReturnSameRows) {
  for (size_t k : {1u, 2u, 3u, 5u}) {
    std::vector<PreferencePath> prefs = TopK(k);
    for (size_t l = 1; l <= prefs.size(); ++l) {
      IntegrationParams params;
      params.min_satisfied = l;
      auto sq = integrator_.BuildSingleQuery(TonightQuery(), prefs, params);
      auto mq =
          integrator_.BuildMultipleQueries(TonightQuery(), prefs, params);
      ASSERT_TRUE(sq.ok()) << sq.status();
      ASSERT_TRUE(mq.ok()) << mq.status();
      Executor executor(db_.get());
      auto sq_result = executor.Execute(*sq);
      auto mq_result = executor.Execute(*mq);
      ASSERT_TRUE(sq_result.ok());
      ASSERT_TRUE(mq_result.ok());
      EXPECT_TRUE(SameRows(sq_result->rows(), mq_result->rows()))
          << "K=" << k << " L=" << l << "\nSQ: " << ToSql(*sq);
    }
  }
}

TEST_F(IntegrationTest, MandatoryPreferencesRestrictEveryResult) {
  std::vector<PreferencePath> prefs = TopK(3);
  IntegrationParams params;
  params.mandatory_count = 1;  // comedy is mandatory.
  params.min_satisfied = 1;
  auto mq = integrator_.BuildMultipleQueries(TonightQuery(), prefs, params);
  ASSERT_TRUE(mq.ok()) << mq.status();
  EXPECT_EQ(mq->parts().size(), 2u);  // K - M.
  Executor executor(db_.get());
  auto result = executor.Execute(*mq);
  ASSERT_TRUE(result.ok());
  // Comedies satisfying >= 1 of {lynch, kidman}: Quiet Comedy (both),
  // Dream Theatre (kidman). Night Chase is not a comedy.
  EXPECT_EQ(result->num_rows(), 2u);
  EXPECT_FALSE(result->Contains({Value::Str("Night Chase")}));
}

TEST_F(IntegrationTest, MandatoryOnlyDegenerate) {
  std::vector<PreferencePath> prefs = TopK(2);
  IntegrationParams params;
  params.mandatory_count = 2;
  params.min_satisfied = 0;
  auto mq = integrator_.BuildMultipleQueries(TonightQuery(), prefs, params);
  ASSERT_TRUE(mq.ok()) << mq.status();
  ASSERT_EQ(mq->parts().size(), 1u);
  Executor executor(db_.get());
  auto result = executor.Execute(*mq);
  ASSERT_TRUE(result.ok());
  // Comedy AND D. Lynch: only The Quiet Comedy.
  EXPECT_EQ(result->num_rows(), 1u);
  EXPECT_TRUE(result->Contains({Value::Str("The Quiet Comedy")}));
}

TEST_F(IntegrationTest, ParameterValidation) {
  std::vector<PreferencePath> prefs = TopK(3);
  IntegrationParams params;
  params.mandatory_count = 4;  // M > K.
  EXPECT_EQ(integrator_.BuildSingleQuery(TonightQuery(), prefs, params)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  params.mandatory_count = 0;
  params.min_satisfied = 4;  // L > K - M.
  EXPECT_EQ(integrator_.BuildMultipleQueries(TonightQuery(), prefs, params)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST_F(IntegrationTest, MinDegreeOnlyInMq) {
  std::vector<PreferencePath> prefs = TopK(3);
  IntegrationParams params;
  params.min_degree = 0.75;
  EXPECT_EQ(integrator_.BuildSingleQuery(TonightQuery(), prefs, params)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  auto mq = integrator_.BuildMultipleQueries(TonightQuery(), prefs, params);
  ASSERT_TRUE(mq.ok()) << mq.status();
  EXPECT_EQ(mq->having().kind, HavingClause::Kind::kDegreeAbove);
  Executor executor(db_.get());
  auto result = executor.Execute(*mq);
  ASSERT_TRUE(result.ok());
  for (double degree : result->degrees()) {
    EXPECT_GT(degree, 0.75);
  }
}

TEST_F(IntegrationTest, EmptyPreferencesPassThrough) {
  IntegrationParams params;
  auto sq = integrator_.BuildSingleQuery(TonightQuery(), {}, params);
  ASSERT_TRUE(sq.ok());
  EXPECT_EQ(ToSql(*sq), ToSql(TonightQuery()));
  auto mq = integrator_.BuildMultipleQueries(TonightQuery(), {}, params);
  ASSERT_TRUE(mq.ok());
  EXPECT_EQ(mq->parts().size(), 1u);
  EXPECT_EQ(mq->having().kind, HavingClause::Kind::kNone);
}

TEST_F(IntegrationTest, SqCombinationCapEnforced) {
  std::vector<PreferencePath> prefs = TopK(9);
  ASSERT_GE(prefs.size(), 8u);
  IntegrationParams params;
  params.min_satisfied = 4;
  params.max_combinations = 10;  // C(9, 4) = 126 > 10.
  EXPECT_EQ(integrator_.BuildSingleQuery(TonightQuery(), prefs, params)
                .status()
                .code(),
            StatusCode::kOutOfRange);
}

// --- Tuple variable allocation rules (Section 6) ---

class VariableAllocationTest : public ::testing::Test {
 protected:
  void SetUp() override { schema_ = MovieSchema(); }

  /// Builds a profile with the given selection preferences (plus both
  /// directions of all joins at degree 1 so paths exist).
  PersonalizationGraph Graph(const std::vector<AtomicPreference>& prefs) {
    UserProfile profile;
    for (const SchemaJoin& join : schema_.joins()) {
      (void)profile.Add(AtomicPreference::Join(join.left, join.right, 1.0));
      (void)profile.Add(AtomicPreference::Join(join.right, join.left, 1.0));
    }
    for (const AtomicPreference& p : prefs) {
      (void)profile.Add(p);
    }
    auto graph = PersonalizationGraph::Build(&schema_, profile);
    EXPECT_TRUE(graph.ok()) << graph.status();
    return std::move(graph).value();
  }

  SelectQuery PlaysQuery() {
    auto q = ParseSelectQuery(
        "select PL.date from PLAY PL where PL.date='2/7/2003'");
    return std::move(q).value();
  }

  Schema schema_;
  PreferenceIntegrator integrator_;
};

TEST_F(VariableAllocationTest, ToOneChainsShareVariables) {
  // Two preferences through PLAY -> THEATRE (to-one): name and region.
  // The THEATRE variable must be shared (one extra variable, not two).
  PersonalizationGraph graph = Graph({
      AtomicPreference::Selection({"THEATRE", "region"},
                                  Value::Str("downtown"), 0.9),
      AtomicPreference::Selection({"THEATRE", "name"}, Value::Str("Odeon"),
                                  0.8),
  });
  PreferenceSelector selector(&graph);
  auto prefs =
      selector.Select(PlaysQuery(), InterestCriterion::TopCount(2));
  ASSERT_TRUE(prefs.ok());
  ASSERT_EQ(prefs->size(), 2u);

  IntegrationParams params;
  params.min_satisfied = 2;
  auto sq = integrator_.BuildSingleQuery(PlaysQuery(), *prefs, params);
  ASSERT_TRUE(sq.ok()) << sq.status();
  // PL + one shared THEATRE variable.
  EXPECT_EQ(sq->from().size(), 2u) << ToSql(*sq);
}

TEST_F(VariableAllocationTest, ToManyChainsGetFreshVariables) {
  // Two genre preferences through MOVIE -> GENRE (to-many): conjunction
  // must use two different GENRE variables (the "I. Rossellini and
  // A. Hopkins both star" case).
  PersonalizationGraph graph = Graph({
      AtomicPreference::Selection({"GENRE", "genre"}, Value::Str("comedy"),
                                  0.9),
      AtomicPreference::Selection({"GENRE", "genre"},
                                  Value::Str("thriller"), 0.8),
  });
  auto query = ParseSelectQuery("select MV.title from MOVIE MV where "
                                "MV.year=2000");
  ASSERT_TRUE(query.ok());
  PreferenceSelector selector(&graph);
  auto prefs = selector.Select(*query, InterestCriterion::TopCount(2));
  ASSERT_TRUE(prefs.ok());
  ASSERT_EQ(prefs->size(), 2u);

  IntegrationParams params;
  params.min_satisfied = 2;
  auto sq = integrator_.BuildSingleQuery(*query, *prefs, params);
  ASSERT_TRUE(sq.ok()) << sq.status();
  // MV + two distinct GENRE variables.
  EXPECT_EQ(sq->from().size(), 3u) << ToSql(*sq);
  QP_EXPECT_OK(sq->Validate(schema_));
}

TEST_F(VariableAllocationTest, ConflictingPairCannotBeConjoined) {
  // downtown vs uptown through the to-one PLAY -> THEATRE chain: L=2 has
  // no conflict-free combination.
  PersonalizationGraph graph = Graph({
      AtomicPreference::Selection({"THEATRE", "region"},
                                  Value::Str("downtown"), 0.9),
      AtomicPreference::Selection({"THEATRE", "region"},
                                  Value::Str("uptown"), 0.8),
  });
  PreferenceSelector selector(&graph);
  auto prefs =
      selector.Select(PlaysQuery(), InterestCriterion::TopCount(2));
  ASSERT_TRUE(prefs.ok());
  ASSERT_EQ(prefs->size(), 2u);

  IntegrationParams params;
  params.min_satisfied = 2;
  EXPECT_EQ(integrator_.BuildSingleQuery(PlaysQuery(), *prefs, params)
                .status()
                .code(),
            StatusCode::kFailedPrecondition);

  // With L=1 the disjunction keeps them apart and integration succeeds.
  params.min_satisfied = 1;
  auto sq = integrator_.BuildSingleQuery(PlaysQuery(), *prefs, params);
  ASSERT_TRUE(sq.ok()) << sq.status();
}

TEST_F(VariableAllocationTest, ConflictingMandatoryFails) {
  PersonalizationGraph graph = Graph({
      AtomicPreference::Selection({"THEATRE", "region"},
                                  Value::Str("downtown"), 0.9),
      AtomicPreference::Selection({"THEATRE", "region"},
                                  Value::Str("uptown"), 0.8),
  });
  PreferenceSelector selector(&graph);
  auto prefs =
      selector.Select(PlaysQuery(), InterestCriterion::TopCount(2));
  ASSERT_TRUE(prefs.ok());
  IntegrationParams params;
  params.mandatory_count = 2;
  params.min_satisfied = 0;
  EXPECT_EQ(integrator_.BuildMultipleQueries(PlaysQuery(), *prefs, params)
                .status()
                .code(),
            StatusCode::kFailedPrecondition);
}

// --- SQ == MQ equivalence on random inputs ---

class SqMqEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SqMqEquivalenceTest, SameRowsOnRandomWorkload) {
  Schema schema = MovieSchema();
  MovieDbConfig config;
  config.num_movies = 60;
  config.num_actors = 30;
  config.num_directors = 12;
  config.num_theatres = 6;
  config.seed = GetParam();
  auto db = GenerateMovieDatabase(config);
  ASSERT_TRUE(db.ok());
  auto pools = MovieCandidatePools(*db);
  ASSERT_TRUE(pools.ok());
  ProfileGenerator profiles(&schema, std::move(pools).value());
  WorkloadGenerator workload(&*db, GetParam() + 5);
  Rng rng(GetParam() * 3 + 1);
  Executor executor(&*db);
  PreferenceIntegrator integrator;

  for (int trial = 0; trial < 6; ++trial) {
    ProfileGeneratorOptions options;
    options.num_selections = 15 + rng.Below(25);
    auto profile = profiles.Generate(options, &rng);
    ASSERT_TRUE(profile.ok());
    auto graph = PersonalizationGraph::Build(&schema, *profile);
    ASSERT_TRUE(graph.ok());
    PreferenceSelector selector(&*graph);
    auto query = workload.RandomQuery();
    ASSERT_TRUE(query.ok());

    size_t k = 2 + rng.Below(6);
    auto prefs = selector.Select(*query, InterestCriterion::TopCount(k));
    ASSERT_TRUE(prefs.ok());
    if (prefs->empty()) continue;
    // SQ and MQ are only strictly equivalent for conflict-free
    // selections: SQ drops conflicting combinations outright, while MQ's
    // count(*) can still reach L through different anchor tuples of the
    // same projected row. Conflict behaviour is covered by the targeted
    // tests above; restrict the property to the conflict-free case.
    bool has_conflict = false;
    for (size_t i = 0; i < prefs->size() && !has_conflict; ++i) {
      for (size_t j = i + 1; j < prefs->size(); ++j) {
        if (ConflictDetector::Conflicting((*prefs)[i], (*prefs)[j])) {
          has_conflict = true;
          break;
        }
      }
    }
    if (has_conflict) continue;
    size_t l = 1 + rng.Below(prefs->size());

    IntegrationParams params;
    params.min_satisfied = l;
    auto sq = integrator.BuildSingleQuery(*query, *prefs, params);
    auto mq = integrator.BuildMultipleQueries(*query, *prefs, params);
    if (!sq.ok()) {
      // Conflicting preferences can make L unsatisfiable; MQ still
      // builds but returns no rows for the conflicting combos — skip.
      ASSERT_EQ(sq.status().code(), StatusCode::kFailedPrecondition);
      continue;
    }
    ASSERT_TRUE(mq.ok()) << mq.status();

    auto sq_result = executor.Execute(*sq);
    auto mq_result = executor.Execute(*mq);
    ASSERT_TRUE(sq_result.ok()) << sq_result.status();
    ASSERT_TRUE(mq_result.ok()) << mq_result.status();
    EXPECT_TRUE(SameRows(sq_result->rows(), mq_result->rows()))
        << "trial " << trial << " K=" << prefs->size() << " L=" << l
        << "\nSQ: " << ToSql(*sq) << "\nMQ: " << ToSql(*mq);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SqMqEquivalenceTest,
                         ::testing::Values(61, 62, 63, 64));

}  // namespace
}  // namespace qp
