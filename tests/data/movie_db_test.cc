#include "qp/data/movie_db.h"

#include <unordered_set>

#include "common/test_util.h"
#include "gtest/gtest.h"

namespace qp {
namespace {

MovieDbConfig SmallConfig(uint64_t seed = 42) {
  MovieDbConfig config;
  config.num_movies = 100;
  config.num_actors = 40;
  config.num_directors = 15;
  config.num_theatres = 8;
  config.num_days = 4;
  config.plays_per_theatre_per_day = 2;
  config.seed = seed;
  return config;
}

TEST(MovieDbTest, GeneratesConfiguredCardinalities) {
  auto db = GenerateMovieDatabase(SmallConfig());
  ASSERT_TRUE(db.ok()) << db.status();
  EXPECT_EQ(db->GetTable("MOVIE").value()->num_rows(), 100u);
  EXPECT_EQ(db->GetTable("ACTOR").value()->num_rows(), 40u);
  EXPECT_EQ(db->GetTable("DIRECTOR").value()->num_rows(), 15u);
  EXPECT_EQ(db->GetTable("THEATRE").value()->num_rows(), 8u);
  EXPECT_EQ(db->GetTable("PLAY").value()->num_rows(), 8u * 4u * 2u);
  EXPECT_EQ(db->GetTable("DIRECTED").value()->num_rows(), 100u);
  // Every movie has at least one genre and at least one cast entry.
  EXPECT_GE(db->GetTable("GENRE").value()->num_rows(), 100u);
  EXPECT_GE(db->GetTable("CAST").value()->num_rows(), 100u);
}

TEST(MovieDbTest, ForeignKeyIntegrity) {
  auto db = GenerateMovieDatabase(SmallConfig());
  ASSERT_TRUE(db.ok());
  auto collect_keys = [&](const char* table, const char* column) {
    const Table* t = db->GetTable(table).value();
    size_t col = *t->schema().ColumnIndex(column);
    std::unordered_set<int64_t> keys;
    for (const Row& row : t->rows()) keys.insert(row[col].as_int());
    return keys;
  };
  auto check_fk = [&](const char* child, const char* fk_col,
                      const char* parent, const char* pk_col) {
    std::unordered_set<int64_t> parents = collect_keys(parent, pk_col);
    const Table* t = db->GetTable(child).value();
    size_t col = *t->schema().ColumnIndex(fk_col);
    for (const Row& row : t->rows()) {
      EXPECT_TRUE(parents.contains(row[col].as_int()))
          << child << "." << fk_col << " dangling: " << row[col].ToString();
    }
  };
  check_fk("PLAY", "tid", "THEATRE", "tid");
  check_fk("PLAY", "mid", "MOVIE", "mid");
  check_fk("CAST", "mid", "MOVIE", "mid");
  check_fk("CAST", "aid", "ACTOR", "aid");
  check_fk("DIRECTED", "mid", "MOVIE", "mid");
  check_fk("DIRECTED", "did", "DIRECTOR", "did");
  check_fk("GENRE", "mid", "MOVIE", "mid");
}

TEST(MovieDbTest, DeterministicInSeed) {
  auto a = GenerateMovieDatabase(SmallConfig(7));
  auto b = GenerateMovieDatabase(SmallConfig(7));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->TotalRows(), b->TotalRows());
  const Table* ga = a->GetTable("GENRE").value();
  const Table* gb = b->GetTable("GENRE").value();
  ASSERT_EQ(ga->num_rows(), gb->num_rows());
  for (RowId i = 0; i < ga->num_rows(); ++i) {
    EXPECT_EQ(ga->row(i)[1], gb->row(i)[1]);
  }
}

TEST(MovieDbTest, DifferentSeedsDiffer) {
  auto a = GenerateMovieDatabase(SmallConfig(1));
  auto b = GenerateMovieDatabase(SmallConfig(2));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  const Table* ga = a->GetTable("GENRE").value();
  const Table* gb = b->GetTable("GENRE").value();
  bool any_diff = ga->num_rows() != gb->num_rows();
  for (RowId i = 0; !any_diff && i < ga->num_rows(); ++i) {
    any_diff = !(ga->row(i)[1] == gb->row(i)[1]);
  }
  EXPECT_TRUE(any_diff);
}

TEST(MovieDbTest, GenrePopularityIsSkewed) {
  auto db = GenerateMovieDatabase(SmallConfig());
  ASSERT_TRUE(db.ok());
  const Table* genre = db->GetTable("GENRE").value();
  size_t top = 0;
  size_t rare = 0;
  for (const Row& row : genre->rows()) {
    if (row[1] == Value::Str(GenreName(0))) ++top;
    if (row[1] == Value::Str(GenreName(14))) ++rare;
  }
  EXPECT_GT(top, rare);
}

TEST(MovieDbTest, ValueSpellingHelpers) {
  EXPECT_EQ(GenreName(0), "comedy");
  EXPECT_EQ(GenreName(2), "sci-fi");
  EXPECT_EQ(RegionName(0), "downtown");
  EXPECT_EQ(ActorName(3), "Actor #3");
  EXPECT_EQ(DirectorName(1), "Director #1");
  EXPECT_EQ(MovieTitle(9), "Movie #9");
  EXPECT_EQ(TheatreName(2), "Theatre #2");
  EXPECT_EQ(PlayDate(0), "2003-07-01");
  EXPECT_EQ(PlayDate(9), "2003-07-10");
}


}  // namespace
}  // namespace qp
