#include "qp/data/workload.h"

#include "common/test_util.h"
#include "gtest/gtest.h"
#include "qp/data/movie_db.h"
#include "qp/exec/executor.h"
#include "qp/query/sql_writer.h"

namespace qp {
namespace {

class WorkloadTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MovieDbConfig config;
    config.num_movies = 80;
    config.num_actors = 30;
    config.num_directors = 10;
    config.num_theatres = 6;
    auto db = GenerateMovieDatabase(config);
    ASSERT_TRUE(db.ok());
    db_ = std::make_unique<Database>(std::move(db).value());
  }

  std::unique_ptr<Database> db_;
};

TEST_F(WorkloadTest, QueriesValidateAgainstSchema) {
  WorkloadGenerator gen(db_.get(), 1);
  for (int i = 0; i < 50; ++i) {
    auto query = gen.RandomQuery();
    ASSERT_TRUE(query.ok()) << query.status();
    QP_EXPECT_OK(query->Validate(db_->schema()));
  }
}

TEST_F(WorkloadTest, QueriesAlwaysHaveASelection) {
  WorkloadGenerator gen(db_.get(), 2);
  for (int i = 0; i < 50; ++i) {
    auto query = gen.RandomQuery();
    ASSERT_TRUE(query.ok());
    ASSERT_NE(query->where(), nullptr);
    std::vector<AtomicCondition> atoms;
    query->where()->CollectAtoms(&atoms);
    bool has_selection = false;
    for (const AtomicCondition& atom : atoms) {
      if (atom.is_selection()) has_selection = true;
    }
    EXPECT_TRUE(has_selection) << ToSql(*query);
  }
}

TEST_F(WorkloadTest, JoinsConnectDeclaredSchemaJoins) {
  WorkloadGenerator gen(db_.get(), 3);
  for (int i = 0; i < 50; ++i) {
    auto query = gen.RandomQuery();
    ASSERT_TRUE(query.ok());
    std::vector<AtomicCondition> atoms;
    if (query->where() != nullptr) query->where()->CollectAtoms(&atoms);
    for (const AtomicCondition& atom : atoms) {
      if (!atom.is_join()) continue;
      const TupleVariable* left = query->FindVariable(atom.left_var());
      const TupleVariable* right = query->FindVariable(atom.right_var());
      ASSERT_NE(left, nullptr);
      ASSERT_NE(right, nullptr);
      EXPECT_NE(db_->schema().FindJoin({left->table, atom.left_column()},
                                       {right->table, atom.right_column()}),
                nullptr)
          << ToSql(*query);
    }
  }
}

TEST_F(WorkloadTest, QueriesAreExecutable) {
  WorkloadGenerator gen(db_.get(), 4);
  Executor executor(db_.get());
  for (int i = 0; i < 30; ++i) {
    auto query = gen.RandomQuery();
    ASSERT_TRUE(query.ok());
    auto result = executor.Execute(*query);
    EXPECT_TRUE(result.ok()) << result.status() << "\n" << ToSql(*query);
  }
}

TEST_F(WorkloadTest, DeterministicInSeed) {
  WorkloadGenerator a(db_.get(), 99);
  WorkloadGenerator b(db_.get(), 99);
  for (int i = 0; i < 20; ++i) {
    auto qa = a.RandomQuery();
    auto qb = b.RandomQuery();
    ASSERT_TRUE(qa.ok());
    ASSERT_TRUE(qb.ok());
    EXPECT_EQ(ToSql(*qa), ToSql(*qb));
  }
}

TEST_F(WorkloadTest, BatchGeneration) {
  WorkloadGenerator gen(db_.get(), 5);
  auto queries = gen.RandomQueries(25);
  ASSERT_TRUE(queries.ok());
  EXPECT_EQ(queries->size(), 25u);
}

TEST_F(WorkloadTest, RespectsMaxExtraRelations) {
  WorkloadConfig config;
  config.max_extra_relations = 0;
  WorkloadGenerator gen(db_.get(), 6, config);
  for (int i = 0; i < 20; ++i) {
    auto query = gen.RandomQuery();
    ASSERT_TRUE(query.ok());
    EXPECT_EQ(query->from().size(), 1u);
  }
}

TEST_F(WorkloadTest, ProducesVariedBaseTables) {
  WorkloadGenerator gen(db_.get(), 7);
  std::unordered_set<std::string> bases;
  for (int i = 0; i < 60; ++i) {
    auto query = gen.RandomQuery();
    ASSERT_TRUE(query.ok());
    bases.insert(query->from()[0].table);
  }
  EXPECT_GE(bases.size(), 3u);
}

}  // namespace
}  // namespace qp
