#include "common/test_util.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <functional>

#include "qp/obs/flight_recorder.h"
#include "qp/obs/trace.h"

namespace qp {
namespace testing_util {
namespace {

bool EvalCondition(
    const ConditionPtr& condition,
    const std::function<const Value&(const std::string&, const std::string&)>&
        get) {
  if (condition == nullptr) return true;
  switch (condition->kind()) {
    case ConditionNode::Kind::kAtom: {
      const AtomicCondition& atom = condition->atom();
      if (atom.is_selection()) {
        return get(atom.var(), atom.column()) == atom.value();
      }
      if (atom.is_near()) {
        return atom.Satisfaction(get(atom.var(), atom.column())) > 0.0;
      }
      return get(atom.left_var(), atom.left_column()) ==
             get(atom.right_var(), atom.right_column());
    }
    case ConditionNode::Kind::kAnd:
      for (const auto& child : condition->children()) {
        if (!EvalCondition(child, get)) return false;
      }
      return true;
    case ConditionNode::Kind::kOr:
      for (const auto& child : condition->children()) {
        if (EvalCondition(child, get)) return true;
      }
      return false;
  }
  return false;
}

}  // namespace

std::vector<Row> ReferenceEvaluate(const Database& db,
                                   const SelectQuery& query) {
  std::vector<const Table*> tables;
  for (const TupleVariable& var : query.from()) {
    tables.push_back(db.GetTable(var.table).value());
  }

  std::vector<Row> out;
  std::unordered_set<Row, RowHash, RowEq> seen;
  std::vector<size_t> odometer(tables.size(), 0);

  // Any empty table empties the product.
  for (const Table* table : tables) {
    if (table->num_rows() == 0) return out;
  }

  auto get = [&](const std::string& alias,
                 const std::string& column) -> const Value& {
    for (size_t i = 0; i < tables.size(); ++i) {
      if (query.from()[i].alias == alias) {
        size_t col = *tables[i]->schema().ColumnIndex(column);
        return tables[i]->At(static_cast<RowId>(odometer[i]), col);
      }
    }
    static const Value kNull;
    return kNull;
  };

  for (;;) {
    if (EvalCondition(query.where(), get)) {
      Row row;
      for (const auto& item : query.projections()) {
        row.push_back(get(item.var, item.column));
      }
      if (!query.distinct() || seen.insert(row).second) {
        out.push_back(std::move(row));
      }
    }
    // Advance the odometer.
    size_t i = 0;
    while (i < odometer.size()) {
      if (++odometer[i] < tables[i]->num_rows()) break;
      odometer[i] = 0;
      ++i;
    }
    if (i == odometer.size()) break;
  }
  return out;
}

bool SameRows(const std::vector<Row>& a, const std::vector<Row>& b) {
  if (a.size() != b.size()) return false;
  auto key = [](const Row& row) {
    std::string k;
    for (const Value& v : row) {
      k += v.ToString();
      k += '\x1f';
    }
    return k;
  };
  std::vector<std::string> ka;
  std::vector<std::string> kb;
  for (const Row& row : a) ka.push_back(key(row));
  for (const Row& row : b) kb.push_back(key(row));
  std::sort(ka.begin(), ka.end());
  std::sort(kb.begin(), kb.end());
  return ka == kb;
}

std::string RowsToString(const std::vector<Row>& rows) {
  std::vector<std::string> lines;
  for (const Row& row : rows) {
    std::string line;
    for (const Value& v : row) {
      line += v.ToString();
      line += " | ";
    }
    lines.push_back(std::move(line));
  }
  std::sort(lines.begin(), lines.end());
  std::string out;
  for (const std::string& line : lines) {
    out += line;
    out += "\n";
  }
  return out;
}

std::string DumpFlightRecorderSnapshot(const std::string& label) {
  if (!obs::kTracingCompiledIn) return "";
  std::string path = label + "_blackbox.json";
  if (const char* dir = std::getenv("QP_ARTIFACT_DIR")) {
    path = std::string(dir) + "/" + path;
  }
  const std::string json =
      obs::FlightRecorder::ToJson(obs::FlightRecorder::Global()->Dump());
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) return "";
  std::fwrite(json.data(), 1, json.size(), file);
  std::fclose(file);
  std::fprintf(stderr, "[%s] flight recorder snapshot: %s\n", label.c_str(),
               path.c_str());
  return path;
}

}  // namespace testing_util
}  // namespace qp
