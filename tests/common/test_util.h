#ifndef QP_TESTS_COMMON_TEST_UTIL_H_
#define QP_TESTS_COMMON_TEST_UTIL_H_

#include <string>
#include <unordered_set>
#include <vector>

#include "gtest/gtest.h"
#include "qp/exec/result.h"
#include "qp/query/query.h"
#include "qp/relational/database.h"
#include "qp/util/status.h"

namespace qp {
namespace testing_util {

#define QP_ASSERT_OK(expr)                                     \
  do {                                                         \
    const ::qp::Status qp_test_status = (expr);                \
    ASSERT_TRUE(qp_test_status.ok()) << qp_test_status;        \
  } while (0)

#define QP_EXPECT_OK(expr)                                     \
  do {                                                         \
    const ::qp::Status qp_test_status = (expr);                \
    EXPECT_TRUE(qp_test_status.ok()) << qp_test_status;        \
  } while (0)

/// Asserts `result_expr` (a Result<T>) is OK and moves its value into
/// `lhs`, e.g. QP_ASSERT_OK_AND_ASSIGN(Database db, Generate(...));
#define QP_ASSERT_OK_AND_ASSIGN(lhs, result_expr)              \
  QP_ASSERT_OK_AND_ASSIGN_IMPL(                                \
      QP_STATUS_CONCAT(qp_test_result_, __LINE__), lhs, result_expr)
#define QP_ASSERT_OK_AND_ASSIGN_IMPL(tmp, lhs, result_expr)    \
  auto tmp = (result_expr);                                    \
  ASSERT_TRUE(tmp.ok()) << tmp.status();                       \
  lhs = std::move(tmp).value()

/// Reference (oracle) evaluation of a SelectQuery by enumerating the full
/// cross product of the FROM tables and evaluating the condition tree per
/// assignment. Exponential — only for small test databases. Returns
/// projected rows; duplicates preserved under SQL bag semantics (distinct
/// assignments), collapsed when `query.distinct()`.
std::vector<Row> ReferenceEvaluate(const Database& db,
                                   const SelectQuery& query);

/// Multiset equality of row collections (order-insensitive).
bool SameRows(const std::vector<Row>& a, const std::vector<Row>& b);

/// Renders rows as sorted strings, for readable failure messages.
std::string RowsToString(const std::vector<Row>& rows);

/// Writes the flight recorder's JSON dump to `<label>_blackbox.json`
/// (under $QP_ARTIFACT_DIR when set, the working directory otherwise)
/// and names the path on stderr. Chaos suites call it when a trial
/// fails, so the in-memory blackbox rides along as the post-mortem
/// artifact. Returns the path, or "" when observability is compiled
/// out or the write failed.
std::string DumpFlightRecorderSnapshot(const std::string& label);

}  // namespace testing_util
}  // namespace qp

#endif  // QP_TESTS_COMMON_TEST_UTIL_H_
