// Movie night: the motivating example of the paper's introduction.
//
// Julie and Rob both ask the same question through the same interface —
// "what is shown tonight?" — and receive different answers: Julie likes
// comedies, thrillers and certain directors/actresses; Rob likes sci-fi
// and J. Roberts. The same mechanism is shown with both integration
// approaches (SQ and MQ). A third user, Sam, exercises the generalized
// preference model: a soft preference for films from around 2002 and a
// dislike of documentaries.
//
// Build & run:  ./build/examples/movie_night

#include <cstdio>

#include "qp/core/personalizer.h"
#include "qp/data/movie_db.h"
#include "qp/data/paper_example.h"
#include "qp/query/sql_writer.h"

namespace {

void ShowUser(const char* name, const qp::UserProfile& profile,
              const qp::Schema& schema, const qp::Database& db) {
  using namespace qp;
  auto graph = PersonalizationGraph::Build(&schema, profile);
  if (!graph.ok()) {
    std::printf("%s: %s\n", name, graph.status().ToString().c_str());
    return;
  }
  Personalizer personalizer(&*graph);

  PersonalizationOptions options;
  options.criterion = InterestCriterion::TopCount(2);
  options.integration.min_satisfied = 1;

  std::printf("=============================================\n");
  std::printf("%s asks: %s\n", name, ToSql(TonightQuery()).c_str());

  PersonalizationOutcome outcome;
  auto ranked = personalizer.PersonalizeAndExecute(TonightQuery(), options,
                                                   db, &outcome);
  if (!ranked.ok()) {
    std::printf("  error: %s\n", ranked.status().ToString().c_str());
    return;
  }
  std::printf("\n%s's top preferences tonight:\n", name);
  for (const PreferencePath& pref : outcome.selected) {
    std::printf("  %s\n", pref.ToString().c_str());
  }
  std::printf("\nRanked answer for %s:\n%s\n", name,
              ranked->DebugString().c_str());

  // The equivalent single-query (SQ) form.
  options.approach = IntegrationApproach::kSingleQuery;
  PersonalizationOutcome sq_outcome;
  auto sq_ranked = personalizer.PersonalizeAndExecute(
      TonightQuery(), options, db, &sq_outcome);
  if (sq_ranked.ok()) {
    std::printf("Single-query (SQ) form:\n%s\n-> %zu rows (same set, "
                "unranked)\n\n",
                ToSql(*sq_outcome.sq).c_str(), sq_ranked->num_rows());
  }
}

}  // namespace

int main() {
  using namespace qp;
  Schema schema = MovieSchema();
  auto db = BuildPaperDatabase();
  if (!db.ok()) {
    std::printf("database: %s\n", db.status().ToString().c_str());
    return 1;
  }

  std::printf("Tonight's full programme (no personalization):\n");
  Executor executor(&*db);
  auto all = executor.Execute(TonightQuery());
  if (all.ok()) std::printf("%s\n", all->DebugString().c_str());

  ShowUser("Julie", JulieProfile(), schema, *db);
  ShowUser("Rob", RobProfile(), schema, *db);

  // Sam: "something recent-ish, and please no documentaries" — a soft
  // preference plus a dislike (the generalized preference model).
  UserProfile sam;
  for (const SchemaJoin& join : schema.joins()) {
    (void)sam.Add(AtomicPreference::Join(join.left, join.right, 0.9));
    (void)sam.Add(AtomicPreference::Join(join.right, join.left, 0.9));
  }
  (void)sam.Add(AtomicPreference::NearSelection(
      {"MOVIE", "year"}, Value::Int(2002), 4.0, 0.9));
  (void)sam.Add(AtomicPreference::Selection(
      {"GENRE", "genre"}, Value::Str("documentary"), -1.0));

  std::printf("=============================================\n");
  std::printf("Sam asks the same question (soft + negative preferences):\n");
  auto sam_graph = PersonalizationGraph::Build(&schema, sam);
  if (sam_graph.ok()) {
    Personalizer personalizer(&*sam_graph);
    PersonalizationOptions options;
    options.criterion = InterestCriterion::TopCount(2);
    options.integration.min_satisfied = 1;
    options.max_negative = 2;
    options.integration.negative_mode = NegativeMode::kVeto;
    PersonalizationOutcome outcome;
    auto ranked = personalizer.PersonalizeAndExecute(TonightQuery(), options,
                                                     *db, &outcome);
    if (ranked.ok()) {
      for (const PreferencePath& pref : outcome.selected) {
        std::printf("  likes:    %s\n", pref.ToString().c_str());
      }
      for (const PreferencePath& pref : outcome.negatives) {
        std::printf("  dislikes: %s\n", pref.ToString().c_str());
      }
      std::printf("\nRanked answer for Sam (closer to 2002 ranks higher; "
                  "documentaries vetoed):\n%s\n",
                  ranked->DebugString().c_str());
    }
  }
  return 0;
}
