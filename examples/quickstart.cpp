// Quickstart: the paper's worked example, end to end.
//
// Julie asks "what is shown tonight?". Her profile stores degrees of
// interest in atomic query elements; the personalizer selects her top-3
// related preferences (comedy 0.81, D. Lynch 0.8, N. Kidman 0.72),
// integrates them into her query so that results satisfy at least L=2 of
// them, and returns a ranked answer.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "qp/core/personalizer.h"
#include "qp/data/movie_db.h"
#include "qp/data/paper_example.h"
#include "qp/query/sql_writer.h"

int main() {
  using namespace qp;

  // 1. The schema (the paper's movie database) and some content.
  Schema schema = MovieSchema();
  auto db = BuildPaperDatabase();
  if (!db.ok()) {
    std::printf("database: %s\n", db.status().ToString().c_str());
    return 1;
  }

  // 2. Julie's profile: atomic preferences with degrees of interest.
  UserProfile julie = JulieProfile();
  std::printf("--- Julie's profile (%zu selections, %zu joins) ---\n%s\n",
              julie.NumSelections(), julie.NumJoins(),
              julie.Serialize().c_str());

  // 3. The original, user-agnostic query.
  SelectQuery query = TonightQuery();
  std::printf("--- Original query ---\n%s\n\n", ToSql(query).c_str());

  // 4. Build the personalization graph and personalize: top K=3
  //    preferences, results must satisfy at least L=2 of them.
  auto graph = PersonalizationGraph::Build(&schema, julie);
  if (!graph.ok()) {
    std::printf("graph: %s\n", graph.status().ToString().c_str());
    return 1;
  }
  Personalizer personalizer(&*graph);
  PersonalizationOptions options;
  options.criterion = InterestCriterion::TopCount(3);
  options.integration.min_satisfied = 2;

  PersonalizationOutcome outcome;
  auto result =
      personalizer.PersonalizeAndExecute(query, options, *db, &outcome);
  if (!result.ok()) {
    std::printf("personalize: %s\n", result.status().ToString().c_str());
    return 1;
  }

  std::printf("--- Selected preferences (top K=3) ---\n");
  for (const PreferencePath& pref : outcome.selected) {
    std::printf("  %s\n", pref.ToString().c_str());
  }

  std::printf("\n--- Personalized query (MQ form) ---\n%s\n\n",
              ToSql(*outcome.mq).c_str());

  std::printf("--- Ranked results (satisfy >= 2 of Julie's top 3) ---\n%s",
              result->DebugString().c_str());
  return 0;
}
