// qpshell: an interactive (and pipe-scriptable) personalized-query shell.
//
//   $ ./build/examples/qpshell
//   qp> \julie
//   qp> select MV.title from MOVIE MV, PLAY PL where MV.mid=PL.mid and
//       PL.date='2/7/2003'
//   ... ranked, personalized results ...
//
// Type \help for the command list. Non-interactive use:
//   printf '\\julie\nselect ...\n' | ./build/examples/qpshell

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>

#include "qp/core/personalizer.h"
#include "qp/exec/executor.h"
#include "qp/data/movie_db.h"
#include "qp/data/paper_example.h"
#include "qp/obs/flight_recorder.h"
#include "qp/obs/metrics.h"
#include "qp/obs/slo.h"
#include "qp/obs/trace.h"
#include "qp/pref/profile_learner.h"
#include "qp/query/sql_parser.h"
#include "qp/query/sql_writer.h"
#include "qp/relational/csv.h"
#include "qp/service/service.h"
#include "qp/shard/sharded_service.h"
#include "qp/storage/durable_profile_store.h"
#include "qp/util/fault_hub.h"
#include "qp/util/string_util.h"

namespace {

using namespace qp;

class Shell {
 public:
  Shell() : schema_(MovieSchema()) {
    auto db = BuildPaperDatabase();
    if (db.ok()) db_ = std::make_unique<Database>(std::move(db).value());
    SetProfile(JulieProfile(), "Julie (paper example)");
  }

  int Run() {
    bool tty = isatty(fileno(stdin)) != 0;
    std::string line;
    if (tty) {
      std::printf("qp shell — personalized queries over the movie "
                  "database. \\help for commands.\n");
    }
    for (;;) {
      if (tty) std::printf("qp> ");
      if (!std::getline(std::cin, line)) break;
      std::string_view trimmed = StripWhitespace(line);
      if (trimmed.empty()) continue;
      if (trimmed == "\\quit" || trimmed == "\\q") break;
      Dispatch(std::string(trimmed));
    }
    return 0;
  }

 private:
  void Dispatch(const std::string& line) {
    if (line[0] != '\\') {
      RunPersonalized(line);
      return;
    }
    std::istringstream in(line.substr(1));
    std::string command;
    in >> command;
    std::string arg;
    std::getline(in, arg);
    arg = std::string(StripWhitespace(arg));

    if (command == "help") {
      Help();
    } else if (command == "julie") {
      SetProfile(JulieProfile(), "Julie (paper example)");
    } else if (command == "rob") {
      SetProfile(RobProfile(), "Rob (paper example)");
    } else if (command == "profile") {
      LoadProfile(arg);
    } else if (command == "pref") {
      AddPreference(arg);
    } else if (command == "show") {
      std::printf("profile (%s):\n%s", profile_name_.c_str(),
                  profile_.Serialize().c_str());
    } else if (command == "graph") {
      if (graph_) std::printf("%s", graph_->DebugString().c_str());
    } else if (command == "gen") {
      Generate(arg);
    } else if (command == "paper") {
      auto db = BuildPaperDatabase();
      if (Check(db.status())) {
        db_ = std::make_unique<Database>(std::move(db).value());
        std::printf("loaded the paper's example database (%zu rows)\n",
                    db_->TotalRows());
      }
    } else if (command == "save") {
      SaveProfile(arg);
    } else if (command == "open") {
      OpenProfiles(arg);
    } else if (command == "savedb") {
      if (db_) Check(SaveDatabaseCsv(*db_, arg));
    } else if (command == "load") {
      Database db(schema_);
      if (Check(LoadDatabaseCsv(&db, arg))) {
        db_ = std::make_unique<Database>(std::move(db));
        std::printf("loaded %zu rows from %s\n", db_->TotalRows(),
                    arg.c_str());
      }
    } else if (command == "k") {
      options_.criterion = InterestCriterion::TopCount(
          static_cast<size_t>(std::atoll(arg.c_str())));
    } else if (command == "l") {
      options_.integration.min_satisfied =
          static_cast<size_t>(std::atoll(arg.c_str()));
    } else if (command == "m") {
      options_.integration.mandatory_count =
          static_cast<size_t>(std::atoll(arg.c_str()));
    } else if (command == "topn") {
      options_.top_n = static_cast<size_t>(std::atoll(arg.c_str()));
    } else if (command == "negatives") {
      options_.max_negative = static_cast<size_t>(std::atoll(arg.c_str()));
    } else if (command == "negmode") {
      options_.integration.negative_mode =
          arg == "veto" ? NegativeMode::kVeto : NegativeMode::kPenalty;
    } else if (command == "mode") {
      options_.approach = (arg == "sq")
                              ? IntegrationApproach::kSingleQuery
                              : IntegrationApproach::kMultipleQueries;
    } else if (command == "exec") {
      SetExec(arg);
    } else if (command == "batch") {
      RunBatch(arg);
    } else if (command == "deadline") {
      deadline_ms_ = std::atof(arg.c_str());
    } else if (command == "qbound") {
      max_queue_depth_ = static_cast<size_t>(std::atoll(arg.c_str()));
    } else if (command == "degrade") {
      degrade_queue_depth_ = static_cast<size_t>(std::atoll(arg.c_str()));
    } else if (command == "stats") {
      PrintStats();
    } else if (command == "metrics") {
      PrintMetrics(arg);
    } else if (command == "trace") {
      SetTrace(arg);
    } else if (command == "explain") {
      // With SQL: show the rewrite. Without: show the last captured
      // request trace (\trace on + \batch first).
      if (arg.empty()) {
        PrintLastTrace();
      } else {
        Explain(arg);
      }
    } else if (command == "raw") {
      RunRaw(arg);
    } else if (command == "learn") {
      Learn(arg);
    } else if (command == "chaos") {
      SetChaos(arg);
    } else if (command == "health") {
      PrintHealth();
    } else if (command == "shards") {
      Shards(arg);
    } else if (command == "kill") {
      KillShard(arg);
    } else if (command == "recover") {
      RecoverShard(arg);
    } else if (command == "reshard") {
      Reshard(arg);
    } else if (command == "migrations") {
      PrintMigrations();
    } else if (command == "blackbox") {
      PrintBlackbox(arg);
    } else if (command == "slo") {
      PrintSlo();
    } else if (command == "route") {
      Route(arg);
    } else {
      std::printf("unknown command \\%s — try \\help\n", command.c_str());
    }
  }

  void Help() {
    std::printf(
        "queries:\n"
        "  <sql>               personalize + execute (ranked)\n"
        "  \\raw <sql>          execute without personalization\n"
        "  \\explain <sql>      show selected preferences + rewritten SQL\n"
        "  \\batch [N] <file|sql>  personalize concurrently on N workers\n"
        "                      (<file>: one SQL query per line; a single\n"
        "                      query is run twice to show the cache)\n"
        "  \\stats              lifecycle breakdown of the last batch\n"
        "                      (full/degraded/shed/deadline, breaker)\n"
        "profiles:\n"
        "  \\julie | \\rob       the paper's example users\n"
        "  \\profile <file>     load a profile ([ cond, doi ] per line)\n"
        "  \\pref [ c, d ]      add one preference to the profile\n"
        "  \\learn <sql>        observe a query; profile is re-learned\n"
        "  \\show | \\graph      print profile / personalization graph\n"
        "  \\save <dir>         persist the profile (WAL + snapshot store)\n"
        "  \\open <dir> [user]  recover profiles from a durable store\n"
        "data:\n"
        "  \\paper              the paper's mini database (default)\n"
        "  \\gen [movies]       synthetic IMDb-style database\n"
        "  \\savedb <dir> | \\load <dir>  CSV export / import\n"
        "options:\n"
        "  \\k N  \\l N  \\m N    top-K / at-least-L / mandatory-M\n"
        "  \\mode sq|mq  \\topn N  \\negatives N  \\negmode veto|penalty\n"
        "  \\exec sq|mq|vec|tuple  integration approach and executor\n"
        "                      engine (vectorized batch vs tuple-at-a-time)\n"
        "overload (apply to the next \\batch):\n"
        "  \\deadline MS        per-request deadline (0 = none)\n"
        "  \\qbound N           shed requests past N queued (0 = unbounded)\n"
        "  \\degrade N          halve K when the queue exceeds N (0 = off)\n"
        "observability:\n"
        "  \\metrics [json|prom]  dump the metrics registry (accumulated\n"
        "                      across every \\batch in this session)\n"
        "  \\trace on|off       capture per-request pipeline traces during\n"
        "                      \\batch\n"
        "  \\explain            span tree of the last traced request\n"
        "  \\blackbox [json|clear]  flight recorder — the last few\n"
        "                      thousand notable events (trace summaries,\n"
        "                      fault fires, breaker flips, quarantines,\n"
        "                      migration phases) as a table or JSON\n"
        "  \\slo                rolling-window availability/latency\n"
        "                      objectives and burn rates (per shard with\n"
        "                      a cluster open; else the last \\batch)\n"
        "robustness:\n"
        "  \\chaos <seed>|off   arm a deterministic random fault schedule\n"
        "                      over every fault site (same seed, same\n"
        "                      faults) / disarm and clear it\n"
        "  \\health             fault-site summary + breaker/scrubber/\n"
        "                      quarantine state of the last batch\n"
        "scale-out:\n"
        "  \\shards N [hot] [dir]  open an N-shard cluster (hash-routed,\n"
        "                      one durable store per shard under <dir>,\n"
        "                      default qpshell-cluster). hot > 0 keeps at\n"
        "                      most `hot` profiles per shard in memory\n"
        "                      (tiered: the rest page from disk). \\batch\n"
        "                      routes through the cluster; \\stats and\n"
        "                      \\health grow per-shard rows\n"
        "  \\shards             per-shard residency/breaker/scrub rows\n"
        "  \\shards off         close the cluster (back to in-process)\n"
        "  \\kill I | \\recover I  drop / reopen shard I — survivors keep\n"
        "                      serving; recovery replays snapshot + WAL\n"
        "  \\reshard N          live-reshard the open cluster to N shards:\n"
        "                      per-partition copy -> WAL tail -> dual-write\n"
        "                      -> atomic cutover, serving throughout\n"
        "  \\migrations         migration counters + routing version + any\n"
        "                      journaled in-flight partition moves + the\n"
        "                      span tree of the last partition migration\n"
        "  \\route <user>       the user's partition/owner shard + per-shard\n"
        "                      resident key counts\n"
        "  \\quit\n");
  }

  bool Check(const Status& status) {
    if (!status.ok()) std::printf("error: %s\n", status.ToString().c_str());
    return status.ok();
  }

  void SetProfile(UserProfile profile, std::string name) {
    auto graph = PersonalizationGraph::Build(&schema_, profile);
    if (!Check(graph.status())) return;
    profile_ = std::move(profile);
    profile_name_ = std::move(name);
    graph_ = std::make_unique<PersonalizationGraph>(std::move(graph).value());
    std::printf("profile: %s (%zu selections, %zu joins, %zu dislikes)\n",
                profile_name_.c_str(),
                profile_.NumSelections() -
                    graph_->num_negative_selection_edges(),
                profile_.NumJoins(),
                graph_->num_negative_selection_edges());
  }

  void LoadProfile(const std::string& path) {
    std::ifstream in(path);
    if (!in) {
      std::printf("error: cannot open %s\n", path.c_str());
      return;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    auto profile = UserProfile::Parse(buffer.str());
    if (Check(profile.status())) {
      SetProfile(std::move(profile).value(), path);
    }
  }

  void AddPreference(const std::string& text) {
    auto parsed = UserProfile::Parse(text);
    if (!Check(parsed.status())) return;
    UserProfile updated = profile_;
    for (const AtomicPreference& pref : parsed->preferences()) {
      updated.AddOrUpdate(pref);
    }
    SetProfile(std::move(updated), profile_name_ + " (edited)");
  }

  /// \save <dir>: write the current profile through a durable store —
  /// WAL append, then checkpoint so the directory holds a fresh snapshot.
  void SaveProfile(const std::string& arg) {
    if (arg.empty()) {
      std::printf("usage: \\save <dir>\n");
      return;
    }
    storage::StorageOptions options;
    options.dir = arg;
    options.background_compaction = false;
    auto store = storage::DurableProfileStore::Open(&schema_, options);
    if (!Check(store.status())) return;
    if (!Check((*store)->Put(profile_name_, profile_))) return;
    if (!Check((*store)->Checkpoint())) return;
    storage::StorageStats stats = (*store)->storage_stats();
    if (!Check((*store)->Close())) return;
    std::printf("saved profile '%s' to %s (snapshot at seqno %llu)\n",
                profile_name_.c_str(), arg.c_str(),
                static_cast<unsigned long long>(stats.last_appended_seqno));
  }

  /// \open <dir> [user]: recover a durable store (snapshot + WAL replay)
  /// and make one of its profiles current.
  void OpenProfiles(const std::string& arg) {
    std::istringstream in(arg);
    std::string dir;
    in >> dir;
    std::string user;
    std::getline(in, user);
    user = std::string(StripWhitespace(user));
    if (dir.empty()) {
      std::printf("usage: \\open <dir> [user]\n");
      return;
    }
    storage::StorageOptions options;
    options.dir = dir;
    options.background_compaction = false;
    auto store = storage::DurableProfileStore::Open(&schema_, options);
    if (!Check(store.status())) return;
    storage::StorageStats stats = (*store)->storage_stats();
    auto all = (*store)->All();
    std::printf(
        "opened %s: %zu profiles (%llu from snapshot, %llu WAL records "
        "replayed, %llu torn bytes dropped) in %llu ms\n",
        dir.c_str(), all.size(),
        static_cast<unsigned long long>(stats.snapshot_users_loaded),
        static_cast<unsigned long long>(stats.records_replayed),
        static_cast<unsigned long long>(stats.torn_bytes_truncated),
        static_cast<unsigned long long>(stats.recovery_millis));
    Check((*store)->Close());
    if (all.empty()) return;
    if (user.empty() && all.size() > 1) {
      for (const auto& [user_id, snapshot] : all) {
        std::printf("  %s (%zu preferences)\n", user_id.c_str(),
                    snapshot.profile->size());
      }
      std::printf("pick one with \\open %s <user>\n", dir.c_str());
      return;
    }
    for (const auto& [user_id, snapshot] : all) {
      if (user.empty() || user_id == user) {
        SetProfile(*snapshot.profile, user_id);
        return;
      }
    }
    std::printf("no profile '%s' in %s\n", user.c_str(), dir.c_str());
  }

  void Generate(const std::string& arg) {
    MovieDbConfig config;
    if (!arg.empty()) {
      config.num_movies = static_cast<size_t>(std::atoll(arg.c_str()));
    }
    auto db = GenerateMovieDatabase(config);
    if (Check(db.status())) {
      db_ = std::make_unique<Database>(std::move(db).value());
      std::printf("generated %zu rows (%zu movies)\n", db_->TotalRows(),
                  config.num_movies);
    }
  }

  Result<SelectQuery> Parse(const std::string& sql) {
    auto query = ParseSelectQuery(sql);
    if (!query.ok()) return query.status();
    QP_RETURN_IF_ERROR(query->Validate(schema_));
    return query;
  }

  /// \exec sq|mq|vec|tuple: one knob for "how do queries run" — the
  /// integration approach (which personalized query gets built) and the
  /// executor engine (which runtime evaluates it). With no argument,
  /// prints the current setting.
  void SetExec(const std::string& arg) {
    if (arg == "sq" || arg == "mq") {
      options_.approach = (arg == "sq")
                              ? IntegrationApproach::kSingleQuery
                              : IntegrationApproach::kMultipleQueries;
    } else if (arg == "vec" || arg == "vectorized") {
      exec_strategy_ = ExecStrategy::kVectorized;
    } else if (arg == "tuple") {
      exec_strategy_ = ExecStrategy::kTuple;
    } else if (!arg.empty()) {
      std::printf("usage: \\exec sq|mq|vec|tuple\n");
      return;
    }
    std::printf(
        "approach=%s engine=%s\n",
        options_.approach == IntegrationApproach::kSingleQuery ? "sq" : "mq",
        exec_strategy_ == ExecStrategy::kVectorized ? "vectorized"
                                                    : "tuple");
  }

  void RunRaw(const std::string& sql) {
    if (db_ == nullptr) return;
    auto query = Parse(sql);
    if (!Check(query.status())) return;
    Executor executor(db_.get());
    executor.set_exec_strategy(exec_strategy_);
    auto result = executor.Execute(*query);
    if (Check(result.status())) {
      std::printf("%s(%zu rows)\n", result->DebugString().c_str(),
                  result->num_rows());
    }
  }

  void Explain(const std::string& sql) {
    if (graph_ == nullptr) return;
    auto query = Parse(sql);
    if (!Check(query.status())) return;
    Personalizer personalizer(graph_.get());
    auto outcome = personalizer.Personalize(*query, options_);
    if (!Check(outcome.status())) return;
    std::printf("selected preferences (K=%zu):\n", outcome->selected.size());
    for (const PreferencePath& pref : outcome->selected) {
      std::printf("  %s\n", pref.ToString().c_str());
    }
    for (const PreferencePath& pref : outcome->negatives) {
      std::printf("  dislike: %s\n", pref.ToString().c_str());
    }
    std::printf("personalized query:\n  %s\n",
                outcome->sq.has_value() ? ToSql(*outcome->sq).c_str()
                                        : ToSql(*outcome->mq).c_str());
  }

  void RunPersonalized(const std::string& sql) {
    if (db_ == nullptr || graph_ == nullptr) return;
    auto query = Parse(sql);
    if (!Check(query.status())) return;
    Personalizer personalizer(graph_.get());
    auto personalized = personalizer.Personalize(*query, options_);
    if (!Check(personalized.status())) return;
    PersonalizationOutcome outcome = std::move(personalized).value();
    Executor executor(db_.get());
    executor.set_exec_strategy(exec_strategy_);
    auto result = outcome.sq.has_value() ? executor.Execute(*outcome.sq)
                                         : executor.Execute(*outcome.mq);
    if (!Check(result.status())) return;
    if (options_.top_n > 0) result.value().Truncate(options_.top_n);
    std::printf("%s(%zu rows; %zu preferences applied; selection %.3f ms, "
                "integration %.3f ms)\n",
                result->DebugString().c_str(), result->num_rows(),
                outcome.selected.size() + outcome.negatives.size(),
                outcome.selection_millis, outcome.integration_millis);
  }

  /// \batch [workers] <file|sql>: pushes a batch of queries through the
  /// service layer (thread pool + profile store + selection cache) as the
  /// current profile and reports per-query results plus service stats.
  void RunBatch(const std::string& arg) {
    if (db_ == nullptr || graph_ == nullptr) return;
    std::istringstream in(arg);
    size_t workers = 0;  // 0 -> hardware concurrency.
    std::string rest;
    if (in >> workers) {
      std::getline(in, rest);
    } else {
      rest = arg;
      workers = 0;
    }
    rest = std::string(StripWhitespace(rest));
    if (rest.empty()) {
      std::printf("usage: \\batch [workers] <file|sql>\n");
      return;
    }

    // A file of queries (one per line), or a single inline query which
    // is run twice so the second pass demonstrates a cache hit.
    std::vector<std::string> sqls;
    std::ifstream file(rest);
    if (file) {
      std::string line;
      while (std::getline(file, line)) {
        std::string_view trimmed = StripWhitespace(line);
        if (!trimmed.empty() && trimmed[0] != '#') {
          sqls.emplace_back(trimmed);
        }
      }
    } else {
      sqls = {rest, rest};
    }

    std::vector<PersonalizationRequest> requests;
    for (const std::string& sql : sqls) {
      PersonalizationRequest request;
      request.user_id = profile_name_;
      auto query = Parse(sql);
      if (!Check(query.status())) return;
      request.query = std::move(query).value();
      request.options = options_;
      request.deadline_ms = deadline_ms_;
      requests.push_back(std::move(request));
    }

    // With a cluster open (\shards), the batch hash-routes across its
    // shards; otherwise a transient in-process service runs it.
    std::vector<PersonalizationResponse> responses;
    if (sharded_ != nullptr) {
      if (!Check(sharded_->PutProfile(profile_name_, profile_))) return;
      responses = sharded_->PersonalizeBatchAndWait(std::move(requests));
    } else {
      ServiceOptions service_options;
      service_options.num_workers = workers;
      service_options.max_queue_depth = max_queue_depth_;
      service_options.degrade_queue_depth = degrade_queue_depth_;
      // Publish into the shell's registry so \metrics accumulates across
      // batches instead of dying with each transient service.
      service_options.metrics = &metrics_;
      PersonalizationService service(db_.get(), service_options);
      if (trace_on_) service.set_trace_sink(&trace_sink_);
      if (!Check(service.profiles().Put(profile_name_, profile_))) return;
      responses = service.PersonalizeBatchAndWait(requests);
      last_stats_ = service.stats();
      last_workers_ = service.num_workers();
      last_slo_ = service.SloStatus();
      have_stats_ = true;
      service.set_trace_sink(nullptr);
    }
    for (size_t i = 0; i < responses.size(); ++i) {
      const PersonalizationResponse& response = responses[i];
      if (!response.status.ok()) {
        std::printf("[%zu] %s: %s\n", i, ToString(response.disposition),
                    response.status.ToString().c_str());
        continue;
      }
      std::printf("[%zu] %zu rows, %zu preferences, %.3f ms%s%s\n", i,
                  response.results.num_rows(),
                  response.outcome.selected.size() +
                      response.outcome.negatives.size(),
                  response.execution_millis,
                  response.disposition == RequestDisposition::kDegraded
                      ? " (degraded)"
                      : "",
                  response.cache_hit ? " (cached selection)" : "");
    }
    if (sharded_ != nullptr) {
      shard::ShardedStats stats = sharded_->stats();
      std::printf(
          "batch: %zu requests hash-routed across %zu/%zu live shards; "
          "router shed %llu (\\stats for per-shard rows%s)\n",
          responses.size(), sharded_->alive_shards(), sharded_->num_shards(),
          static_cast<unsigned long long>(stats.router.shed),
          trace_on_ ? "; \\explain for the last trace" : "");
      return;
    }
    std::printf(
        "batch: %zu requests on %zu workers; cache %zu hit / %zu miss; "
        "selection %.3f ms, integration %.3f ms, execution %.3f ms "
        "(\\stats for the lifecycle breakdown%s)\n",
        last_stats_.requests, last_workers_, last_stats_.cache_hits,
        last_stats_.cache_misses, last_stats_.selection_millis,
        last_stats_.integration_millis, last_stats_.execution_millis,
        trace_on_ ? "; \\explain for the last trace" : "");
  }

  /// \metrics [json|prom]: the shell's metrics registry — every \batch
  /// service publishes into it, so counters and latency histograms
  /// accumulate across the session.
  void PrintMetrics(const std::string& arg) {
    if (arg.empty() || arg == "json") {
      std::printf("%s\n", metrics_.Export(obs::ExportFormat::kJson).c_str());
    } else if (arg == "prom" || arg == "prometheus") {
      std::printf("%s",
                  metrics_.Export(obs::ExportFormat::kPrometheus).c_str());
    } else {
      std::printf("usage: \\metrics [json|prom]\n");
    }
  }

  /// \trace on|off: capture per-request pipeline traces during \batch.
  void SetTrace(const std::string& arg) {
    if (arg == "on") {
      trace_on_ = true;
      if (sharded_ != nullptr) sharded_->set_trace_sink(&trace_sink_);
      std::printf("tracing on — run a \\batch, then \\explain\n");
    } else if (arg == "off") {
      trace_on_ = false;
      if (sharded_ != nullptr) sharded_->set_trace_sink(nullptr);
    } else {
      std::printf("usage: \\trace on|off\n");
    }
  }

  /// \explain (no SQL): the span tree of the last traced request.
  void PrintLastTrace() {
    std::shared_ptr<const obs::RequestTrace> last = trace_sink_.last();
    if (last == nullptr) {
      std::printf("no trace captured — \\trace on, then run a \\batch\n");
      return;
    }
    std::printf("%s", last->ToString().c_str());
  }

  /// \stats: the overload/lifecycle breakdown of the most recent \batch —
  /// how many requests completed full vs degraded, were shed at admission
  /// or expired in the queue, plus the storage circuit-breaker state.
  void SetChaos(const std::string& arg) {
    if (arg == "off" || arg.empty()) {
      FaultHub::Global()->Reset();
      std::printf("chaos off — every fault site disarmed\n");
      return;
    }
    const uint64_t seed =
        static_cast<uint64_t>(std::strtoull(arg.c_str(), nullptr, 10));
    FaultHub::Global()->ArmRandom(seed, FaultHub::KnownSites());
    std::printf(
        "chaos armed with seed %llu across %zu fault sites — the same\n"
        "seed always yields the same fault schedule. \\chaos off to heal,\n"
        "\\health to see what fired.\n",
        static_cast<unsigned long long>(seed), FaultHub::KnownSites().size());
  }

  /// \shards N [hot] [dir]: open a hash-routed cluster; \shards off
  /// closes it; bare \shards prints the per-shard rows.
  void Shards(const std::string& arg) {
    if (arg == "off") {
      if (sharded_ == nullptr) {
        std::printf("no cluster open\n");
        return;
      }
      sharded_.reset();
      std::printf("cluster closed — \\batch runs in-process again "
                  "(state stays in %s)\n", sharded_dir_.c_str());
      return;
    }
    if (arg.empty()) {
      if (sharded_ == nullptr) {
        std::printf("no cluster open — \\shards N [hot] [dir]\n");
      } else {
        PrintShardRows();
      }
      return;
    }
    if (db_ == nullptr) return;
    std::istringstream in(arg);
    size_t num_shards = 0;
    if (!(in >> num_shards) || num_shards == 0) {
      std::printf("usage: \\shards N [hot] [dir] | \\shards off\n");
      return;
    }
    size_t hot_capacity = 0;
    std::string dir = "qpshell-cluster";
    std::string token;
    if (in >> token) {
      char* end = nullptr;
      unsigned long long value = std::strtoull(token.c_str(), &end, 10);
      if (end != token.c_str() && *end == '\0') {
        hot_capacity = static_cast<size_t>(value);
        if (in >> token) dir = token;
      } else {
        dir = token;
      }
    }
    sharded_.reset();  // Close (flush) any previous cluster first.
    shard::ShardedOptions options;
    options.num_shards = num_shards;
    options.dir = dir;
    options.service.max_queue_depth = max_queue_depth_;
    options.service.degrade_queue_depth = degrade_queue_depth_;
    options.service.metrics = &metrics_;
    options.service.storage.hot_capacity = hot_capacity;
    auto sharded =
        shard::ShardedPersonalizationService::Open(db_.get(), options);
    if (!Check(sharded.status())) return;
    sharded_ = std::move(sharded).value();
    sharded_dir_ = dir;
    if (trace_on_) sharded_->set_trace_sink(&trace_sink_);
    if (!Check(sharded_->PutProfile(profile_name_, profile_))) return;
    std::printf(
        "cluster open: %zu shards under %s/shard-<i>%s; current profile "
        "'%s' routed to shard %zu. \\batch now fans out across shards.\n",
        num_shards, dir.c_str(),
        hot_capacity > 0
            ? (" (tiered: <= " + std::to_string(hot_capacity) +
               " hot profiles per shard)").c_str()
            : " (untiered)",
        profile_name_.c_str(), sharded_->ShardFor(profile_name_));
  }

  void KillShard(const std::string& arg) {
    if (sharded_ == nullptr) {
      std::printf("no cluster open — \\shards N first\n");
      return;
    }
    size_t index = static_cast<size_t>(std::atoll(arg.c_str()));
    if (!Check(sharded_->KillShard(index))) return;
    std::printf("shard %zu down (%zu/%zu alive) — its users shed, "
                "survivors serve. \\recover %zu to heal.\n",
                index, sharded_->alive_shards(), sharded_->num_shards(),
                index);
  }

  void RecoverShard(const std::string& arg) {
    if (sharded_ == nullptr) {
      std::printf("no cluster open — \\shards N first\n");
      return;
    }
    size_t index = static_cast<size_t>(std::atoll(arg.c_str()));
    if (!Check(sharded_->RecoverShard(index))) return;
    auto shard = sharded_->Shard(index);
    storage::StorageStats stats =
        shard == nullptr ? storage::StorageStats{} : shard->stats().storage;
    std::printf("shard %zu recovered (%zu/%zu alive): %llu profiles from "
                "snapshot, %llu WAL records replayed in %.1f ms — every "
                "acknowledged mutation survives the cycle\n",
                index, sharded_->alive_shards(), sharded_->num_shards(),
                static_cast<unsigned long long>(stats.snapshot_users_loaded),
                static_cast<unsigned long long>(stats.records_replayed),
                stats.recovery_millis);
  }

  /// \reshard N: live-reshard the open cluster, printing what moved.
  void Reshard(const std::string& arg) {
    if (sharded_ == nullptr) {
      std::printf("no cluster open — \\shards N first\n");
      return;
    }
    size_t new_shards = static_cast<size_t>(std::atoll(arg.c_str()));
    if (new_shards == 0) {
      std::printf("usage: \\reshard N (N >= 1)\n");
      return;
    }
    shard::MigrationStats before = sharded_->migration_stats();
    if (!Check(sharded_->Reshard(new_shards))) return;
    shard::MigrationStats after = sharded_->migration_stats();
    std::printf(
        "resharded to %zu shards (routing v%llu): %llu partitions moved, "
        "%llu users copied, %llu tail records, %llu dual writes, %llu "
        "retries — cluster served throughout\n",
        sharded_->num_shards(),
        static_cast<unsigned long long>(sharded_->routing_version()),
        static_cast<unsigned long long>(after.partitions_migrated -
                                        before.partitions_migrated),
        static_cast<unsigned long long>(after.users_copied -
                                        before.users_copied),
        static_cast<unsigned long long>(after.tail_records -
                                        before.tail_records),
        static_cast<unsigned long long>(after.dual_writes -
                                        before.dual_writes),
        static_cast<unsigned long long>(after.retries - before.retries));
  }

  /// \migrations: lifetime migration counters, the serving routing
  /// version, and any journaled in-flight partition moves on disk.
  void PrintMigrations() {
    if (sharded_ == nullptr) {
      std::printf("no cluster open — \\shards N first\n");
      return;
    }
    shard::ShardedStats stats = sharded_->stats();
    const shard::MigrationStats& m = stats.migration;
    std::printf(
        "routing v%llu over %zu partitions / %zu shards%s\n"
        "migrations: %llu committed, %llu aborted, %llu active; %llu users "
        "copied, %llu tail records, %llu dual writes, %llu retries, %llu "
        "copy restarts\n",
        static_cast<unsigned long long>(stats.routing_version),
        stats.num_partitions, sharded_->num_shards(),
        m.resharding ? " — RESHARD IN FLIGHT" : "",
        static_cast<unsigned long long>(m.partitions_migrated),
        static_cast<unsigned long long>(m.partitions_aborted),
        static_cast<unsigned long long>(m.active),
        static_cast<unsigned long long>(m.users_copied),
        static_cast<unsigned long long>(m.tail_records),
        static_cast<unsigned long long>(m.dual_writes),
        static_cast<unsigned long long>(m.retries),
        static_cast<unsigned long long>(m.copy_restarts));
    auto journal =
        shard::ReadMigrationJournal(DefaultFileSystem(), sharded_dir_);
    if (!journal.ok()) {
      std::printf("journal: unreadable (%s)\n",
                  journal.status().ToString().c_str());
    } else if (journal.value().empty()) {
      std::printf("journal: clean (no in-flight partition moves)\n");
    } else {
      for (const shard::MigrationJournalEntry& entry : journal.value()) {
        std::printf("journal: partition %u moving shard %u -> %u "
                    "(resolves on reopen if interrupted)\n",
                    entry.partition, entry.source, entry.target);
      }
    }
    std::shared_ptr<const obs::RequestTrace> last =
        sharded_->last_migration_trace();
    if (last != nullptr) {
      std::printf("last migration (trace %016llx):\n%s",
                  static_cast<unsigned long long>(last->trace_id()),
                  last->ToString().c_str());
    }
  }

  /// \blackbox [json|clear]: the in-memory flight recorder — the crash-
  /// forensics ring of recent notable events across every subsystem.
  void PrintBlackbox(const std::string& arg) {
    obs::FlightRecorder* recorder = obs::FlightRecorder::Global();
    if (arg == "clear") {
      recorder->Clear();
      std::printf("flight recorder cleared\n");
      return;
    }
    std::vector<obs::FlightEvent> events = recorder->Dump();
    if (arg == "json") {
      std::printf("%s\n", obs::FlightRecorder::ToJson(events).c_str());
      return;
    }
    if (!arg.empty()) {
      std::printf("usage: \\blackbox [json|clear]\n");
      return;
    }
    if (events.empty()) {
      std::printf("flight recorder empty — run a \\batch (or \\chaos + "
                  "\\batch) first\n");
      return;
    }
    for (const obs::FlightEvent& event : events) {
      std::printf("%6llu %-18s %-24s %-24s a=%llu b=%llu",
                  static_cast<unsigned long long>(event.sequence),
                  obs::FlightEventTypeName(event.type),
                  std::string(event.what_view()).c_str(),
                  std::string(event.detail_view()).c_str(),
                  static_cast<unsigned long long>(event.a),
                  static_cast<unsigned long long>(event.b));
      if (event.trace_id != 0) {
        std::printf(" trace=%016llx",
                    static_cast<unsigned long long>(event.trace_id));
      }
      std::printf("\n");
    }
    std::printf("%zu events retained (%llu recorded in total)\n",
                events.size(),
                static_cast<unsigned long long>(recorder->total_recorded()));
  }

  /// \slo: rolling-window availability/latency objectives. With a
  /// cluster open: one live row per shard. Otherwise: the snapshot taken
  /// at the end of the last \batch (the in-process service is transient,
  /// so its window dies with it).
  void PrintSlo() {
    auto row = [](const char* label, const obs::SloSnapshot& s,
                  const obs::SloOptions& o) {
      std::printf(
          "%s: availability %.4f (target %.3f, burn %.2f), "
          "latency<%.0fms %.4f (target %.3f, burn %.2f), %llu requests "
          "in window\n",
          label, s.availability, o.availability_target,
          s.availability_burn_rate, o.latency_millis, s.latency_attainment,
          o.latency_target, s.latency_burn_rate,
          static_cast<unsigned long long>(s.window_requests));
    };
    if (sharded_ != nullptr) {
      for (size_t i = 0; i < sharded_->num_shards(); ++i) {
        std::shared_ptr<PersonalizationService> shard = sharded_->Shard(i);
        char label[32];
        std::snprintf(label, sizeof(label), "shard %zu", i);
        if (shard == nullptr) {
          std::printf("%s: DOWN\n", label);
          continue;
        }
        row(label, shard->SloStatus(), shard->options().slo);
      }
      std::printf("burn rate = error budget consumption speed; 1.0 is "
                  "exactly on budget, >1 is eating into it\n");
      return;
    }
    if (!have_stats_) {
      std::printf("no SLO window yet — run a \\batch first\n");
      return;
    }
    row("last batch", last_slo_, ServiceOptions().slo);
  }

  /// \route <user>: the user's partition + owner shard, then the
  /// per-shard resident key counts the routing currently produces.
  void Route(const std::string& arg) {
    if (sharded_ == nullptr) {
      std::printf("no cluster open — \\shards N first\n");
      return;
    }
    std::string user = arg.empty() ? profile_name_ : arg;
    size_t shard_index = sharded_->ShardFor(user);
    std::printf("'%s' -> partition %zu -> shard %zu (%s) [routing v%llu]\n",
                user.c_str(), sharded_->PartitionFor(user), shard_index,
                sharded_->IsShardAlive(shard_index) ? "alive" : "DOWN",
                static_cast<unsigned long long>(sharded_->routing_version()));
    for (size_t s = 0; s < sharded_->num_shards(); ++s) {
      auto shard = sharded_->Shard(s);
      if (shard == nullptr) {
        std::printf("  shard %zu: DOWN\n", s);
        continue;
      }
      std::printf("  shard %zu: %zu resident keys%s\n", s,
                  shard->profiles().size(),
                  s == shard_index ? "  <- owner" : "");
    }
  }

  /// The per-shard table behind \shards / \stats / \health: liveness,
  /// traffic, hot/cold residency, breaker and scrubber state per row.
  void PrintShardRows() {
    shard::ShardedStats stats = sharded_->stats();
    std::printf(
        "router: %llu requests, %llu mutations, %llu shed, %llu cache "
        "entries invalidated, %llu kills / %llu recoveries\n",
        static_cast<unsigned long long>(stats.router.requests),
        static_cast<unsigned long long>(stats.router.mutations),
        static_cast<unsigned long long>(stats.router.shed),
        static_cast<unsigned long long>(stats.router.invalidated_entries),
        static_cast<unsigned long long>(stats.router.shard_kills),
        static_cast<unsigned long long>(stats.router.shard_recoveries));
    // Lifecycle counters (requests/shed/...) aggregate cluster-wide in
    // the shared registry — the router line above. Each row below is
    // strictly per-shard state: its population, residency, selection
    // cache, breaker and scrubber.
    std::printf("shard  state  users  resident     cold   loads  evict  "
                "cache h/m  breaker  scrub\n");
    for (const shard::ShardRow& row : stats.shards) {
      if (!row.alive) {
        std::printf("%5zu  DOWN\n", row.shard_id);
        continue;
      }
      auto shard = sharded_->Shard(row.shard_id);
      size_t users = shard == nullptr ? 0 : shard->profiles().size();
      const storage::TierStats& tier = row.stats.tier;
      std::string resident =
          tier.enabled ? std::to_string(tier.hot_resident) + "/" +
                             std::to_string(tier.hot_capacity)
                       : "all";
      std::string cache = std::to_string(row.stats.cache.hits) + "/" +
                          std::to_string(row.stats.cache.misses);
      std::string scrub =
          std::to_string(row.stats.storage.scrubs) + " passes/" +
          std::to_string(row.stats.storage.scrub_corruptions) + " corrupt";
      std::printf("%5zu  up    %5zu  %8s  %7zu  %6llu  %5llu  %9s  %7s  %s\n",
                  row.shard_id, users, resident.c_str(), tier.cold_users,
                  static_cast<unsigned long long>(tier.cold_loads),
                  static_cast<unsigned long long>(tier.evictions),
                  cache.c_str(),
                  row.stats.storage.breaker_open ? "OPEN" : "closed",
                  scrub.c_str());
    }
  }

  void PrintHealth() {
    FaultHub* hub = FaultHub::Global();
    if (hub->armed()) {
      std::printf("chaos ARMED (seed %llu, %llu faults fired)\n",
                  static_cast<unsigned long long>(hub->seed()),
                  static_cast<unsigned long long>(hub->total_fires()));
    } else {
      std::printf("chaos off\n");
    }
    std::printf("%s", hub->Summary().c_str());
    if (sharded_ != nullptr) {
      // Per-shard health: each row is an independent failure domain with
      // its own breaker and scrubber.
      shard::ShardedStats stats = sharded_->stats();
      std::printf("cluster: %zu/%zu shards alive\n",
                  sharded_->alive_shards(), sharded_->num_shards());
      for (const shard::ShardRow& row : stats.shards) {
        if (!row.alive) {
          std::printf("  shard %zu: DOWN — \\recover %zu\n", row.shard_id,
                      row.shard_id);
          continue;
        }
        const storage::StorageStats& st = row.stats.storage;
        const storage::TierStats& tier = row.stats.tier;
        std::printf(
            "  shard %zu: breaker %s (%llu trips), scrubber %llu passes / "
            "%llu corruptions (%llu quarantined), tier %s, %llu load "
            "failures\n",
            row.shard_id, st.breaker_open ? "OPEN" : "closed",
            static_cast<unsigned long long>(st.breaker_trips),
            static_cast<unsigned long long>(st.scrubs),
            static_cast<unsigned long long>(st.scrub_corruptions),
            static_cast<unsigned long long>(st.quarantined_profiles),
            tier.enabled ? (std::to_string(tier.hot_resident) + "/" +
                            std::to_string(tier.hot_capacity) + " hot")
                               .c_str()
                         : "off",
            static_cast<unsigned long long>(tier.load_failures));
      }
      return;
    }
    if (!have_stats_) {
      std::printf("no batch has run yet — \\batch for service health\n");
      return;
    }
    const storage::StorageStats& storage = last_stats_.storage;
    std::printf(
        "breaker: %s — %llu trips, %llu probes, %llu recoveries "
        "(epoch %llu, next backoff %llums)\n",
        storage.breaker_open ? "OPEN (store read-only until a probe heals it)"
                             : "closed",
        static_cast<unsigned long long>(storage.breaker_trips),
        static_cast<unsigned long long>(storage.breaker_probes),
        static_cast<unsigned long long>(storage.breaker_recoveries),
        static_cast<unsigned long long>(storage.breaker_epoch),
        static_cast<unsigned long long>(storage.breaker_backoff_ms));
    std::printf(
        "scrubber: %llu passes, %llu corruptions found, %llu repaired "
        "(%llu failed), %llu profiles quarantined%s%s\n",
        static_cast<unsigned long long>(storage.scrubs),
        static_cast<unsigned long long>(storage.scrub_corruptions),
        static_cast<unsigned long long>(storage.repairs),
        static_cast<unsigned long long>(storage.repair_failures),
        static_cast<unsigned long long>(storage.quarantined_profiles),
        storage.last_scrub_error.empty() ? "" : "\n  last finding: ",
        storage.last_scrub_error.c_str());
  }

  void PrintStats() {
    if (sharded_ != nullptr) {
      PrintShardRows();
      return;
    }
    if (!have_stats_) {
      std::printf("no batch has run yet — \\batch first\n");
      return;
    }
    const ServiceStats& stats = last_stats_;
    uint64_t answered = stats.requests - stats.errors - stats.shed -
                        stats.deadline_exceeded;
    uint64_t full = answered - stats.degraded;
    std::printf(
        "last batch (%zu requests on %zu workers):\n"
        "  full               %llu\n"
        "  degraded           %llu\n"
        "  shed               %llu\n"
        "  deadline_exceeded  %llu\n"
        "  errors             %llu\n"
        "  peak queue depth   %zu%s\n",
        stats.requests, last_workers_,
        static_cast<unsigned long long>(full),
        static_cast<unsigned long long>(stats.degraded),
        static_cast<unsigned long long>(stats.shed),
        static_cast<unsigned long long>(stats.deadline_exceeded),
        static_cast<unsigned long long>(stats.errors),
        stats.max_queue_depth,
        max_queue_depth_ == 0 ? " (queue unbounded)" : "");
    std::printf(
        "storage: %llu fsync retries, %llu failed mutations, breaker %s "
        "(%llu trips)\n",
        static_cast<unsigned long long>(stats.storage.sync_retries),
        static_cast<unsigned long long>(stats.storage.mutation_failures),
        stats.storage.breaker_open ? "OPEN (store is read-only)" : "closed",
        static_cast<unsigned long long>(stats.storage.breaker_trips));
  }

  void Learn(const std::string& sql) {
    auto query = Parse(sql);
    if (!Check(query.status())) return;
    if (learner_ == nullptr) {
      learner_ = std::make_unique<ProfileLearner>(&schema_);
    }
    if (!Check(learner_->Observe(*query))) return;
    auto profile = learner_->BuildProfile();
    if (Check(profile.status())) {
      SetProfile(std::move(profile).value(),
                 "learned from " + std::to_string(learner_->num_observed()) +
                     " queries");
    }
  }

  Schema schema_;
  std::unique_ptr<Database> db_;
  UserProfile profile_;
  std::string profile_name_;
  std::unique_ptr<PersonalizationGraph> graph_;
  std::unique_ptr<ProfileLearner> learner_;
  PersonalizationOptions options_;
  // Executor engine used by the in-shell execution paths (<sql>, \raw);
  // \exec vec|tuple switches it, \exec sq|mq is a \mode alias.
  ExecStrategy exec_strategy_ = ExecStrategy::kVectorized;
  // Overload knobs applied to the next \batch (see \deadline / \qbound /
  // \degrade), and the stats snapshot \stats reports on.
  double deadline_ms_ = 0;
  size_t max_queue_depth_ = 0;
  size_t degrade_queue_depth_ = 0;
  ServiceStats last_stats_;
  size_t last_workers_ = 0;
  obs::SloSnapshot last_slo_;
  bool have_stats_ = false;
  // Observability state shared across \batch services: the registry they
  // publish into (\metrics) and the last-trace sink (\trace, \explain).
  obs::MetricsRegistry metrics_;
  obs::LastTraceSink trace_sink_;
  bool trace_on_ = false;
  // The scale-out cluster (\shards): while open, \batch hash-routes
  // through it and \stats/\health report per-shard rows.
  std::unique_ptr<shard::ShardedPersonalizationService> sharded_;
  std::string sharded_dir_;
};

}  // namespace

int main() {
  Shell shell;
  return shell.Run();
}
