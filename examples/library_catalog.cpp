// Library catalog: the bookseller scenario from the paper's introduction,
// on a completely different schema — demonstrating that the framework is
// schema-independent (nothing in qp_core knows about movies).
//
//   "Are there any good new books?"
//   -> 'The Order of the Phoenix' and 'Matisse and Picasso'
//      if you like author J.K. Rowling and 20th century art,
//   -> 'Essentials of Asian Cuisine' if you are into cooking.
//
// Build & run:  ./build/examples/library_catalog

#include <cstdio>

#include "qp/core/personalizer.h"
#include "qp/query/sql_writer.h"
#include "qp/relational/database.h"

namespace {

using namespace qp;

/// BOOK(bid, title, year, pid), AUTHOR(aid, name), WROTE(bid, aid),
/// SUBJECT(bid, subject), PUBLISHER(pid, name).
Schema BookSchema() {
  Schema schema;
  auto str = DataType::kString;
  auto i64 = DataType::kInt64;
  (void)schema.AddTable(TableSchema(
      "BOOK", {{"bid", i64}, {"title", str}, {"year", i64}, {"pid", i64}},
      {"bid"}));
  (void)schema.AddTable(
      TableSchema("AUTHOR", {{"aid", i64}, {"name", str}}, {"aid"}));
  (void)schema.AddTable(
      TableSchema("WROTE", {{"bid", i64}, {"aid", i64}}, {}));
  (void)schema.AddTable(
      TableSchema("SUBJECT", {{"bid", i64}, {"subject", str}}, {}));
  (void)schema.AddTable(
      TableSchema("PUBLISHER", {{"pid", i64}, {"name", str}}, {"pid"}));
  (void)schema.AddForeignKey({"WROTE", "bid"}, {"BOOK", "bid"});
  (void)schema.AddForeignKey({"WROTE", "aid"}, {"AUTHOR", "aid"});
  (void)schema.AddForeignKey({"SUBJECT", "bid"}, {"BOOK", "bid"});
  (void)schema.AddForeignKey({"BOOK", "pid"}, {"PUBLISHER", "pid"});
  return schema;
}

Status Populate(Database* db) {
  auto I = [](int64_t v) { return Value::Int(v); };
  auto S = [](const char* v) { return Value::Str(v); };
  // Publishers.
  QP_RETURN_IF_ERROR(db->Insert("PUBLISHER", {I(0), S("Bloomsbury")}));
  QP_RETURN_IF_ERROR(db->Insert("PUBLISHER", {I(1), S("Westview")}));
  QP_RETURN_IF_ERROR(db->Insert("PUBLISHER", {I(2), S("Simon & Schuster")}));
  // Authors.
  QP_RETURN_IF_ERROR(db->Insert("AUTHOR", {I(0), S("J.K. Rowling")}));
  QP_RETURN_IF_ERROR(db->Insert("AUTHOR", {I(1), S("J. Flam")}));
  QP_RETURN_IF_ERROR(db->Insert("AUTHOR", {I(2), S("C. Trang")}));
  QP_RETURN_IF_ERROR(db->Insert("AUTHOR", {I(3), S("M. Pollan")}));
  // Books of 2004 (the "new releases") and one older one.
  struct B {
    int64_t bid;
    const char* title;
    int64_t year;
    int64_t pid;
    int64_t author;
    const char* subject;
  };
  const B books[] = {
      {0, "The Order of the Phoenix", 2004, 0, 0, "fantasy"},
      {1, "Matisse and Picasso", 2004, 1, 1, "20th century art"},
      {2, "Essentials of Asian Cuisine", 2004, 2, 2, "cooking"},
      {3, "Second Nature", 2004, 2, 3, "gardening"},
      {4, "The Goblet of Fire", 2000, 0, 0, "fantasy"},
  };
  for (const B& book : books) {
    QP_RETURN_IF_ERROR(db->Insert(
        "BOOK", {I(book.bid), S(book.title), I(book.year), I(book.pid)}));
    QP_RETURN_IF_ERROR(db->Insert("WROTE", {I(book.bid), I(book.author)}));
    QP_RETURN_IF_ERROR(db->Insert("SUBJECT", {I(book.bid), S(book.subject)}));
  }
  return Status::Ok();
}

/// Structural joins shared by every customer profile.
void AddJoins(UserProfile* profile) {
  auto join = [&](const char* ft, const char* fc, const char* tt,
                  const char* tc, double doi) {
    (void)profile->Add(AtomicPreference::Join({ft, fc}, {tt, tc}, doi));
  };
  join("BOOK", "bid", "WROTE", "bid", 0.9);
  join("WROTE", "bid", "BOOK", "bid", 1.0);
  join("WROTE", "aid", "AUTHOR", "aid", 1.0);
  join("AUTHOR", "aid", "WROTE", "aid", 1.0);
  join("BOOK", "bid", "SUBJECT", "bid", 0.9);
  join("SUBJECT", "bid", "BOOK", "bid", 0.9);
  join("BOOK", "pid", "PUBLISHER", "pid", 0.7);
  join("PUBLISHER", "pid", "BOOK", "pid", 0.7);
}

/// select B.title from BOOK B where B.year=2004
SelectQuery NewBooksQuery() {
  SelectQuery query;
  (void)query.AddVariable("B", "BOOK");
  query.AddProjection("B", "title");
  query.set_where(ConditionNode::MakeAtom(
      AtomicCondition::Selection("B", "year", Value::Int(2004))));
  return query;
}

void Recommend(const char* customer, const UserProfile& profile,
               const Schema& schema, const Database& db) {
  auto graph = PersonalizationGraph::Build(&schema, profile);
  if (!graph.ok()) {
    std::printf("%s: %s\n", customer, graph.status().ToString().c_str());
    return;
  }
  Personalizer personalizer(&*graph);
  PersonalizationOptions options;
  options.criterion = InterestCriterion::TopCount(3);
  options.integration.min_satisfied = 1;

  PersonalizationOutcome outcome;
  auto ranked = personalizer.PersonalizeAndExecute(NewBooksQuery(), options,
                                                   db, &outcome);
  std::printf("--- %s asks Lisa: \"any good new books?\" ---\n", customer);
  if (!ranked.ok()) {
    std::printf("  error: %s\n", ranked.status().ToString().c_str());
    return;
  }
  for (const PreferencePath& pref : outcome.selected) {
    std::printf("  considers: %s\n", pref.ToString().c_str());
  }
  std::printf("%s\n", ranked->DebugString().c_str());
}

}  // namespace

int main() {
  Schema schema = BookSchema();
  Database db(schema);
  Status status = Populate(&db);
  if (!status.ok()) {
    std::printf("populate: %s\n", status.ToString().c_str());
    return 1;
  }

  std::printf("The catalogue query everyone shares:\n  %s\n\n",
              ToSql(NewBooksQuery()).c_str());

  // A Rowling / 20th-century-art reader (the paper's first customer).
  UserProfile art_lover;
  AddJoins(&art_lover);
  (void)art_lover.Add(AtomicPreference::Selection(
      {"AUTHOR", "name"}, Value::Str("J.K. Rowling"), 0.95));
  (void)art_lover.Add(AtomicPreference::Selection(
      {"SUBJECT", "subject"}, Value::Str("20th century art"), 0.9));
  Recommend("the art lover", art_lover, schema, db);

  // A cooking fan (the paper's second customer).
  UserProfile cook;
  AddJoins(&cook);
  (void)cook.Add(AtomicPreference::Selection(
      {"SUBJECT", "subject"}, Value::Str("cooking"), 0.9));
  Recommend("the cook", cook, schema, db);

  // A brand-new customer with no profile: the unpersonalized aisle list.
  UserProfile nobody;
  Recommend("a brand new customer", nobody, schema, db);
  return 0;
}
