// Profile inspector: a tour of the preference-model internals.
//
// Parses Julie's profile from the paper's text format, prints her
// personalization graph, enumerates every transitive preference related
// to the "tonight" query with its derived degree of interest, and shows
// how the four interest criteria pick different top-K sets, with the
// selection algorithm's work counters.
//
// Build & run:  ./build/examples/profile_inspector

#include <cstdio>

#include "qp/core/integration.h"
#include "qp/core/selection.h"
#include "qp/data/movie_db.h"
#include "qp/data/paper_example.h"
#include "qp/graph/preference_path.h"
#include "qp/query/sql_writer.h"

int main() {
  using namespace qp;

  Schema schema = MovieSchema();

  // Round-trip the profile through the paper's text format.
  std::string stored = JulieProfile().Serialize();
  std::printf("--- Profile file (paper Figure 2 format) ---\n%s\n",
              stored.c_str());
  auto profile = UserProfile::Parse(stored);
  if (!profile.ok()) {
    std::printf("parse: %s\n", profile.status().ToString().c_str());
    return 1;
  }

  auto graph = PersonalizationGraph::Build(&schema, *profile);
  if (!graph.ok()) {
    std::printf("graph: %s\n", graph.status().ToString().c_str());
    return 1;
  }
  std::printf("--- Personalization graph (%zu join edges, %zu selection "
              "edges) ---\n%s\n",
              graph->num_join_edges(), graph->num_selection_edges(),
              graph->DebugString().c_str());

  SelectQuery query = TonightQuery();
  std::printf("--- Query ---\n%s\n\n", ToSql(query).c_str());

  // Every transitive selection related to the query, per anchor variable.
  std::printf("--- Related transitive preferences (derived degrees) ---\n");
  for (const TupleVariable& var : query.from()) {
    std::printf("anchored at %s (%s):\n", var.alias.c_str(),
                var.table.c_str());
    auto paths = EnumerateTransitiveSelections(*graph, var.alias, var.table,
                                               {"MOVIE", "PLAY"});
    for (const PreferencePath& path : paths) {
      std::printf("  %s\n", path.ToString().c_str());
    }
  }

  // The same top-K question under the four interest criteria.
  PreferenceSelector selector(&*graph);
  struct Named {
    const char* label;
    InterestCriterion criterion;
  };
  const Named criteria[] = {
      {"top-count(3)", InterestCriterion::TopCount(3)},
      {"min-degree(0.7)", InterestCriterion::MinDegree(0.7)},
      {"disjunctive-above(0.72)", InterestCriterion::DisjunctiveAbove(0.72)},
      {"conjunctive-until(0.95)", InterestCriterion::ConjunctiveUntil(0.95)},
  };
  for (const Named& entry : criteria) {
    SelectionStats stats;
    auto selected = selector.Select(query, entry.criterion, &stats);
    if (!selected.ok()) continue;
    std::printf("\n--- Criterion %s -> K=%zu ---\n", entry.label,
                selected->size());
    for (const PreferencePath& path : *selected) {
      std::printf("  %s\n", path.ToString().c_str());
    }
    std::printf("  (pushed %zu, popped %zu, pruned: %zu cycle / %zu "
                "conflict / %zu criterion)\n",
                stats.paths_pushed, stats.paths_popped, stats.pruned_cycle,
                stats.pruned_conflict, stats.pruned_criterion);
  }

  // Both integration forms for the paper's K=3, L=2 setting.
  auto top3 = selector.Select(query, InterestCriterion::TopCount(3));
  if (top3.ok()) {
    PreferenceIntegrator integrator;
    IntegrationParams params;
    params.min_satisfied = 2;
    auto sq = integrator.BuildSingleQuery(query, *top3, params);
    auto mq = integrator.BuildMultipleQueries(query, *top3, params);
    if (sq.ok()) {
      std::printf("\n--- SQ (single query), L=2 of K=3 ---\n%s\n",
                  ToSql(*sq).c_str());
    }
    if (mq.ok()) {
      std::printf("\n--- MQ (multiple queries), L=2 of K=3 ---\n%s\n",
                  ToSql(*mq).c_str());
    }
  }
  return 0;
}
