// Ablation A3: executor join strategies on the movie schema (DESIGN.md
// row A3): index-backed hash joins (default) vs forced nested loops.
// Uses google-benchmark over representative personalization-shaped
// queries.

#include <memory>

#include "benchmark/benchmark.h"
#include "qp/data/movie_db.h"
#include "qp/exec/executor.h"
#include "qp/query/sql_parser.h"

namespace qp {
namespace {

const Database& SharedDb() {
  static Database* db = [] {
    MovieDbConfig config;
    config.num_movies = 2000;
    config.num_actors = 800;
    config.num_directors = 150;
    config.num_theatres = 20;
    auto generated = GenerateMovieDatabase(config);
    return new Database(std::move(generated).value());
  }();
  return *db;
}

const char* QueryFor(int index) {
  switch (index) {
    case 0:  // Single join + selective predicate.
      return "select MV.title from MOVIE MV, GENRE GN where "
             "MV.mid=GN.mid and GN.genre='western'";
    case 1:  // Two-hop chain (typical transitive preference shape).
      return "select distinct MV.title from MOVIE MV, CAST CA, ACTOR AC "
             "where MV.mid=CA.mid and CA.aid=AC.aid and "
             "AC.name='Actor #3'";
    default:  // Three-hop with a date filter (the tonight query shape).
      return "select distinct MV.title from MOVIE MV, PLAY PL, THEATRE TH "
             "where MV.mid=PL.mid and PL.tid=TH.tid and "
             "TH.region='downtown' and PL.date='2003-07-02'";
  }
}

void BM_HashJoin(benchmark::State& state) {
  Executor executor(&SharedDb());
  auto query = ParseSelectQuery(QueryFor(static_cast<int>(state.range(0))));
  for (auto _ : state) {
    auto result = executor.Execute(*query);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_HashJoin)->Arg(0)->Arg(1)->Arg(2);

void BM_NestedLoop(benchmark::State& state) {
  Executor executor(&SharedDb());
  executor.set_join_strategy(JoinStrategy::kNestedLoop);
  auto query = ParseSelectQuery(QueryFor(static_cast<int>(state.range(0))));
  for (auto _ : state) {
    auto result = executor.Execute(*query);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_NestedLoop)->Arg(0)->Arg(1)->Arg(2);

}  // namespace
}  // namespace qp

BENCHMARK_MAIN();
