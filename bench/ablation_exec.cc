// Ablation A3: executor engine and join strategies on the movie schema
// (DESIGN.md row A3): the tuple-at-a-time engine vs the vectorized
// columnar batch engine, each with index-backed hash joins (default) and
// forced nested loops. Uses google-benchmark over representative
// personalization-shaped queries, then writes a BenchReport JSON sidecar
// ($QP_BENCH_JSON) with mean per-query times and the vectorized speedup
// so CI snapshots can diff strategies.

#include <memory>
#include <string>

#include "bench_util.h"
#include "benchmark/benchmark.h"
#include "qp/data/movie_db.h"
#include "qp/exec/executor.h"
#include "qp/query/sql_parser.h"
#include "qp/util/timer.h"

namespace qp {
namespace {

const Database& SharedDb() {
  static Database* db = [] {
    MovieDbConfig config;
    config.num_movies = 2000;
    config.num_actors = 800;
    config.num_directors = 150;
    config.num_theatres = 20;
    auto generated = GenerateMovieDatabase(config);
    return new Database(std::move(generated).value());
  }();
  return *db;
}

constexpr int kQueries = 3;

const char* QueryFor(int index) {
  switch (index) {
    case 0:  // Single join + selective predicate.
      return "select MV.title from MOVIE MV, GENRE GN where "
             "MV.mid=GN.mid and GN.genre='western'";
    case 1:  // Two-hop chain (typical transitive preference shape).
      return "select distinct MV.title from MOVIE MV, CAST CA, ACTOR AC "
             "where MV.mid=CA.mid and CA.aid=AC.aid and "
             "AC.name='Actor #3'";
    default:  // Three-hop with a date filter (the tonight query shape).
      return "select distinct MV.title from MOVIE MV, PLAY PL, THEATRE TH "
             "where MV.mid=PL.mid and PL.tid=TH.tid and "
             "TH.region='downtown' and PL.date='2003-07-02'";
  }
}

Executor MakeExecutor(ExecStrategy engine, JoinStrategy joins) {
  Executor executor(&SharedDb());
  executor.set_exec_strategy(engine);
  executor.set_join_strategy(joins);
  return executor;
}

void RunQuery(benchmark::State& state, ExecStrategy engine,
              JoinStrategy joins) {
  Executor executor = MakeExecutor(engine, joins);
  auto query = ParseSelectQuery(QueryFor(static_cast<int>(state.range(0))));
  for (auto _ : state) {
    auto result = executor.Execute(*query);
    benchmark::DoNotOptimize(result);
  }
}

void BM_TupleHashJoin(benchmark::State& state) {
  RunQuery(state, ExecStrategy::kTuple, JoinStrategy::kHashJoin);
}
BENCHMARK(BM_TupleHashJoin)->Arg(0)->Arg(1)->Arg(2);

void BM_VectorizedHashJoin(benchmark::State& state) {
  RunQuery(state, ExecStrategy::kVectorized, JoinStrategy::kHashJoin);
}
BENCHMARK(BM_VectorizedHashJoin)->Arg(0)->Arg(1)->Arg(2);

void BM_TupleNestedLoop(benchmark::State& state) {
  RunQuery(state, ExecStrategy::kTuple, JoinStrategy::kNestedLoop);
}
BENCHMARK(BM_TupleNestedLoop)->Arg(0)->Arg(1)->Arg(2);

void BM_VectorizedNestedLoop(benchmark::State& state) {
  RunQuery(state, ExecStrategy::kVectorized, JoinStrategy::kNestedLoop);
}
BENCHMARK(BM_VectorizedNestedLoop)->Arg(0)->Arg(1)->Arg(2);

/// Mean wall time per execution over `iters` runs, in milliseconds.
double MeanMillis(Executor* executor, const SelectQuery& query,
                  int iters) {
  WallTimer timer;
  for (int i = 0; i < iters; ++i) {
    auto result = executor->Execute(query);
    benchmark::DoNotOptimize(result);
  }
  return timer.ElapsedMillis() / iters;
}

/// The machine-readable snapshot: per-query mean times for both engines
/// (hash joins — the production configuration) and the aggregate
/// tuple/vectorized ratio.
void WriteReport() {
  bench::BenchReport report("ablation_exec");
  const int kIters = 30;
  double total_tuple = 0;
  double total_vec = 0;
  for (int q = 0; q < kQueries; ++q) {
    auto query = ParseSelectQuery(QueryFor(q));
    Executor tuple =
        MakeExecutor(ExecStrategy::kTuple, JoinStrategy::kHashJoin);
    Executor vec =
        MakeExecutor(ExecStrategy::kVectorized, JoinStrategy::kHashJoin);
    // Warm both paths once so lazily built postings indexes don't skew
    // whichever engine runs first.
    (void)tuple.Execute(*query);
    (void)vec.Execute(*query);
    const double tuple_ms = MeanMillis(&tuple, *query, kIters);
    const double vec_ms = MeanMillis(&vec, *query, kIters);
    total_tuple += tuple_ms;
    total_vec += vec_ms;
    const std::string qq = std::to_string(q);
    report.AddScalar("q" + qq + "_tuple_ms", tuple_ms);
    report.AddScalar("q" + qq + "_vec_ms", vec_ms);
  }
  report.AddScalar("total_tuple_ms", total_tuple);
  report.AddScalar("total_vec_ms", total_vec);
  if (total_vec > 0) {
    report.AddScalar("vec_speedup", total_tuple / total_vec);
  }
  report.Write();
}

}  // namespace
}  // namespace qp

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  qp::WriteReport();
  return 0;
}
