// Ablation A1: what the best-first traversal and its pruning buy over
// exhaustive enumeration (DESIGN.md table, row A1).
//
// The brute-force baseline enumerates every acyclic transitive selection
// related to the query, sorts, and applies the criterion; the paper's
// algorithm (Figure 5) explores candidates best-first and prunes on
// cycles, conflicts and the interest criterion. Both return identical
// top-K sets (tested in selection_test.cc); this bench quantifies the
// work saved.

#include <vector>

#include "bench_util.h"
#include "qp/core/selection.h"
#include "qp/util/string_util.h"
#include "qp/util/timer.h"

namespace qp {
namespace bench {
namespace {

void Run() {
  PrintHeader("Ablation A1", "best-first + pruning vs brute-force "
              "enumeration (avg per selection call)",
              "best-first examines far fewer candidates for small K; the "
              "gap narrows as K approaches the number of related "
              "preferences");

  BenchEnv env;
  std::vector<SelectQuery> queries = env.MakeQueries(6, 55);
  Rng rng(1234);

  PrintRow({"K", "fast (ms)", "brute (ms)", "fast popped",
            "brute enumerated"});
  for (size_t k : {1, 5, 10, 25, 50, 100}) {
    double fast_ms = 0;
    double brute_ms = 0;
    size_t fast_popped = 0;
    size_t brute_enumerated = 0;
    size_t runs = 0;
    for (size_t p = 0; p < 8; ++p) {
      UserProfile profile = env.MakeProfile(120, &rng);
      auto graph = PersonalizationGraph::Build(&env.schema(), profile);
      if (!graph.ok()) continue;
      PreferenceSelector selector(&*graph);
      for (const SelectQuery& query : queries) {
        SelectionStats stats;
        WallTimer timer;
        auto fast = selector.Select(query, InterestCriterion::TopCount(k),
                                    &stats);
        fast_ms += timer.ElapsedMillis();
        size_t enumerated = 0;
        timer.Restart();
        auto brute = selector.SelectBruteForce(
            query, InterestCriterion::TopCount(k), &enumerated);
        brute_ms += timer.ElapsedMillis();
        if (!fast.ok() || !brute.ok()) continue;
        fast_popped += stats.paths_popped;
        brute_enumerated += enumerated;
        ++runs;
      }
    }
    if (runs == 0) continue;
    PrintRow({std::to_string(k), FormatDouble(fast_ms / runs, 4),
              FormatDouble(brute_ms / runs, 4),
              std::to_string(fast_popped / runs),
              std::to_string(brute_enumerated / runs)});
  }
}

}  // namespace
}  // namespace bench
}  // namespace qp

int main() {
  qp::bench::Run();
  return 0;
}
