// Figure 9: Comparison of SQ and MQ with L (K = 10, M = 0).
//
// SQ must build the disjunction of all C(K-M, L) combinations of L
// conditions, so its integration and execution times track the binomial
// coefficient (peaking at L = K/2); MQ builds K - M partial queries
// regardless of L, so both its times are flat and near zero.
//
// Execution times are reported for both executor engines (tuple vs
// vectorized batch) and emitted as a BenchReport JSON sidecar
// ($QP_BENCH_JSON) alongside the table.

#include <string>
#include <vector>

#include "bench_util.h"
#include "qp/core/integration.h"
#include "qp/core/selection.h"
#include "qp/exec/executor.h"
#include "qp/util/string_util.h"
#include "qp/util/timer.h"

namespace qp {
namespace bench {
namespace {

void Run() {
  PrintHeader("Figure 9", "SQ vs MQ integration & execution time with L "
              "(K=10, ms)",
              "MQ flat and ~0 (K-M partial queries independent of L); SQ "
              "tracks C(K-M, L) — rises towards L=K/2, falls at L=K; "
              "vectorized execution beats tuple-at-a-time");

  BenchEnv env;
  Executor tuple_exec(&env.db());
  tuple_exec.set_exec_strategy(ExecStrategy::kTuple);
  Executor vec_exec(&env.db());
  vec_exec.set_exec_strategy(ExecStrategy::kVectorized);
  PreferenceIntegrator integrator;
  const size_t kProfiles = 5;
  const size_t kQueries = 3;
  std::vector<SelectQuery> queries = env.MakeQueries(kQueries, 91);

  // Pre-select the top-10 preferences per (profile, query) pair once.
  struct Prepared {
    SelectQuery query;
    std::vector<PreferencePath> prefs;
  };
  std::vector<Prepared> prepared;
  std::vector<PersonalizationGraph> graphs;
  Rng rng(777);
  for (size_t p = 0; p < kProfiles; ++p) {
    UserProfile profile = env.MakeProfile(150, &rng);
    auto graph = PersonalizationGraph::Build(&env.schema(), profile);
    if (!graph.ok()) continue;
    graphs.push_back(std::move(graph).value());
  }
  for (PersonalizationGraph& graph : graphs) {
    PreferenceSelector selector(&graph);
    for (const SelectQuery& query : queries) {
      auto prefs = selector.Select(query, InterestCriterion::TopCount(10));
      if (!prefs.ok() || prefs->size() < 10) continue;
      prepared.push_back({query, std::move(prefs).value()});
    }
  }

  BenchReport report("fig9_sq_mq_vs_l");
  double total_sq_tuple = 0, total_sq_vec = 0;
  double total_mq_tuple = 0, total_mq_vec = 0;

  PrintRow({"L", "C(10,L)", "SQ integ", "MQ integ", "SQ ex(t)", "SQ ex(v)",
            "MQ ex(t)", "MQ ex(v)"});
  for (size_t l = 1; l <= 10; ++l) {
    double sq_integ = 0;
    double mq_integ = 0;
    double sq_tuple = 0, sq_vec = 0;
    double mq_tuple = 0, mq_vec = 0;
    size_t runs = 0;
    for (const Prepared& item : prepared) {
      IntegrationParams params;
      params.min_satisfied = l;

      WallTimer timer;
      auto sq = integrator.BuildSingleQuery(item.query, item.prefs, params);
      sq_integ += timer.ElapsedMillis();
      timer.Restart();
      auto mq =
          integrator.BuildMultipleQueries(item.query, item.prefs, params);
      mq_integ += timer.ElapsedMillis();
      if (!sq.ok() || !mq.ok()) continue;

      timer.Restart();
      auto sq_t = tuple_exec.Execute(*sq);
      sq_tuple += timer.ElapsedMillis();
      timer.Restart();
      auto sq_v = vec_exec.Execute(*sq);
      sq_vec += timer.ElapsedMillis();
      timer.Restart();
      auto mq_t = tuple_exec.Execute(*mq);
      mq_tuple += timer.ElapsedMillis();
      timer.Restart();
      auto mq_v = vec_exec.Execute(*mq);
      mq_vec += timer.ElapsedMillis();
      if (!sq_t.ok() || !sq_v.ok() || !mq_t.ok() || !mq_v.ok()) continue;
      ++runs;
    }
    if (runs == 0) continue;
    total_sq_tuple += sq_tuple;
    total_sq_vec += sq_vec;
    total_mq_tuple += mq_tuple;
    total_mq_vec += mq_vec;
    size_t combos = 1;
    for (size_t i = 0; i < l; ++i) combos = combos * (10 - i) / (i + 1);
    const std::string ll = std::to_string(l);
    report.AddScalar("l" + ll + "_sq_exec_tuple_ms", sq_tuple / runs);
    report.AddScalar("l" + ll + "_sq_exec_vec_ms", sq_vec / runs);
    report.AddScalar("l" + ll + "_mq_exec_tuple_ms", mq_tuple / runs);
    report.AddScalar("l" + ll + "_mq_exec_vec_ms", mq_vec / runs);
    PrintRow({ll, std::to_string(combos),
              FormatDouble(sq_integ / runs, 4),
              FormatDouble(mq_integ / runs, 4),
              FormatDouble(sq_tuple / runs, 4),
              FormatDouble(sq_vec / runs, 4),
              FormatDouble(mq_tuple / runs, 4),
              FormatDouble(mq_vec / runs, 4)});
  }
  report.AddScalar("total_sq_exec_tuple_ms", total_sq_tuple);
  report.AddScalar("total_sq_exec_vec_ms", total_sq_vec);
  report.AddScalar("total_mq_exec_tuple_ms", total_mq_tuple);
  report.AddScalar("total_mq_exec_vec_ms", total_mq_vec);
  if (total_sq_vec > 0) {
    report.AddScalar("vec_speedup_sq", total_sq_tuple / total_sq_vec);
  }
  if (total_mq_vec > 0) {
    report.AddScalar("vec_speedup_mq", total_mq_tuple / total_mq_vec);
  }
  report.Write();
}

}  // namespace
}  // namespace bench
}  // namespace qp

int main() {
  qp::bench::Run();
  return 0;
}
