// Figure 9: Comparison of SQ and MQ with L (K = 10, M = 0).
//
// SQ must build the disjunction of all C(K-M, L) combinations of L
// conditions, so its integration and execution times track the binomial
// coefficient (peaking at L = K/2); MQ builds K - M partial queries
// regardless of L, so both its times are flat and near zero.

#include <vector>

#include "bench_util.h"
#include "qp/core/integration.h"
#include "qp/core/selection.h"
#include "qp/exec/executor.h"
#include "qp/util/string_util.h"
#include "qp/util/timer.h"

namespace qp {
namespace bench {
namespace {

void Run() {
  PrintHeader("Figure 9", "SQ vs MQ integration & execution time with L "
              "(K=10, ms)",
              "MQ flat and ~0 (K-M partial queries independent of L); SQ "
              "tracks C(K-M, L) — rises towards L=K/2, falls at L=K");

  BenchEnv env;
  Executor executor(&env.db());
  PreferenceIntegrator integrator;
  const size_t kProfiles = 5;
  const size_t kQueries = 3;
  std::vector<SelectQuery> queries = env.MakeQueries(kQueries, 91);

  // Pre-select the top-10 preferences per (profile, query) pair once.
  struct Prepared {
    SelectQuery query;
    std::vector<PreferencePath> prefs;
  };
  std::vector<Prepared> prepared;
  std::vector<PersonalizationGraph> graphs;
  Rng rng(777);
  for (size_t p = 0; p < kProfiles; ++p) {
    UserProfile profile = env.MakeProfile(150, &rng);
    auto graph = PersonalizationGraph::Build(&env.schema(), profile);
    if (!graph.ok()) continue;
    graphs.push_back(std::move(graph).value());
  }
  for (PersonalizationGraph& graph : graphs) {
    PreferenceSelector selector(&graph);
    for (const SelectQuery& query : queries) {
      auto prefs = selector.Select(query, InterestCriterion::TopCount(10));
      if (!prefs.ok() || prefs->size() < 10) continue;
      prepared.push_back({query, std::move(prefs).value()});
    }
  }

  PrintRow({"L", "C(10,L)", "SQ integ", "MQ integ", "SQ exec", "MQ exec"});
  for (size_t l = 1; l <= 10; ++l) {
    double sq_integ = 0;
    double mq_integ = 0;
    double sq_exec = 0;
    double mq_exec = 0;
    size_t runs = 0;
    for (const Prepared& item : prepared) {
      IntegrationParams params;
      params.min_satisfied = l;

      WallTimer timer;
      auto sq = integrator.BuildSingleQuery(item.query, item.prefs, params);
      sq_integ += timer.ElapsedMillis();
      timer.Restart();
      auto mq =
          integrator.BuildMultipleQueries(item.query, item.prefs, params);
      mq_integ += timer.ElapsedMillis();
      if (!sq.ok() || !mq.ok()) continue;

      timer.Restart();
      auto sq_result = executor.Execute(*sq);
      sq_exec += timer.ElapsedMillis();
      timer.Restart();
      auto mq_result = executor.Execute(*mq);
      mq_exec += timer.ElapsedMillis();
      if (!sq_result.ok() || !mq_result.ok()) continue;
      ++runs;
    }
    if (runs == 0) continue;
    size_t combos = 1;
    for (size_t i = 0; i < l; ++i) combos = combos * (10 - i) / (i + 1);
    PrintRow({std::to_string(l), std::to_string(combos),
              FormatDouble(sq_integ / runs, 4),
              FormatDouble(mq_integ / runs, 4),
              FormatDouble(sq_exec / runs, 4),
              FormatDouble(mq_exec / runs, 4)});
  }
}

}  // namespace
}  // namespace bench
}  // namespace qp

int main() {
  qp::bench::Run();
  return 0;
}
