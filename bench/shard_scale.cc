// Shard scale-out benchmark: a zipfian closed loop over a sharded,
// tiered cluster holding far more distinct users than the hot budget
// admits, plus a kill/recover pass proving zero acknowledged-mutation
// loss. Reported scalars (BenchReport JSON via $QP_BENCH_JSON):
//   users                — distinct users ingested (>= 1M by default;
//                          $QP_SHARD_USERS overrides for smoke runs)
//   shards, hot_budget_per_shard, hot_budget_total
//   ingest_seconds, ingest_per_s — durable Put throughput at ingest
//   max_hot_resident     — max per-shard residency ever sampled; the
//                          acceptance bar is <= hot_budget_per_shard
//   residency_bounded    — 1 iff the bar held at every sample
//   closed_loop_requests, closed_loop_qps — zipfian personalization
//                          throughput against the tiered cluster
//   tier_hit_rate, tier_cold_loads, tier_evictions
//   reshard_to_shards, reshard_seconds, reshard_partitions_moved,
//   reshard_users_moved  — the mid-run live reshard (grow by two) with
//                          a closed loop racing it
//   reshard_window_requests, reshard_window_p99_ms — request latency
//                          p99 *during* the migration window (the
//                          drain/cutover barrier tax; gated in CI)
//   reshard_acked_loss, reshard_zero_acked_loss — sampled byte-equality
//                          of acknowledged state across the reshard
//                          (reshard_zero_acked_loss must be 1)
//   chaos_kills, chaos_recoveries, acked_loss, zero_acked_loss —
//                          per-shard kill/recover with acknowledged
//                          re-puts in flight; acked_loss counts users
//                          whose recovered bytes diverged (must be 0)
// plus the qp_tier_load_seconds cold-load latency histogram.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "benchmark/benchmark.h"
#include "qp/data/movie_db.h"
#include "qp/data/workload.h"
#include "qp/pref/profile_generator.h"
#include "qp/shard/sharded_service.h"
#include "qp/storage/fault_injection.h"
#include "qp/storage/record.h"
#include "qp/util/random.h"

namespace qp {
namespace shard {
namespace {

bench::BenchReport& Report() {
  static auto* report = new bench::BenchReport("shard_scale");
  return *report;
}

size_t EnvSize(const char* name, size_t fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr) return fallback;
  long long value = std::atoll(env);
  return value > 0 ? static_cast<size_t>(value) : fallback;
}

constexpr size_t kTemplates = 8;

std::string UserId(size_t index) { return "z" + std::to_string(index); }

/// Every user's profile is a pure function of its index, so the
/// zero-loss check can verify any user without storing a million
/// expected strings.
const UserProfile& TemplateFor(size_t index,
                               const std::vector<UserProfile>& templates) {
  return templates[index % kTemplates];
}

/// Approximate zipfian rank draw (s ~ 1): log-uniform over [0, n).
/// Rank 0 is the hottest user; the tail is touched rarely but is
/// touched — which is exactly what pages cold profiles in.
size_t ZipfRank(Rng* rng, size_t n) {
  double u = rng->NextDouble();
  double rank = std::exp(u * std::log(static_cast<double>(n))) - 1.0;
  size_t index = static_cast<size_t>(rank);
  return index < n ? index : n - 1;
}

void BM_ZipfianClosedLoopAndKillRecover(benchmark::State& state) {
  const size_t kUsers = EnvSize("QP_SHARD_USERS", 1000000);
  const size_t kShards = EnvSize("QP_SHARD_COUNT", 4);
  const size_t kHotBudget = EnvSize("QP_SHARD_HOT", 4096);
  const size_t kRequests = EnvSize("QP_SHARD_REQUESTS", 20000);
  const size_t kBatch = 256;

  // A small database keeps per-request work light: the subject here is
  // residency and routing, not join throughput.
  MovieDbConfig config;
  config.num_movies = 200;
  config.num_actors = 100;
  config.num_directors = 30;
  config.num_theatres = 6;
  config.num_days = 3;
  config.seed = 20040308;
  auto db_or = GenerateMovieDatabase(config);
  if (!db_or.ok()) {
    state.SkipWithError("database generation failed");
    return;
  }
  Database db = std::move(db_or).value();
  auto pools = MovieCandidatePools(db);
  if (!pools.ok()) {
    state.SkipWithError("candidate pools failed");
    return;
  }
  ProfileGenerator generator(&db.schema(), std::move(pools).value());
  std::vector<UserProfile> templates;
  Rng template_rng(97);
  for (size_t t = 0; t < kTemplates; ++t) {
    ProfileGeneratorOptions options;
    options.num_selections = 3;
    auto profile = generator.Generate(options, &template_rng);
    if (!profile.ok()) {
      state.SkipWithError("profile generation failed");
      return;
    }
    templates.push_back(std::move(profile).value());
  }
  WorkloadGenerator workload(&db, 31);
  auto queries_or = workload.RandomQueries(4);
  if (!queries_or.ok()) {
    state.SkipWithError("workload generation failed");
    return;
  }
  std::vector<SelectQuery> queries = std::move(queries_or).value();

  for (auto _ : state) {
    // An in-memory filesystem: a million durable Puts without making
    // this benchmark a disk benchmark. The durability *logic* (WAL
    // append before ack, snapshot + overlay reload) is exactly the
    // production path.
    storage::FaultInjectingFileSystem fs;
    ShardedOptions options;
    options.num_shards = kShards;
    options.dir = "cluster";
    options.service.num_workers = 4;
    options.service.cache_capacity = 4096;
    options.service.storage.fs = &fs;
    options.service.storage.background_compaction = false;
    options.service.storage.compact_threshold_bytes = 0;  // Explicit only.
    options.service.storage.hot_capacity = kHotBudget;
    auto sharded_or = ShardedPersonalizationService::Open(&db, options);
    if (!sharded_or.ok()) {
      state.SkipWithError("cluster open failed");
      return;
    }
    auto sharded = std::move(sharded_or).value();

    // Phase 1 — ingest: every distinct user becomes durable cluster
    // state; residency stays bounded the whole way.
    size_t max_resident = 0;
    auto sample_residency = [&] {
      ShardedStats stats = sharded->stats();
      for (const ShardRow& row : stats.shards) {
        if (row.alive && row.stats.tier.hot_resident > max_resident) {
          max_resident = row.stats.tier.hot_resident;
        }
      }
    };
    auto ingest_start = std::chrono::steady_clock::now();
    for (size_t u = 0; u < kUsers; ++u) {
      Status put =
          sharded->PutProfile(UserId(u), TemplateFor(u, templates));
      if (!put.ok()) {
        state.SkipWithError("ingest put failed");
        return;
      }
      if (u % 65536 == 0) sample_residency();
    }
    double ingest_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      ingest_start)
            .count();

    // Checkpoint each shard: overlay tails become snapshot bodies, so
    // the closed loop's cold loads take the range-read path.
    for (size_t s = 0; s < kShards; ++s) {
      Status checkpointed = sharded->Shard(s)->profiles().Checkpoint();
      if (!checkpointed.ok()) {
        state.SkipWithError("checkpoint failed");
        return;
      }
    }

    // Phase 2 — zipfian closed loop: a hot head that lives in memory, a
    // cold tail that pages in on demand. Selection only (execute=false):
    // the subject is profile residency, not join throughput.
    Rng zipf_rng(0x21bf);
    size_t completed = 0;
    auto loop_start = std::chrono::steady_clock::now();
    while (completed < kRequests) {
      std::vector<PersonalizationRequest> batch;
      size_t n = std::min(kBatch, kRequests - completed);
      batch.reserve(n);
      for (size_t i = 0; i < n; ++i) {
        PersonalizationRequest request;
        request.user_id = UserId(ZipfRank(&zipf_rng, kUsers));
        request.query = queries[(completed + i) % queries.size()];
        request.options.criterion = InterestCriterion::TopCount(4);
        request.execute = false;
        batch.push_back(std::move(request));
      }
      std::vector<PersonalizationResponse> responses =
          sharded->PersonalizeBatchAndWait(batch);
      for (const PersonalizationResponse& response : responses) {
        if (!response.status.ok()) {
          state.SkipWithError("closed-loop request failed");
          return;
        }
      }
      completed += n;
      sample_residency();
    }
    double loop_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      loop_start)
            .count();

    // Tier accounting is per-store and resets when a shard recovers, so
    // aggregate it now, before the chaos phase reopens anything.
    uint64_t hot_hits = 0, cold_loads = 0, evictions = 0;
    {
      ShardedStats stats = sharded->stats();
      for (const ShardRow& row : stats.shards) {
        hot_hits += row.stats.tier.hot_hits;
        cold_loads += row.stats.tier.cold_loads;
        evictions += row.stats.tier.evictions;
      }
    }

    // Phase 3 — live reshard under traffic: grow the cluster by two
    // shards while a closed loop keeps personalizing against it. The
    // loop's per-request latency during the migration window measures
    // the drain/cutover barrier tax; a byte-equality sample across the
    // reshard measures acknowledged-state loss (must be zero).
    const size_t kGrownShards = kShards + 2;
    MigrationStats migration_before = sharded->migration_stats();
    std::atomic<bool> reshard_done{false};
    std::vector<double> window_latencies_ms;
    std::thread window_traffic([&] {
      Rng traffic_rng(0x7e5a);
      while (!reshard_done.load(std::memory_order_relaxed)) {
        PersonalizationRequest request;
        request.user_id = UserId(ZipfRank(&traffic_rng, kUsers));
        request.query = queries[window_latencies_ms.size() % queries.size()];
        request.options.criterion = InterestCriterion::TopCount(4);
        request.execute = false;
        auto start = std::chrono::steady_clock::now();
        PersonalizationResponse response = sharded->Personalize(request);
        double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - start)
                        .count();
        if (response.status.ok()) window_latencies_ms.push_back(ms);
      }
    });
    auto reshard_start = std::chrono::steady_clock::now();
    Status resharded = sharded->Reshard(kGrownShards);
    double reshard_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      reshard_start)
            .count();
    reshard_done.store(true, std::memory_order_relaxed);
    window_traffic.join();
    if (!resharded.ok()) {
      state.SkipWithError("reshard failed");
      return;
    }
    MigrationStats migration_after = sharded->migration_stats();
    double window_p99_ms = 0.0;
    if (!window_latencies_ms.empty()) {
      std::sort(window_latencies_ms.begin(), window_latencies_ms.end());
      window_p99_ms = window_latencies_ms[static_cast<size_t>(
          0.99 * static_cast<double>(window_latencies_ms.size() - 1))];
    }
    // Sampled byte-equality across the move: ingest acknowledged every
    // profile, so every sampled user must read back template-identical
    // from whichever shard owns it now.
    size_t reshard_loss = 0;
    Rng verify_rng(0xca11);
    for (size_t i = 0; i < 512; ++i) {
      size_t u = static_cast<size_t>(verify_rng.Below(kUsers));
      auto snapshot = sharded->GetProfile(UserId(u));
      if (!snapshot.ok() ||
          snapshot.value().profile->Serialize() !=
              TemplateFor(u, templates).Serialize()) {
        ++reshard_loss;
      }
    }

    // Phase 4 — kill/recover every shard in turn with freshly
    // acknowledged mutations on it: nothing acknowledged may diverge.
    size_t kills = 0, recoveries = 0, acked_loss = 0;
    Rng chaos_rng(0xdead);
    for (size_t s = 0; s < sharded->num_shards(); ++s) {
      // Re-put a sample of this shard's users with a *different*
      // template (rotated by one) and require the ack first.
      std::vector<size_t> mutated;
      for (size_t tries = 0; mutated.size() < 64 && tries < 20000;
           ++tries) {
        size_t u = static_cast<size_t>(chaos_rng.Below(kUsers));
        if (sharded->ShardFor(UserId(u)) != s) continue;
        Status put = sharded->PutProfile(
            UserId(u), TemplateFor(u + 1, templates));
        if (!put.ok()) {
          state.SkipWithError("chaos mutation failed");
          return;
        }
        mutated.push_back(u);
      }
      if (!sharded->KillShard(s).ok()) {
        state.SkipWithError("kill failed");
        return;
      }
      ++kills;
      if (!sharded->RecoverShard(s).ok()) {
        state.SkipWithError("recover failed");
        return;
      }
      ++recoveries;
      for (size_t u : mutated) {
        auto snapshot = sharded->GetProfile(UserId(u));
        if (!snapshot.ok() ||
            snapshot.value().profile->Serialize() !=
                TemplateFor(u + 1, templates).Serialize()) {
          ++acked_loss;
        }
      }
    }

    // Final accounting: the post-recovery population proves no user was
    // lost to the kill/recover cycling.
    ShardedStats stats = sharded->stats();
    size_t population = 0;
    for (const ShardRow& row : stats.shards) {
      population += row.stats.tier.hot_resident + row.stats.tier.cold_users;
    }
    double hit_rate =
        hot_hits + cold_loads > 0
            ? static_cast<double>(hot_hits) /
                  static_cast<double>(hot_hits + cold_loads)
            : 0.0;
    const bool bounded = max_resident <= kHotBudget;
    double closed_loop_qps =
        loop_seconds > 0 ? static_cast<double>(completed) / loop_seconds
                         : 0.0;

    state.counters["users"] = static_cast<double>(population);
    state.counters["closed_loop_qps"] = closed_loop_qps;
    state.counters["max_hot_resident"] = static_cast<double>(max_resident);
    state.counters["acked_loss"] = static_cast<double>(acked_loss);

    Report().AddScalar("users", static_cast<double>(population));
    Report().AddScalar("shards", static_cast<double>(kShards));
    Report().AddScalar("hot_budget_per_shard",
                       static_cast<double>(kHotBudget));
    Report().AddScalar("hot_budget_total",
                       static_cast<double>(kHotBudget * kShards));
    Report().AddScalar("ingest_seconds", ingest_seconds);
    Report().AddScalar("ingest_per_s",
                       ingest_seconds > 0
                           ? static_cast<double>(kUsers) / ingest_seconds
                           : 0.0);
    Report().AddScalar("max_hot_resident",
                       static_cast<double>(max_resident));
    Report().AddScalar("residency_bounded", bounded ? 1.0 : 0.0);
    Report().AddScalar("closed_loop_requests",
                       static_cast<double>(completed));
    Report().AddScalar("closed_loop_qps", closed_loop_qps);
    Report().AddScalar("tier_hit_rate", hit_rate);
    Report().AddScalar("tier_cold_loads", static_cast<double>(cold_loads));
    Report().AddScalar("tier_evictions", static_cast<double>(evictions));
    Report().AddScalar("reshard_to_shards",
                       static_cast<double>(kGrownShards));
    Report().AddScalar("reshard_seconds", reshard_seconds);
    Report().AddScalar(
        "reshard_partitions_moved",
        static_cast<double>(migration_after.partitions_migrated -
                            migration_before.partitions_migrated));
    Report().AddScalar("reshard_users_moved",
                       static_cast<double>(migration_after.users_copied -
                                           migration_before.users_copied));
    Report().AddScalar("reshard_window_requests",
                       static_cast<double>(window_latencies_ms.size()));
    Report().AddScalar("reshard_window_p99_ms", window_p99_ms);
    Report().AddScalar("reshard_acked_loss",
                       static_cast<double>(reshard_loss));
    Report().AddScalar("reshard_zero_acked_loss",
                       reshard_loss == 0 ? 1.0 : 0.0);
    Report().AddScalar("chaos_kills", static_cast<double>(kills));
    Report().AddScalar("chaos_recoveries", static_cast<double>(recoveries));
    Report().AddScalar("acked_loss", static_cast<double>(acked_loss));
    Report().AddScalar("zero_acked_loss", acked_loss == 0 ? 1.0 : 0.0);
    Report().AddHistogram(
        "qp_tier_load_seconds",
        sharded->metrics()->histogram("qp_tier_load_seconds")->Snapshot());
  }
}
BENCHMARK(BM_ZipfianClosedLoopAndKillRecover)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace
}  // namespace shard
}  // namespace qp

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return qp::shard::Report().Write() ? 0 : 1;
}
