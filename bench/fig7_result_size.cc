// Figure 7: Size of the Results of Personalized Queries.
//
// (a) % of the initial query's rows returned by the personalized query as
//     K grows (L = 1): grows with K.
// (b) same as L grows with K = 10: shrinks with L.
// (c) same as L grows with K = 60: shrinks with L; the paper notes the
//     curve shape matches (b) despite the different axis scales.
//
// Following the paper: random profiles, random queries, M = 0, the MQ
// integration form, and the ratio of personalized to initial result
// cardinalities. For the L sweeps the top-K preferences are selected once
// per (profile, query) pair and the same pairs are reused for every L, as
// in the paper's "several different values of K and L" runs.

#include <vector>

#include "bench_util.h"
#include "qp/core/integration.h"
#include "qp/core/selection.h"
#include "qp/exec/executor.h"
#include "qp/util/string_util.h"

namespace qp {
namespace bench {
namespace {

class Fig7 {
 public:
  Fig7() : env_(), executor_(&env_.db()) {}

  /// Sweep over K at L=1. The top-max(K) preferences are selected once
  /// per (profile, query) pair; K then takes prefixes of that ranked
  /// list, so every K is measured on the same population (as the paper
  /// does with its fixed 200 profiles).
  void SweepK(const std::vector<size_t>& ks) {
    const size_t max_k = ks.back();
    struct Pair {
      SelectQuery query;
      std::vector<PreferencePath> prefs;
      double original_rows;
    };
    std::vector<Pair> pairs;
    std::vector<PersonalizationGraph> graphs;
    Rng rng(4057);
    std::vector<SelectQuery> queries = env_.MakeQueries(8, 4057);
    for (size_t p = 0; p < 24 && pairs.size() < 60; ++p) {
      UserProfile profile = env_.MakeProfile(150, &rng);
      auto graph = PersonalizationGraph::Build(&env_.schema(), profile);
      if (!graph.ok()) continue;
      graphs.push_back(std::move(graph).value());
      PreferenceSelector selector(&graphs.back());
      for (const SelectQuery& query : queries) {
        auto prefs =
            selector.Select(query, InterestCriterion::TopCount(max_k));
        if (!prefs.ok() || prefs->size() < max_k) continue;
        double original = OriginalRows(query);
        if (original <= 0) continue;
        pairs.push_back({query, std::move(prefs).value(), original});
      }
    }

    PreferenceIntegrator integrator;
    PrintRow({"K", "% of initial rows", "pairs"});
    for (size_t k : ks) {
      double sum = 0;
      size_t n = 0;
      for (const Pair& pair : pairs) {
        std::vector<PreferencePath> prefix(pair.prefs.begin(),
                                           pair.prefs.begin() + k);
        IntegrationParams params;
        params.min_satisfied = 1;
        auto mq =
            integrator.BuildMultipleQueries(pair.query, prefix, params);
        if (!mq.ok()) continue;
        auto result = executor_.Execute(*mq);
        if (!result.ok()) continue;
        sum += 100.0 * result->num_rows() / pair.original_rows;
        ++n;
      }
      PrintRow({std::to_string(k), FormatDouble(n ? sum / n : 0, 4),
                std::to_string(n)});
    }
  }

  /// Sweep over L at fixed K: preferences selected once per pair; only
  /// pairs with at least K related preferences participate, so the same
  /// population is measured at every L.
  void SweepL(size_t k, const std::vector<size_t>& ls,
              size_t profile_size) {
    struct Pair {
      SelectQuery query;
      std::vector<PreferencePath> prefs;
      double original_rows;
    };
    std::vector<Pair> pairs;
    std::vector<PersonalizationGraph> graphs;
    Rng rng(k * 7919 + 23);
    std::vector<SelectQuery> queries = env_.MakeQueries(8, k * 13 + 5);
    for (size_t p = 0; p < 24 && pairs.size() < 60; ++p) {
      UserProfile profile = env_.MakeProfile(profile_size, &rng);
      auto graph = PersonalizationGraph::Build(&env_.schema(), profile);
      if (!graph.ok()) continue;
      graphs.push_back(std::move(graph).value());
      PreferenceSelector selector(&graphs.back());
      for (const SelectQuery& query : queries) {
        auto prefs =
            selector.Select(query, InterestCriterion::TopCount(k));
        if (!prefs.ok() || prefs->size() < k) continue;
        double original = OriginalRows(query);
        if (original <= 0) continue;
        pairs.push_back({query, std::move(prefs).value(), original});
      }
    }

    PreferenceIntegrator integrator;
    PrintRow({"L", "% of initial rows", "pairs"});
    for (size_t l : ls) {
      double sum = 0;
      size_t n = 0;
      for (const Pair& pair : pairs) {
        IntegrationParams params;
        params.min_satisfied = l;
        auto mq =
            integrator.BuildMultipleQueries(pair.query, pair.prefs, params);
        if (!mq.ok()) continue;
        auto result = executor_.Execute(*mq);
        if (!result.ok()) continue;
        sum += 100.0 * result->num_rows() / pair.original_rows;
        ++n;
      }
      PrintRow({std::to_string(l), FormatDouble(n ? sum / n : 0, 4),
                std::to_string(n)});
    }
  }

 private:
  double OriginalRows(const SelectQuery& query) {
    SelectQuery distinct = query;
    distinct.set_distinct(true);
    auto original = executor_.Execute(distinct);
    if (!original.ok()) return 0;
    return static_cast<double>(original->num_rows());
  }

  BenchEnv env_;
  Executor executor_;
};

void Run() {
  Fig7 fig;

  PrintHeader("Figure 7(a)", "Result size with K (L=1, % of initial rows)",
              "grows with K (more preferences widen the disjunction)");
  fig.SweepK({10, 20, 30, 40, 50});

  PrintHeader("Figure 7(b)", "Result size with L (K=10, % of initial rows)",
              "shrinks as L grows (each row must satisfy more preferences)");
  fig.SweepL(10, {1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, 120);

  PrintHeader("Figure 7(c)", "Result size with L (K=60, % of initial rows)",
              "shrinks as L grows; same curve shape as 7(b) at a larger "
              "scale");
  fig.SweepL(60, {1, 5, 10, 15, 20, 25}, 180);
}

}  // namespace
}  // namespace bench
}  // namespace qp

int main() {
  qp::bench::Run();
  return 0;
}
