// Figure 10: Performance of Personalization (MQ approach, M = 0).
//
// Compares, as K and L vary: the end-to-end execution time of the
// *initial* query, the time spent on personalization itself (preference
// selection + preference integration), and the end-to-end execution time
// of the personalized query. The paper's headline: personalization time
// plus personalized execution stays below the initial execution time —
// the personalized query is far more selective, so much less of the
// result has to be produced and delivered — performance is well-behaved
// in K and independent of L.
//
// "Execution" here includes rendering the result rows for delivery to
// the user (DebugString), the analogue of the client fetch that
// dominates the paper's Oracle numbers; a query is not "executed" until
// its answer has been handed over.

#include <vector>

#include "bench_util.h"
#include "qp/core/integration.h"
#include "qp/core/selection.h"
#include "qp/exec/executor.h"
#include "qp/util/string_util.h"
#include "qp/util/timer.h"

namespace qp {
namespace bench {
namespace {

class Fig10 {
 public:
  Fig10() : env_(), executor_(&env_.db()) { Prepare(); }

  void SweepK(const std::vector<size_t>& ks) {
    PrintRow({"K", "initial exec", "person. exec", "personalization",
              "rows kept"});
    for (size_t k : ks) {
      Accum acc;
      for (Pair& pair : pairs_) {
        // Personalization = preference selection + integration.
        WallTimer timer;
        PreferenceSelector selector(pair.graph);
        auto prefs = selector.Select(pair.query,
                                     InterestCriterion::TopCount(k));
        if (!prefs.ok()) continue;
        IntegrationParams params;
        params.min_satisfied = prefs->empty() ? 0 : 1;
        PreferenceIntegrator integrator;
        auto mq =
            integrator.BuildMultipleQueries(pair.query, *prefs, params);
        double personalization_ms = timer.ElapsedMillis();
        if (!mq.ok()) continue;
        MeasurePersonalized(pair, *mq, personalization_ms, &acc);
      }
      Print(std::to_string(k), acc);
    }
  }

  void SweepL(size_t k, const std::vector<size_t>& ls) {
    PrintRow({"L", "initial exec", "person. exec", "personalization",
              "rows kept"});
    for (size_t l : ls) {
      Accum acc;
      for (Pair& pair : pairs_) {
        if (pair.prefs.size() < k) continue;
        std::vector<PreferencePath> prefix(pair.prefs.begin(),
                                           pair.prefs.begin() + k);
        WallTimer timer;
        IntegrationParams params;
        params.min_satisfied = l;
        PreferenceIntegrator integrator;
        auto mq =
            integrator.BuildMultipleQueries(pair.query, prefix, params);
        double personalization_ms =
            pair.selection_ms + timer.ElapsedMillis();
        if (!mq.ok()) continue;
        MeasurePersonalized(pair, *mq, personalization_ms, &acc);
      }
      Print(std::to_string(l), acc);
    }
  }

 private:
  struct Pair {
    SelectQuery query;
    const PersonalizationGraph* graph;
    std::vector<PreferencePath> prefs;  // Top-60, degree-sorted.
    double selection_ms;
    double initial_exec_ms;
  };
  struct Accum {
    double initial = 0;
    double personalized = 0;
    double personalization = 0;
    double rows = 0;
    size_t runs = 0;
  };

  /// End-to-end execution: run the query and render the answer.
  template <typename Q>
  double ExecuteAndDeliver(const Q& query, size_t* rows) {
    WallTimer timer;
    auto result = executor_.Execute(query);
    if (!result.ok()) return -1;
    std::string rendered = result->DebugString(result->num_rows());
    double ms = timer.ElapsedMillis();
    if (rows != nullptr) *rows = result->num_rows();
    // Keep the rendering observable.
    if (rendered.empty()) std::abort();
    return ms;
  }

  void Prepare() {
    Rng rng(60406);
    std::vector<SelectQuery> queries = env_.MakeQueries(8, 60406);
    for (size_t p = 0; p < 20 && pairs_.size() < 50; ++p) {
      UserProfile profile = env_.MakeProfile(150, &rng);
      auto graph = PersonalizationGraph::Build(&env_.schema(), profile);
      if (!graph.ok()) continue;
      graphs_.push_back(
          std::make_unique<PersonalizationGraph>(std::move(graph).value()));
      PreferenceSelector selector(graphs_.back().get());
      for (const SelectQuery& query : queries) {
        WallTimer timer;
        auto prefs =
            selector.Select(query, InterestCriterion::TopCount(60));
        double selection_ms = timer.ElapsedMillis();
        if (!prefs.ok() || prefs->size() < 10) continue;
        size_t rows = 0;
        double initial_ms = ExecuteAndDeliver(query, &rows);
        if (initial_ms < 0 || rows == 0) continue;
        pairs_.push_back({query, graphs_.back().get(),
                          std::move(prefs).value(), selection_ms,
                          initial_ms});
      }
    }
  }

  void MeasurePersonalized(const Pair& pair, const CompoundQuery& mq,
                           double personalization_ms, Accum* acc) {
    size_t rows = 0;
    double ms = ExecuteAndDeliver(mq, &rows);
    if (ms < 0) return;
    acc->initial += pair.initial_exec_ms;
    acc->personalized += ms;
    acc->personalization += personalization_ms;
    acc->rows += static_cast<double>(rows);
    ++acc->runs;
  }

  void Print(const std::string& label, const Accum& acc) {
    if (acc.runs == 0) return;
    PrintRow({label, FormatDouble(acc.initial / acc.runs, 4),
              FormatDouble(acc.personalized / acc.runs, 4),
              FormatDouble(acc.personalization / acc.runs, 4),
              FormatDouble(acc.rows / acc.runs, 4)});
  }

  BenchEnv env_;
  Executor executor_;
  std::vector<std::unique_ptr<PersonalizationGraph>> graphs_;
  std::vector<Pair> pairs_;
};

void Run() {
  Fig10 fig;

  PrintHeader("Figure 10 (top)", "Performance of Personalization with K "
              "(L=1, ms)",
              "personalization time + personalized exec < initial exec; "
              "grows mildly with K");
  fig.SweepK({0, 5, 10, 20, 30, 40, 50, 60});

  PrintHeader("Figure 10 (bottom)", "Performance of Personalization with "
              "L (K=10, ms)",
              "all three series roughly independent of L");
  fig.SweepL(10, {1, 2, 3, 4, 5, 6, 7, 8, 9, 10});
}

}  // namespace
}  // namespace bench
}  // namespace qp

int main() {
  qp::bench::Run();
  return 0;
}
