// Ablation A4: the shared-core MQ execution optimization (paper Section 8
// future work: "other ways for the efficient execution of personalized
// queries"). Naive MQ execution re-runs the original query inside every
// one of the K partial queries; shared-core materializes the common block
// once and joins each preference chain on top.

#include <vector>

#include "bench_util.h"
#include "qp/core/selection.h"
#include "qp/core/integration.h"
#include "qp/exec/executor.h"
#include "qp/util/string_util.h"
#include "qp/util/timer.h"

namespace qp {
namespace bench {
namespace {

void Run() {
  PrintHeader("Ablation A4", "MQ execution: shared-core vs naive (ms, "
              "bindings)",
              "shared-core time grows more slowly with K (the common "
              "block runs once instead of K times)");

  BenchEnv env;
  Executor shared(&env.db());
  Executor naive(&env.db());
  naive.set_shared_core(false);
  PreferenceIntegrator integrator;

  std::vector<SelectQuery> queries = env.MakeQueries(5, 2024);
  // Add a core-heavy query — an unselective three-way join like "which
  // movies play in which theatres" — where re-running the core per part
  // is what hurts the naive strategy.
  {
    SelectQuery heavy;
    (void)heavy.AddVariable("MV", "MOVIE");
    (void)heavy.AddVariable("PL", "PLAY");
    (void)heavy.AddVariable("TH", "THEATRE");
    heavy.AddProjection("MV", "title");
    heavy.set_where(ConditionNode::MakeAnd(
        {ConditionNode::MakeAtom(
             AtomicCondition::Join("MV", "mid", "PL", "mid")),
         ConditionNode::MakeAtom(
             AtomicCondition::Join("PL", "tid", "TH", "tid"))}));
    queries.push_back(std::move(heavy));
    queries.push_back(queries.back());
  }
  Rng rng(515);

  PrintRow({"K", "shared (ms)", "naive (ms)", "shared bind", "naive bind"});
  for (size_t k : {2, 5, 10, 20, 40, 60}) {
    double shared_ms = 0;
    double naive_ms = 0;
    size_t shared_bindings = 0;
    size_t naive_bindings = 0;
    size_t runs = 0;
    for (size_t p = 0; p < 6; ++p) {
      UserProfile profile = env.MakeProfile(150, &rng);
      auto graph = PersonalizationGraph::Build(&env.schema(), profile);
      if (!graph.ok()) continue;
      PreferenceSelector selector(&*graph);
      for (const SelectQuery& query : queries) {
        auto prefs =
            selector.Select(query, InterestCriterion::TopCount(k));
        if (!prefs.ok() || prefs->size() < 2) continue;
        IntegrationParams params;
        params.min_satisfied = 1;
        auto mq = integrator.BuildMultipleQueries(query, *prefs, params);
        if (!mq.ok()) continue;

        ExecutorStats shared_stats;
        WallTimer timer;
        auto a = shared.Execute(*mq, &shared_stats);
        shared_ms += timer.ElapsedMillis();
        ExecutorStats naive_stats;
        timer.Restart();
        auto b = naive.Execute(*mq, &naive_stats);
        naive_ms += timer.ElapsedMillis();
        if (!a.ok() || !b.ok()) continue;
        shared_bindings += shared_stats.bindings;
        naive_bindings += naive_stats.bindings;
        ++runs;
      }
    }
    if (runs == 0) continue;
    PrintRow({std::to_string(k), FormatDouble(shared_ms / runs, 4),
              FormatDouble(naive_ms / runs, 4),
              std::to_string(shared_bindings / runs),
              std::to_string(naive_bindings / runs)});
  }
}

}  // namespace
}  // namespace bench
}  // namespace qp

int main() {
  qp::bench::Run();
  return 0;
}
