// Figure 8: Comparison of SQ and MQ with K (L = 1, M = 0).
//
// Top plot: preference integration time (building the personalized query)
// for the SQ and MQ approaches as K grows. Bottom plot: execution time of
// the personalized queries. The paper finds MQ integration time is
// practically zero and flat, SQ integration grows with K (duplicate
// elimination / minimal-query construction), and MQ executes faster (SQ
// returns each result many times and must deduplicate).

#include <vector>

#include "bench_util.h"
#include "qp/core/integration.h"
#include "qp/core/selection.h"
#include "qp/exec/executor.h"
#include "qp/util/string_util.h"
#include "qp/util/timer.h"

namespace qp {
namespace bench {
namespace {

void Run() {
  PrintHeader("Figure 8", "SQ vs MQ integration & execution time with K "
              "(L=1, ms)",
              "MQ integration ~0 and flat; SQ integration grows with K; "
              "MQ execution faster than SQ, gap widening with K");

  BenchEnv env;
  Executor executor(&env.db());
  PreferenceIntegrator integrator;
  const size_t kProfiles = 6;
  const size_t kQueries = 4;
  std::vector<SelectQuery> queries = env.MakeQueries(kQueries, 81);

  PrintRow({"K", "SQ integ", "MQ integ", "SQ exec", "MQ exec",
            "avg K used"});
  Rng rng(4242);
  for (size_t k : {0, 5, 10, 20, 30, 40, 50, 60}) {
    double sq_integ = 0;
    double mq_integ = 0;
    double sq_exec = 0;
    double mq_exec = 0;
    size_t runs = 0;
    size_t total_k = 0;
    for (size_t p = 0; p < kProfiles; ++p) {
      UserProfile profile = env.MakeProfile(150, &rng);
      auto graph = PersonalizationGraph::Build(&env.schema(), profile);
      if (!graph.ok()) continue;
      PreferenceSelector selector(&*graph);
      for (const SelectQuery& query : queries) {
        auto prefs =
            selector.Select(query, InterestCriterion::TopCount(k));
        if (!prefs.ok()) continue;
        total_k += prefs->size();
        IntegrationParams params;
        params.min_satisfied = prefs->empty() ? 0 : 1;

        WallTimer timer;
        auto sq = integrator.BuildSingleQuery(query, *prefs, params);
        sq_integ += timer.ElapsedMillis();
        timer.Restart();
        auto mq = integrator.BuildMultipleQueries(query, *prefs, params);
        mq_integ += timer.ElapsedMillis();
        if (!sq.ok() || !mq.ok()) continue;

        timer.Restart();
        auto sq_result = executor.Execute(*sq);
        sq_exec += timer.ElapsedMillis();
        timer.Restart();
        auto mq_result = executor.Execute(*mq);
        mq_exec += timer.ElapsedMillis();
        if (!sq_result.ok() || !mq_result.ok()) continue;
        ++runs;
      }
    }
    if (runs == 0) continue;
    PrintRow({std::to_string(k), FormatDouble(sq_integ / runs, 4),
              FormatDouble(mq_integ / runs, 4),
              FormatDouble(sq_exec / runs, 4),
              FormatDouble(mq_exec / runs, 4),
              std::to_string(total_k / (kProfiles * kQueries))});
  }
}

}  // namespace
}  // namespace bench
}  // namespace qp

int main() {
  qp::bench::Run();
  return 0;
}
