// Figure 8: Comparison of SQ and MQ with K (L = 1, M = 0).
//
// Top plot: preference integration time (building the personalized query)
// for the SQ and MQ approaches as K grows. Bottom plot: execution time of
// the personalized queries. The paper finds MQ integration time is
// practically zero and flat, SQ integration grows with K (duplicate
// elimination / minimal-query construction), and MQ executes faster (SQ
// returns each result many times and must deduplicate).
//
// Execution times are reported for both executor engines — the
// tuple-at-a-time reference and the vectorized batch engine — and the
// per-K numbers plus aggregate speedups go into a BenchReport JSON
// sidecar ($QP_BENCH_JSON) so CI snapshots can diff strategies.

#include <string>
#include <vector>

#include "bench_util.h"
#include "qp/core/integration.h"
#include "qp/core/selection.h"
#include "qp/exec/executor.h"
#include "qp/util/string_util.h"
#include "qp/util/timer.h"

namespace qp {
namespace bench {
namespace {

void Run() {
  PrintHeader("Figure 8", "SQ vs MQ integration & execution time with K "
              "(L=1, ms)",
              "MQ integration ~0 and flat; SQ integration grows with K; "
              "MQ execution faster than SQ, gap widening with K; "
              "vectorized execution beats tuple-at-a-time");

  BenchEnv env;
  Executor tuple_exec(&env.db());
  tuple_exec.set_exec_strategy(ExecStrategy::kTuple);
  Executor vec_exec(&env.db());
  vec_exec.set_exec_strategy(ExecStrategy::kVectorized);
  PreferenceIntegrator integrator;
  const size_t kProfiles = 6;
  const size_t kQueries = 4;
  std::vector<SelectQuery> queries = env.MakeQueries(kQueries, 81);

  BenchReport report("fig8_sq_mq_vs_k");
  double total_sq_tuple = 0, total_sq_vec = 0;
  double total_mq_tuple = 0, total_mq_vec = 0;

  PrintRow({"K", "SQ integ", "MQ integ", "SQ ex(t)", "SQ ex(v)",
            "MQ ex(t)", "MQ ex(v)", "avg K used"});
  Rng rng(4242);
  for (size_t k : {0, 5, 10, 20, 30, 40, 50, 60}) {
    double sq_integ = 0;
    double mq_integ = 0;
    double sq_tuple = 0, sq_vec = 0;
    double mq_tuple = 0, mq_vec = 0;
    size_t runs = 0;
    size_t total_k = 0;
    for (size_t p = 0; p < kProfiles; ++p) {
      UserProfile profile = env.MakeProfile(150, &rng);
      auto graph = PersonalizationGraph::Build(&env.schema(), profile);
      if (!graph.ok()) continue;
      PreferenceSelector selector(&*graph);
      for (const SelectQuery& query : queries) {
        auto prefs =
            selector.Select(query, InterestCriterion::TopCount(k));
        if (!prefs.ok()) continue;
        total_k += prefs->size();
        IntegrationParams params;
        params.min_satisfied = prefs->empty() ? 0 : 1;

        WallTimer timer;
        auto sq = integrator.BuildSingleQuery(query, *prefs, params);
        sq_integ += timer.ElapsedMillis();
        timer.Restart();
        auto mq = integrator.BuildMultipleQueries(query, *prefs, params);
        mq_integ += timer.ElapsedMillis();
        if (!sq.ok() || !mq.ok()) continue;

        timer.Restart();
        auto sq_t = tuple_exec.Execute(*sq);
        sq_tuple += timer.ElapsedMillis();
        timer.Restart();
        auto sq_v = vec_exec.Execute(*sq);
        sq_vec += timer.ElapsedMillis();
        timer.Restart();
        auto mq_t = tuple_exec.Execute(*mq);
        mq_tuple += timer.ElapsedMillis();
        timer.Restart();
        auto mq_v = vec_exec.Execute(*mq);
        mq_vec += timer.ElapsedMillis();
        if (!sq_t.ok() || !sq_v.ok() || !mq_t.ok() || !mq_v.ok()) continue;
        ++runs;
      }
    }
    if (runs == 0) continue;
    total_sq_tuple += sq_tuple;
    total_sq_vec += sq_vec;
    total_mq_tuple += mq_tuple;
    total_mq_vec += mq_vec;
    const std::string kk = std::to_string(k);
    report.AddScalar("k" + kk + "_sq_exec_tuple_ms", sq_tuple / runs);
    report.AddScalar("k" + kk + "_sq_exec_vec_ms", sq_vec / runs);
    report.AddScalar("k" + kk + "_mq_exec_tuple_ms", mq_tuple / runs);
    report.AddScalar("k" + kk + "_mq_exec_vec_ms", mq_vec / runs);
    PrintRow({kk, FormatDouble(sq_integ / runs, 4),
              FormatDouble(mq_integ / runs, 4),
              FormatDouble(sq_tuple / runs, 4),
              FormatDouble(sq_vec / runs, 4),
              FormatDouble(mq_tuple / runs, 4),
              FormatDouble(mq_vec / runs, 4),
              std::to_string(total_k / (kProfiles * kQueries))});
  }
  report.AddScalar("total_sq_exec_tuple_ms", total_sq_tuple);
  report.AddScalar("total_sq_exec_vec_ms", total_sq_vec);
  report.AddScalar("total_mq_exec_tuple_ms", total_mq_tuple);
  report.AddScalar("total_mq_exec_vec_ms", total_mq_vec);
  if (total_sq_vec > 0) {
    report.AddScalar("vec_speedup_sq", total_sq_tuple / total_sq_vec);
  }
  if (total_mq_vec > 0) {
    report.AddScalar("vec_speedup_mq", total_mq_tuple / total_mq_vec);
  }
  report.Write();
}

}  // namespace
}  // namespace bench
}  // namespace qp

int main() {
  qp::bench::Run();
  return 0;
}
