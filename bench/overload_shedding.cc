// Overload behaviour of the service layer: a batch many times larger
// than the worker pool is thrown at services with different admission /
// degradation / deadline configurations, and the disposition mix is
// reported as counters:
//   full_frac, degraded_frac, shed_frac, deadline_frac
//     — fraction of requests per disposition (they sum to 1)
//   completed_qps — requests that produced an answer (full + degraded)
//                   per second of wall time
//   answered_ms_p_req — mean wall time per *answered* request
// A bounded queue should convert the latency collapse of the unbounded
// config into fast-failing sheds while answered throughput holds.
// Machine-readable output: one BenchReport JSON object (disposition
// fractions + request-latency percentiles per config) goes to stdout, or
// to the file named by $QP_BENCH_JSON.
//
// Args: workers, max_queue_depth (0 = unbounded), degrade_queue_depth
// (0 = off), deadline_us (0 = none).

#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "benchmark/benchmark.h"
#include "qp/data/movie_db.h"
#include "qp/data/workload.h"
#include "qp/pref/profile_generator.h"
#include "qp/service/service.h"
#include "qp/util/random.h"

namespace qp {
namespace {

bench::BenchReport& Report() {
  static auto* report = new bench::BenchReport("overload_shedding");
  return *report;
}

constexpr size_t kUsers = 8;
constexpr size_t kBatch = 64;  // Many multiples of any worker count used.

const Database& SharedDb() {
  static Database* db = [] {
    MovieDbConfig config;
    config.num_movies = 2000;
    config.num_actors = 800;
    config.num_directors = 150;
    config.num_theatres = 20;
    auto generated = GenerateMovieDatabase(config);
    return new Database(std::move(generated).value());
  }();
  return *db;
}

const std::vector<UserProfile>& SharedProfiles() {
  static std::vector<UserProfile>* profiles = [] {
    auto pools = MovieCandidatePools(SharedDb());
    ProfileGenerator generator(&SharedDb().schema(),
                               std::move(pools).value());
    Rng rng(11);
    ProfileGeneratorOptions options;
    options.num_selections = 40;
    auto* result = new std::vector<UserProfile>;
    for (size_t u = 0; u < kUsers; ++u) {
      result->push_back(generator.Generate(options, &rng).value());
    }
    return result;
  }();
  return *profiles;
}

std::vector<PersonalizationRequest> MakeRequests(double deadline_us) {
  WorkloadGenerator workload(&SharedDb(), 47);
  auto queries = workload.RandomQueries(8).value();
  std::vector<PersonalizationRequest> requests;
  for (size_t i = 0; i < kBatch; ++i) {
    PersonalizationRequest request;
    request.user_id = "user" + std::to_string(i % kUsers);
    request.query = queries[i % queries.size()];
    request.options.criterion = InterestCriterion::TopCount(6);
    request.deadline_ms = deadline_us / 1000.0;
    requests.push_back(std::move(request));
  }
  return requests;
}

void BM_OverloadShedding(benchmark::State& state) {
  ServiceOptions options;
  options.num_workers = static_cast<size_t>(state.range(0));
  options.max_queue_depth = static_cast<size_t>(state.range(1));
  options.degrade_queue_depth = static_cast<size_t>(state.range(2));
  options.cache_capacity = 0;  // Every request pays full selection cost.
  auto service =
      std::make_unique<PersonalizationService>(&SharedDb(), options);
  for (size_t u = 0; u < kUsers; ++u) {
    auto status = service->profiles().Put("user" + std::to_string(u),
                                          SharedProfiles()[u]);
    if (!status.ok()) {
      state.SkipWithError("profile setup failed");
      return;
    }
  }
  std::vector<PersonalizationRequest> requests =
      MakeRequests(static_cast<double>(state.range(3)));

  uint64_t full = 0, degraded = 0, shed = 0, deadline = 0;
  double seconds = 0;
  for (auto _ : state) {
    auto start = std::chrono::steady_clock::now();
    auto responses = service->PersonalizeBatchAndWait(requests);
    seconds += std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start)
                   .count();
    for (const PersonalizationResponse& response : responses) {
      switch (response.disposition) {
        case RequestDisposition::kFull: ++full; break;
        case RequestDisposition::kDegraded: ++degraded; break;
        case RequestDisposition::kShed: ++shed; break;
        case RequestDisposition::kDeadlineExceeded: ++deadline; break;
      }
    }
  }
  double total = static_cast<double>(full + degraded + shed + deadline);
  if (total == 0) total = 1;
  double answered = static_cast<double>(full + degraded);
  state.counters["full_frac"] = static_cast<double>(full) / total;
  state.counters["degraded_frac"] = static_cast<double>(degraded) / total;
  state.counters["shed_frac"] = static_cast<double>(shed) / total;
  state.counters["deadline_frac"] = static_cast<double>(deadline) / total;
  state.counters["completed_qps"] = seconds > 0 ? answered / seconds : 0;
  state.counters["answered_ms_p_req"] =
      answered > 0 ? seconds * 1000.0 / answered : 0;

  std::string label = "w" + std::to_string(state.range(0)) + "_q" +
                      std::to_string(state.range(1)) + "_d" +
                      std::to_string(state.range(2)) + "_dl" +
                      std::to_string(state.range(3));
  Report().AddScalar("full_frac/" + label, static_cast<double>(full) / total);
  Report().AddScalar("degraded_frac/" + label,
                     static_cast<double>(degraded) / total);
  Report().AddScalar("shed_frac/" + label, static_cast<double>(shed) / total);
  Report().AddScalar("deadline_frac/" + label,
                     static_cast<double>(deadline) / total);
  Report().AddScalar("completed_qps/" + label,
                     seconds > 0 ? answered / seconds : 0);
  Report().AddHistogram(
      "qp_service_request_seconds/" + label,
      service->metrics()->histogram("qp_service_request_seconds")->Snapshot());
}
BENCHMARK(BM_OverloadShedding)
    ->ArgNames({"workers", "queue", "degrade", "deadline_us"})
    // Unbounded: every request queues and eventually answers.
    ->Args({2, 0, 0, 0})
    // Bounded queue: excess sheds immediately.
    ->Args({2, 8, 0, 0})
    // Bounded + degradation ladder: step K down before shedding.
    ->Args({2, 8, 4, 0})
    // Tight per-request deadlines on top: queued requests expire.
    ->Args({2, 8, 4, 20000})
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

}  // namespace
}  // namespace qp

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return qp::Report().Write() ? 0 : 1;
}
