// Figure 6: Preference Selection Time with Profile Size.
//
// For profile sizes 10..100 (number of stored atomic selections) and
// K in {5, 10, 15}, measures the average execution time of the preference
// selection algorithm over many (profile, query) combinations, exactly as
// the paper does (100 profiles per size, L = 1, M = 0).

#include <vector>

#include "bench_util.h"
#include "qp/core/selection.h"
#include "qp/graph/personalization_graph.h"
#include "qp/util/string_util.h"
#include "qp/util/timer.h"

namespace qp {
namespace bench {
namespace {

void Run() {
  PrintHeader(
      "Figure 6", "Preference Selection Time with Profile Size",
      "smaller profiles take LONGER (preferences sparsely placed over the "
      "schema force wider expansion before K selections are found); "
      "higher K costs more");

  BenchEnv env;
  const size_t kProfilesPerSize = 25;
  const size_t kQueriesPerProfile = 8;
  const std::vector<size_t> ks = {5, 10, 15};

  std::vector<SelectQuery> queries =
      env.MakeQueries(kQueriesPerProfile, /*seed=*/7);

  PrintRow({"profile_size", "K=5 (ms)", "K=10 (ms)", "K=15 (ms)",
            "popped@K=15"});
  Rng rng(99);
  for (size_t size = 10; size <= 100; size += 10) {
    std::vector<double> totals(ks.size(), 0.0);
    size_t runs = 0;
    size_t popped = 0;
    for (size_t p = 0; p < kProfilesPerSize; ++p) {
      UserProfile profile = env.MakeProfile(size, &rng);
      auto graph = PersonalizationGraph::Build(&env.schema(), profile);
      if (!graph.ok()) continue;
      PreferenceSelector selector(&*graph);
      for (const SelectQuery& query : queries) {
        for (size_t ki = 0; ki < ks.size(); ++ki) {
          SelectionStats stats;
          WallTimer timer;
          auto selected = selector.Select(
              query, InterestCriterion::TopCount(ks[ki]), &stats);
          totals[ki] += timer.ElapsedMillis();
          if (!selected.ok()) continue;
          if (ki == ks.size() - 1) popped += stats.paths_popped;
        }
        ++runs;
      }
    }
    PrintRow({std::to_string(size), FormatDouble(totals[0] / runs, 4),
              FormatDouble(totals[1] / runs, 4),
              FormatDouble(totals[2] / runs, 4),
              std::to_string(popped / (kProfilesPerSize *
                                       kQueriesPerProfile))});
  }
}

}  // namespace
}  // namespace bench
}  // namespace qp

int main() {
  qp::bench::Run();
  return 0;
}
