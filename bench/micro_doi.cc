// Ablation A2: micro-costs of the degree-of-interest combinators and the
// alternative functions satisfying the same axioms (DESIGN.md row A2).
// Uses google-benchmark.

#include <vector>

#include "benchmark/benchmark.h"
#include "qp/pref/doi.h"
#include "qp/util/random.h"

namespace qp {
namespace {

std::vector<double> MakeDegrees(size_t n) {
  Rng rng(n * 7 + 1);
  std::vector<double> degrees;
  degrees.reserve(n);
  for (size_t i = 0; i < n; ++i) degrees.push_back(rng.NextDouble());
  return degrees;
}

void BM_TransitiveProduct(benchmark::State& state) {
  std::vector<double> degrees = MakeDegrees(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(TransitiveDoi(degrees));
  }
}
BENCHMARK(BM_TransitiveProduct)->Arg(4)->Arg(16)->Arg(64);

void BM_TransitiveMin(benchmark::State& state) {
  std::vector<double> degrees = MakeDegrees(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(TransitiveMinDoi(degrees));
  }
}
BENCHMARK(BM_TransitiveMin)->Arg(4)->Arg(16)->Arg(64);

void BM_ConjunctiveNoisyOr(benchmark::State& state) {
  std::vector<double> degrees = MakeDegrees(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ConjunctiveDoi(degrees));
  }
}
BENCHMARK(BM_ConjunctiveNoisyOr)->Arg(4)->Arg(16)->Arg(64);

void BM_ConjunctiveMax(benchmark::State& state) {
  std::vector<double> degrees = MakeDegrees(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ConjunctiveMaxDoi(degrees));
  }
}
BENCHMARK(BM_ConjunctiveMax)->Arg(4)->Arg(16)->Arg(64);

void BM_DisjunctiveAverage(benchmark::State& state) {
  std::vector<double> degrees = MakeDegrees(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(DisjunctiveDoi(degrees));
  }
}
BENCHMARK(BM_DisjunctiveAverage)->Arg(4)->Arg(16)->Arg(64);

void BM_ConjunctiveAccumulator(benchmark::State& state) {
  std::vector<double> degrees = MakeDegrees(state.range(0));
  for (auto _ : state) {
    ConjunctiveAccumulator acc;
    for (double d : degrees) acc.Add(d);
    benchmark::DoNotOptimize(acc.Degree());
  }
}
BENCHMARK(BM_ConjunctiveAccumulator)->Arg(4)->Arg(16)->Arg(64);

}  // namespace
}  // namespace qp

BENCHMARK_MAIN();
