// Durability-layer benchmarks: what does each fsync policy cost on the
// WAL append path, how much does group commit claw back under concurrent
// writers, and how does recovery time grow with the length of the log
// tail that must be replayed. Reported counters:
//   records_per_s — acknowledged WAL appends per second
//   fsyncs        — fsync(2) calls issued over the measurement
//   mb_per_s      — payload bytes acknowledged per second
//   replayed      — WAL records replayed by one recovery
//   recovery_ms   — wall-clock milliseconds for one Open()
// Run with --benchmark_counters_tabular=true for a readable table.

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "benchmark/benchmark.h"
#include "qp/data/movie_db.h"
#include "qp/data/paper_example.h"
#include "qp/obs/metrics.h"
#include "qp/storage/durable_profile_store.h"
#include "qp/storage/record.h"
#include "qp/storage/wal.h"
#include "qp/util/file.h"

namespace qp {
namespace storage {
namespace {

bench::BenchReport& Report() {
  static auto* report = new bench::BenchReport("storage_durability");
  return *report;
}

const char* PolicyLabel(FsyncPolicy policy) {
  switch (policy) {
    case FsyncPolicy::kEveryRecord:
      return "every_record";
    case FsyncPolicy::kInterval:
      return "interval";
    case FsyncPolicy::kNever:
      return "never";
  }
  return "unknown";
}

/// A fresh directory under /tmp, removed (with its contents) on scope
/// exit. The benchmarks run against the real POSIX filesystem so the
/// fsync costs they report are the ones production would pay.
class TempDir {
 public:
  TempDir() {
    char tmpl[] = "/tmp/qp_storage_bench_XXXXXX";
    char* dir = mkdtemp(tmpl);
    if (dir != nullptr) path_ = dir;
  }

  ~TempDir() {
    if (path_.empty()) return;
    FileSystem* fs = DefaultFileSystem();
    if (auto names = fs->ListDir(path_); names.ok()) {
      for (const std::string& name : *names) {
        fs->RemoveFile(JoinPath(path_, name));
      }
    }
    rmdir(path_.c_str());
  }

  bool ok() const { return !path_.empty(); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// A realistic payload: one encoded Put of the paper's Julie profile
/// (23 preferences, a few hundred bytes) — the record a profile update
/// actually writes, not a synthetic blob.
const std::string& SharedPayload() {
  static const std::string* payload = [] {
    auto* encoded = new std::string;
    EncodeMutation(ProfileMutation::Put("julie", JulieProfile()), encoded);
    return encoded;
  }();
  return *payload;
}

FsyncPolicy PolicyFromArg(int64_t arg) {
  switch (arg) {
    case 0:
      return FsyncPolicy::kEveryRecord;
    case 1:
      return FsyncPolicy::kInterval;
    default:
      return FsyncPolicy::kNever;
  }
}

/// WAL append throughput: `writers` threads each acknowledge a slice of
/// the per-iteration record budget. Under kEveryRecord the interesting
/// effect is group commit — more concurrent writers amortize one fsync
/// over more records, so records_per_s rises with the writer count while
/// fsyncs stays near-flat.
void BM_WalAppend(benchmark::State& state) {
  const FsyncPolicy policy = PolicyFromArg(state.range(0));
  const size_t writers = static_cast<size_t>(state.range(1));
  const size_t records_per_iter = 256;

  TempDir dir;
  if (!dir.ok()) {
    state.SkipWithError("mkdtemp failed");
    return;
  }
  auto file = DefaultFileSystem()->NewWritableFile(
      JoinPath(dir.path(), "bench.log"), /*truncate=*/true);
  if (!file.ok()) {
    state.SkipWithError("cannot create log file");
    return;
  }
  WalOptions options;
  options.fsync = policy;
  obs::MetricsRegistry registry;
  options.metrics = &registry;  // For the qp_wal_sync_seconds histogram.
  WalWriter writer(std::move(file).value(), /*first_seqno=*/1, options);

  size_t records = 0;
  for (auto _ : state) {
    std::atomic<bool> failed{false};
    std::vector<std::thread> threads;
    threads.reserve(writers);
    for (size_t t = 0; t < writers; ++t) {
      threads.emplace_back([&] {
        for (size_t i = 0; i < records_per_iter / writers; ++i) {
          if (!writer.Append(SharedPayload(), nullptr).ok()) {
            failed.store(true, std::memory_order_relaxed);
            return;
          }
        }
      });
    }
    for (std::thread& thread : threads) thread.join();
    if (failed.load(std::memory_order_relaxed)) {
      state.SkipWithError("append failed");
      return;
    }
    records += (records_per_iter / writers) * writers;
  }

  WalWriterStats stats = writer.stats();
  state.counters["records_per_s"] = benchmark::Counter(
      static_cast<double>(records), benchmark::Counter::kIsRate);
  state.counters["mb_per_s"] = benchmark::Counter(
      static_cast<double>(records) * SharedPayload().size() / (1 << 20),
      benchmark::Counter::kIsRate);
  state.counters["fsyncs"] = static_cast<double>(stats.fsyncs);

  std::string label = std::string(PolicyLabel(policy)) + "_w" +
                      std::to_string(writers);
  Report().AddScalar("fsyncs/" + label, static_cast<double>(stats.fsyncs));
  Report().AddScalar("records/" + label, static_cast<double>(records));
  Report().AddHistogram("qp_wal_sync_seconds/" + label,
                        registry.histogram("qp_wal_sync_seconds")->Snapshot());
}
BENCHMARK(BM_WalAppend)
    ->ArgNames({"policy", "writers"})
    ->Args({0, 1})  // every_record, serial: one fsync per record.
    ->Args({0, 4})  // every_record, group commit across 4 writers.
    ->Args({0, 8})
    ->Args({1, 1})  // interval: fsync at most every 50 ms.
    ->Args({2, 1})  // never: pure write(2) throughput.
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

/// Recovery time as a function of WAL length: a store is seeded with N
/// logged mutations (no checkpoint, so recovery must replay all of
/// them), then each iteration runs a full Open — manifest read, WAL
/// scan + CRC verification, decode, and in-memory apply.
void BM_Recovery(benchmark::State& state) {
  const size_t num_mutations = static_cast<size_t>(state.range(0));

  TempDir dir;
  if (!dir.ok()) {
    state.SkipWithError("mkdtemp failed");
    return;
  }
  Schema schema = MovieSchema();
  StorageOptions options;
  options.dir = dir.path();
  options.background_compaction = false;
  options.wal.fsync = FsyncPolicy::kNever;  // Seeding speed; synced below.

  {
    auto store = DurableProfileStore::Open(&schema, options);
    if (!store.ok()) {
      state.SkipWithError("seed open failed");
      return;
    }
    const UserProfile julie = JulieProfile();
    for (size_t i = 0; i < num_mutations; ++i) {
      // Distinct users so replay exercises the store, not one map slot.
      auto status =
          (*store)->Put("user" + std::to_string(i % 1024), julie);
      if (!status.ok()) {
        state.SkipWithError("seed put failed");
        return;
      }
    }
    if (!(*store)->Sync().ok() || !(*store)->Close().ok()) {
      state.SkipWithError("seed close failed");
      return;
    }
  }

  uint64_t replayed = 0;
  double recovery_ms = 0;
  for (auto _ : state) {
    auto store = DurableProfileStore::Open(&schema, options);
    if (!store.ok()) {
      state.SkipWithError("recovery open failed");
      return;
    }
    StorageStats stats = (*store)->storage_stats();
    replayed = stats.records_replayed;
    recovery_ms += static_cast<double>(stats.recovery_millis);
    benchmark::DoNotOptimize((*store)->size());
    (*store)->Close();
  }
  state.counters["replayed"] = static_cast<double>(replayed);
  state.counters["recovery_ms"] =
      state.iterations() > 0 ? recovery_ms / state.iterations() : 0;
  std::string label = "m" + std::to_string(num_mutations);
  Report().AddScalar("replayed/" + label, static_cast<double>(replayed));
  Report().AddScalar(
      "recovery_ms/" + label,
      state.iterations() > 0 ? recovery_ms / state.iterations() : 0);
}
BENCHMARK(BM_Recovery)
    ->ArgNames({"mutations"})
    ->Arg(100)
    ->Arg(1000)
    ->Arg(5000)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

/// Recovery after a checkpoint: the same mutation count, but compacted
/// into a snapshot first — recovery loads the snapshot and replays only
/// the post-checkpoint tail. Contrast with BM_Recovery at equal
/// `mutations` to see what checkpointing buys.
void BM_RecoveryAfterCheckpoint(benchmark::State& state) {
  const size_t num_mutations = static_cast<size_t>(state.range(0));

  TempDir dir;
  if (!dir.ok()) {
    state.SkipWithError("mkdtemp failed");
    return;
  }
  Schema schema = MovieSchema();
  StorageOptions options;
  options.dir = dir.path();
  options.background_compaction = false;
  options.wal.fsync = FsyncPolicy::kNever;

  {
    auto store = DurableProfileStore::Open(&schema, options);
    if (!store.ok()) {
      state.SkipWithError("seed open failed");
      return;
    }
    const UserProfile julie = JulieProfile();
    for (size_t i = 0; i < num_mutations; ++i) {
      auto status =
          (*store)->Put("user" + std::to_string(i % 1024), julie);
      if (!status.ok()) {
        state.SkipWithError("seed put failed");
        return;
      }
    }
    if (!(*store)->Checkpoint().ok() || !(*store)->Close().ok()) {
      state.SkipWithError("seed checkpoint failed");
      return;
    }
  }

  uint64_t loaded = 0;
  for (auto _ : state) {
    auto store = DurableProfileStore::Open(&schema, options);
    if (!store.ok()) {
      state.SkipWithError("recovery open failed");
      return;
    }
    loaded = store.value()->storage_stats().snapshot_users_loaded;
    benchmark::DoNotOptimize((*store)->size());
    (*store)->Close();
  }
  state.counters["snapshot_users"] = static_cast<double>(loaded);
  Report().AddScalar("snapshot_users/m" + std::to_string(num_mutations),
                     static_cast<double>(loaded));
}
BENCHMARK(BM_RecoveryAfterCheckpoint)
    ->ArgNames({"mutations"})
    ->Arg(1000)
    ->Arg(5000)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace
}  // namespace storage
}  // namespace qp

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return qp::storage::Report().Write() ? 0 : 1;
}
