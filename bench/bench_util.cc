#include "bench_util.h"

#include <cstdio>
#include <cstdlib>

namespace qp {
namespace bench {

BenchEnv::BenchEnv(double scale, uint64_t seed) : schema_(MovieSchema()) {
  MovieDbConfig config;
  config.num_movies = static_cast<size_t>(6000 * scale);
  config.num_actors = static_cast<size_t>(2500 * scale);
  config.num_directors = static_cast<size_t>(400 * scale);
  config.num_theatres = static_cast<size_t>(40 * scale);
  config.num_days = 14;
  config.plays_per_theatre_per_day = 3;
  config.seed = seed;
  auto db = GenerateMovieDatabase(config);
  if (!db.ok()) {
    std::fprintf(stderr, "bench: database generation failed: %s\n",
                 db.status().ToString().c_str());
    std::abort();
  }
  db_ = std::make_unique<Database>(std::move(db).value());
  auto pools = MovieCandidatePools(*db_);
  if (!pools.ok()) {
    std::fprintf(stderr, "bench: candidate pools failed: %s\n",
                 pools.status().ToString().c_str());
    std::abort();
  }
  profiles_ =
      std::make_unique<ProfileGenerator>(&schema_, std::move(pools).value());
}

UserProfile BenchEnv::MakeProfile(size_t num_selections, Rng* rng) const {
  ProfileGeneratorOptions options;
  options.num_selections = num_selections;
  auto profile = profiles_->Generate(options, rng);
  if (!profile.ok()) {
    std::fprintf(stderr, "bench: profile generation failed: %s\n",
                 profile.status().ToString().c_str());
    std::abort();
  }
  return std::move(profile).value();
}

std::vector<SelectQuery> BenchEnv::MakeQueries(size_t n,
                                               uint64_t seed) const {
  WorkloadGenerator workload(db_.get(), seed);
  auto queries = workload.RandomQueries(n);
  if (!queries.ok()) {
    std::fprintf(stderr, "bench: workload generation failed: %s\n",
                 queries.status().ToString().c_str());
    std::abort();
  }
  return std::move(queries).value();
}

void PrintHeader(const std::string& figure, const std::string& title,
                 const std::string& paper_expectation) {
  std::printf("\n=== %s: %s ===\n", figure.c_str(), title.c_str());
  std::printf("paper shape: %s\n", paper_expectation.c_str());
}

void PrintRow(const std::vector<std::string>& cells) {
  for (size_t i = 0; i < cells.size(); ++i) {
    std::printf("%s%-14s", i == 0 ? "" : " ", cells[i].c_str());
  }
  std::printf("\n");
}

namespace {

std::string FormatDouble(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return buf;
}

template <typename T>
void Upsert(std::vector<std::pair<std::string, T>>* entries,
            const std::string& name, T value) {
  for (auto& entry : *entries) {
    if (entry.first == name) {
      entry.second = std::move(value);
      return;
    }
  }
  entries->emplace_back(name, std::move(value));
}

}  // namespace

void BenchReport::AddScalar(const std::string& name, double value) {
  Upsert(&scalars_, name, value);
}

void BenchReport::AddHistogram(const std::string& name,
                               const obs::HistogramSnapshot& snapshot) {
  Upsert(&histograms_, name, snapshot);
}

std::string BenchReport::ToJson() const {
  std::string out = "{\"bench\":\"" + name_ + "\",\"scalars\":{";
  for (size_t i = 0; i < scalars_.size(); ++i) {
    if (i > 0) out += ',';
    out += '"' + scalars_[i].first + "\":" + FormatDouble(scalars_[i].second);
  }
  out += "},\"histograms\":{";
  for (size_t i = 0; i < histograms_.size(); ++i) {
    const auto& [name, snapshot] = histograms_[i];
    if (i > 0) out += ',';
    out += '"' + name + "\":{\"count\":" +
           std::to_string(snapshot.count) +
           ",\"sum\":" + FormatDouble(snapshot.sum) +
           ",\"p50\":" + FormatDouble(snapshot.p50()) +
           ",\"p95\":" + FormatDouble(snapshot.p95()) +
           ",\"p99\":" + FormatDouble(snapshot.p99()) + '}';
  }
  out += "}}";
  return out;
}

bool BenchReport::Write() const {
  std::string line = ToJson() + "\n";
  const char* path = std::getenv("QP_BENCH_JSON");
  if (path == nullptr || path[0] == '\0') {
    std::fputs(line.c_str(), stdout);
    return true;
  }
  std::FILE* file = std::fopen(path, "a");
  if (file == nullptr) return false;
  bool ok = std::fputs(line.c_str(), file) >= 0;
  ok = std::fclose(file) == 0 && ok;
  return ok;
}

}  // namespace bench
}  // namespace qp
