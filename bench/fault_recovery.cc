// Robustness-layer benchmarks: what the chaos machinery costs when it is
// NOT failing anything. Reported scalars (BenchReport JSON via
// $QP_BENCH_JSON):
//   fault_point_disarmed_ns — one disarmed QP_FAULT_POINT (the tax every
//                             production call path pays; a few ns)
//   fault_point_armed_other_ns — an armed hub evaluating a site with no
//                             rule (the chaos-run fast path)
//   breaker_recover_ms      — wall-clock from "disk healed" to the first
//                             acknowledged mutation (backoff + half-open
//                             probe + recovery checkpoint)
//   scrub_pass_ms           — one synchronous scrub pass over the
//                             populated store (committed snapshot + WAL
//                             re-verify + every profile's invariants);
//                             divide by the cadence for the duty cycle
//   scrub_off_records_per_s / scrub_on_records_per_s / scrub_tax_pct —
//                             steady-state mutation throughput with the
//                             background scrubber off vs on a 1s
//                             cadence (already ~100x more aggressive
//                             than an operational scrubber), compaction
//                             bounding the WAL as in production; the
//                             tax must stay under ~2%.

#include <chrono>
#include <memory>
#include <string>
#include <thread>

#include "bench_util.h"
#include "benchmark/benchmark.h"
#include "qp/data/movie_db.h"
#include "qp/data/paper_example.h"
#include "qp/storage/durable_profile_store.h"
#include "qp/storage/fault_injection.h"
#include "qp/util/fault_hub.h"

namespace qp {
namespace storage {
namespace {

bench::BenchReport& Report() {
  static auto* report = new bench::BenchReport("fault_recovery");
  return *report;
}

double NsPerCall(const char* site, size_t calls) {
  auto start = std::chrono::steady_clock::now();
  for (size_t i = 0; i < calls; ++i) {
    benchmark::DoNotOptimize(FaultHub::Global()->Check(site));
  }
  auto elapsed = std::chrono::steady_clock::now() - start;
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
                 .count()) /
         static_cast<double>(calls);
}

/// The overhead every production call path pays for carrying a fault
/// site: disarmed (one relaxed atomic load) and armed-but-no-rule (the
/// per-site lookup a chaos run imposes on untargeted sites).
void BM_FaultPointOverhead(benchmark::State& state) {
  FaultHub::Global()->Reset();
  for (auto _ : state) {
    benchmark::DoNotOptimize(FaultHub::Global()->Check("bench.site"));
  }
  state.SetItemsProcessed(state.iterations());

  constexpr size_t kCalls = 1 << 20;
  Report().AddScalar("fault_point_disarmed_ns",
                     NsPerCall("bench.site", kCalls));
  FaultRule rule;
  rule.fire_on_nth = 1;  // A rule on a DIFFERENT site.
  FaultHub::Global()->SetRule("bench.other", rule);
  FaultHub::Global()->Arm(1);
  Report().AddScalar("fault_point_armed_other_ns",
                     NsPerCall("bench.site", kCalls));
  FaultHub::Global()->Reset();
}
BENCHMARK(BM_FaultPointOverhead);

/// Time-to-recover: trip the breaker on a dead disk, heal the disk, and
/// measure the wall-clock until the store acknowledges a mutation again
/// — the backoff wait, the half-open probe's recovery checkpoint, and
/// the probe write itself.
void BM_BreakerTimeToRecover(benchmark::State& state) {
  Schema schema = MovieSchema();
  const UserProfile julie = JulieProfile();
  const UserProfile rob = RobProfile();
  double total_ms = 0.0;
  size_t recoveries = 0;
  for (auto _ : state) {
    state.PauseTiming();
    FaultInjectingFileSystem fs;
    StorageOptions options;
    options.dir = "db";
    options.fs = &fs;
    options.background_compaction = false;
    options.wal.max_sync_retries = 0;
    options.breaker_threshold = 2;
    options.breaker_backoff = std::chrono::milliseconds(1);
    auto store_or = DurableProfileStore::Open(&schema, options);
    if (!store_or.ok()) {
      state.SkipWithError("open failed");
      return;
    }
    auto store = std::move(store_or).value();
    if (!store->Put("julie", julie).ok()) {
      state.SkipWithError("seed put failed");
      return;
    }
    fs.SetSyncFailure(true);
    while (!store->storage_stats().breaker_open) {
      (void)store->Put("rob", rob);
    }
    state.ResumeTiming();

    fs.SetSyncFailure(false);  // The disk heals; the clock starts.
    auto start = std::chrono::steady_clock::now();
    while (!store->Put("rob", rob).ok()) {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
    auto elapsed = std::chrono::steady_clock::now() - start;
    total_ms += std::chrono::duration<double, std::milli>(elapsed).count();
    ++recoveries;
  }
  if (recoveries > 0) {
    state.counters["recover_ms"] = total_ms / static_cast<double>(recoveries);
    Report().AddScalar("breaker_recover_ms",
                       total_ms / static_cast<double>(recoveries));
  }
}
BENCHMARK(BM_BreakerTimeToRecover)->Iterations(5)->Unit(benchmark::kMillisecond);

/// Steady-state scrub tax: mutation throughput over a populated store
/// with the background scrubber off (arg 0) vs scrubbing every second
/// (arg 1) — a cadence ~100x more aggressive than an operational
/// scrubber, measured with compaction bounding the WAL exactly as in
/// production (an unbounded WAL would charge the scrubber for
/// re-verifying an ever-growing log no deployment ever has). The
/// scrubber re-reads the committed generation under the meta mutex
/// only — mutators append under stripe locks — so the tax is scrub CPU
/// plus brief checkpoint interference, not a stall.
void BM_ScrubSteadyStateOverhead(benchmark::State& state) {
  static double baseline_rps = 0.0;
  const bool scrub_on = state.range(0) != 0;
  Schema schema = MovieSchema();
  const UserProfile julie = JulieProfile();
  FaultInjectingFileSystem fs;
  StorageOptions options;
  options.dir = "db";
  options.fs = &fs;
  if (scrub_on) options.scrub_interval = std::chrono::milliseconds(1000);
  auto store_or = DurableProfileStore::Open(&schema, options);
  if (!store_or.ok()) {
    state.SkipWithError("open failed");
    return;
  }
  auto store = std::move(store_or).value();
  for (int i = 0; i < 256; ++i) {
    if (!store->Put("user" + std::to_string(i), julie).ok()) {
      state.SkipWithError("seed put failed");
      return;
    }
  }
  if (!scrub_on) {
    // Price one synchronous pass over the populated store while we have
    // it: snapshot + WAL re-verify + all 256 profiles' invariants.
    (void)store->Checkpoint();
    constexpr int kPasses = 8;
    auto scrub_start = std::chrono::steady_clock::now();
    for (int i = 0; i < kPasses; ++i) (void)store->ScrubOnce();
    const double pass_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - scrub_start)
            .count() /
        kPasses;
    state.counters["scrub_pass_ms"] = pass_ms;
    Report().AddScalar("scrub_pass_ms", pass_ms);
  }

  size_t ops = 0;
  auto start = std::chrono::steady_clock::now();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        store->Put("user" + std::to_string(ops % 256), julie));
    ++ops;
  }
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  const double records_per_s =
      static_cast<double>(ops) / (seconds > 1e-9 ? seconds : 1e-9);
  state.SetItemsProcessed(static_cast<int64_t>(ops));
  state.counters["records_per_s"] = records_per_s;
  if (!scrub_on) {
    baseline_rps = records_per_s;
    Report().AddScalar("scrub_off_records_per_s", records_per_s);
  } else {
    Report().AddScalar("scrub_on_records_per_s", records_per_s);
    if (baseline_rps > 0.0) {
      const double tax = 100.0 * (1.0 - records_per_s / baseline_rps);
      state.counters["scrub_tax_pct"] = tax;
      Report().AddScalar("scrub_tax_pct", tax);
    }
  }
}
// MinTime spans several scrub cycles so the on-arm actually pays
// for passes (per-benchmark MinTime wins over --benchmark_min_time).
BENCHMARK(BM_ScrubSteadyStateOverhead)
    ->ArgNames({"scrub"})
    ->Arg(0)
    ->Arg(1)
    ->MinTime(4.0)
    ->UseRealTime();

}  // namespace
}  // namespace storage
}  // namespace qp

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return qp::storage::Report().Write() ? 0 : 1;
}
