// Paper-scale sanity run: the paper's prototype ran against an IMDb
// extract with over 340,000 movies. This bench builds a database in that
// cardinality class (scaled by QP_SCALE_MOVIES, default 50,000 so the
// whole bench suite stays fast; set QP_SCALE_MOVIES=340000 for the full
// size) and reports absolute end-to-end numbers for the personalization
// pipeline — showing the in-memory substrate holds up at the paper's
// data scale, not just at benchmark scale.

#include <cstdlib>
#include <vector>

#include "qp/core/personalizer.h"
#include "qp/data/movie_db.h"
#include "qp/data/workload.h"
#include "qp/util/string_util.h"
#include "qp/util/timer.h"

int main() {
  using namespace qp;

  size_t num_movies = 50000;
  if (const char* env = std::getenv("QP_SCALE_MOVIES")) {
    num_movies = static_cast<size_t>(std::atoll(env));
  }

  MovieDbConfig config;
  config.num_movies = num_movies;
  config.num_actors = num_movies / 3;
  config.num_directors = num_movies / 25;
  config.num_theatres = 200;
  config.num_days = 14;
  config.plays_per_theatre_per_day = 5;
  config.seed = 340000;

  std::printf("=== Paper-scale run: %zu movies ===\n", num_movies);
  WallTimer timer;
  auto db = GenerateMovieDatabase(config);
  if (!db.ok()) {
    std::printf("generation failed: %s\n", db.status().ToString().c_str());
    return 1;
  }
  std::printf("generated %zu rows in %s ms\n", db->TotalRows(),
              FormatDouble(timer.ElapsedMillis(), 4).c_str());

  Schema schema = MovieSchema();
  auto pools = MovieCandidatePools(*db);
  if (!pools.ok()) return 1;
  ProfileGenerator profiles(&schema, std::move(pools).value());
  ProfileGeneratorOptions popt;
  popt.num_selections = 100;
  Rng rng(7);
  auto profile = profiles.Generate(popt, &rng);
  if (!profile.ok()) return 1;
  auto graph = PersonalizationGraph::Build(&schema, *profile);
  if (!graph.ok()) return 1;
  Personalizer personalizer(&*graph);
  Executor executor(&*db);

  WorkloadGenerator workload(&*db, 11);
  auto queries = workload.RandomQueries(10);
  if (!queries.ok()) return 1;

  double initial_total = 0;
  double personalize_total = 0;
  double personalized_exec_total = 0;
  size_t runs = 0;
  for (const SelectQuery& query : *queries) {
    timer.Restart();
    auto initial = executor.Execute(query);
    double initial_ms = timer.ElapsedMillis();
    if (!initial.ok()) continue;

    PersonalizationOptions options;
    options.criterion = InterestCriterion::TopCount(10);
    options.integration.min_satisfied = 1;
    timer.Restart();
    auto outcome = personalizer.Personalize(query, options);
    double personalization_ms = timer.ElapsedMillis();
    if (!outcome.ok()) continue;
    timer.Restart();
    auto personalized = executor.Execute(*outcome->mq);
    double personalized_ms = timer.ElapsedMillis();
    if (!personalized.ok()) continue;

    initial_total += initial_ms;
    personalize_total += personalization_ms;
    personalized_exec_total += personalized_ms;
    ++runs;
  }
  if (runs == 0) return 1;
  std::printf("avg over %zu random queries (K=10, L=1):\n", runs);
  std::printf("  initial execution      %s ms\n",
              FormatDouble(initial_total / runs, 4).c_str());
  std::printf("  personalization        %s ms\n",
              FormatDouble(personalize_total / runs, 4).c_str());
  std::printf("  personalized execution %s ms\n",
              FormatDouble(personalized_exec_total / runs, 4).c_str());
  return 0;
}
