#ifndef QP_BENCH_BENCH_UTIL_H_
#define QP_BENCH_BENCH_UTIL_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "qp/core/personalizer.h"
#include "qp/data/movie_db.h"
#include "qp/data/workload.h"
#include "qp/obs/metrics.h"
#include "qp/pref/profile_generator.h"
#include "qp/relational/database.h"

namespace qp {
namespace bench {

/// Shared fixture for the figure-reproduction benchmarks: one generated
/// movie database (the IMDb stand-in), candidate pools for profile
/// generation, and a query workload — the analogue of the paper's setup
/// ("data from the Internet Movies Database", "100 randomly created
/// queries", synthetic profiles).
class BenchEnv {
 public:
  /// `scale` multiplies the default database size. Deterministic.
  explicit BenchEnv(double scale = 1.0, uint64_t seed = 20040301);

  const Database& db() const { return *db_; }
  const Schema& schema() const { return schema_; }

  /// Draws a profile with `num_selections` stored atomic selections.
  UserProfile MakeProfile(size_t num_selections, Rng* rng) const;

  /// Draws `n` random queries.
  std::vector<SelectQuery> MakeQueries(size_t n, uint64_t seed) const;

 private:
  Schema schema_;
  std::unique_ptr<Database> db_;
  std::unique_ptr<ProfileGenerator> profiles_;
};

/// Prints a header in a uniform style so bench outputs are grep-able:
/// === <figure id>: <title> ===
void PrintHeader(const std::string& figure, const std::string& title,
                 const std::string& paper_expectation);

/// Prints one aligned data row: label followed by columns.
void PrintRow(const std::vector<std::string>& cells);

/// One benchmark binary's machine-readable sidecar: named scalars plus
/// histogram percentile summaries, serialized as a single JSON object.
/// The service/storage benchmarks used to hand-roll their own JSON
/// emission (via --benchmark_format=json and ad-hoc counters); they now
/// feed this report instead, so every BENCH_*.json snapshot carries the
/// same shape — including per-phase latency percentiles from the
/// observability registry.
///
///   {"bench":"<name>",
///    "scalars":{"<k>":v,...},
///    "histograms":{"<k>":{"count":n,"sum":s,"p50":...,"p95":...,
///                         "p99":...},...}}
///
/// Keys keep insertion order; re-adding a key overwrites its value (the
/// benchmark library may re-run a registered function for estimation).
class BenchReport {
 public:
  explicit BenchReport(std::string name) : name_(std::move(name)) {}

  void AddScalar(const std::string& name, double value);
  void AddHistogram(const std::string& name,
                    const obs::HistogramSnapshot& snapshot);

  std::string ToJson() const;

  /// Writes ToJson() + '\n' to the file named by $QP_BENCH_JSON
  /// (appending, one object per benchmark binary run — JSONL), or to
  /// stdout when the variable is unset. Returns false on I/O failure.
  bool Write() const;

 private:
  std::string name_;
  std::vector<std::pair<std::string, double>> scalars_;
  std::vector<std::pair<std::string, obs::HistogramSnapshot>> histograms_;
};

}  // namespace bench
}  // namespace qp

#endif  // QP_BENCH_BENCH_UTIL_H_
