#ifndef QP_BENCH_BENCH_UTIL_H_
#define QP_BENCH_BENCH_UTIL_H_

#include <memory>
#include <string>
#include <vector>

#include "qp/core/personalizer.h"
#include "qp/data/movie_db.h"
#include "qp/data/workload.h"
#include "qp/pref/profile_generator.h"
#include "qp/relational/database.h"

namespace qp {
namespace bench {

/// Shared fixture for the figure-reproduction benchmarks: one generated
/// movie database (the IMDb stand-in), candidate pools for profile
/// generation, and a query workload — the analogue of the paper's setup
/// ("data from the Internet Movies Database", "100 randomly created
/// queries", synthetic profiles).
class BenchEnv {
 public:
  /// `scale` multiplies the default database size. Deterministic.
  explicit BenchEnv(double scale = 1.0, uint64_t seed = 20040301);

  const Database& db() const { return *db_; }
  const Schema& schema() const { return schema_; }

  /// Draws a profile with `num_selections` stored atomic selections.
  UserProfile MakeProfile(size_t num_selections, Rng* rng) const;

  /// Draws `n` random queries.
  std::vector<SelectQuery> MakeQueries(size_t n, uint64_t seed) const;

 private:
  Schema schema_;
  std::unique_ptr<Database> db_;
  std::unique_ptr<ProfileGenerator> profiles_;
};

/// Prints a header in a uniform style so bench outputs are grep-able:
/// === <figure id>: <title> ===
void PrintHeader(const std::string& figure, const std::string& title,
                 const std::string& paper_expectation);

/// Prints one aligned data row: label followed by columns.
void PrintRow(const std::vector<std::string>& cells);

}  // namespace bench
}  // namespace qp

#endif  // QP_BENCH_BENCH_UTIL_H_
