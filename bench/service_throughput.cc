// Service-layer throughput: batch personalization QPS as a function of
// worker count, on a generated movie database with randomized profiles
// and workload queries. Reported counters:
//   qps        — personalization requests completed per second
//   speedup_x  — QPS relative to the measured 1-worker baseline
//   hw_threads — std::thread::hardware_concurrency() (scaling past it is
//                not physically possible; on a 1-core container every
//                worker count collapses to ~1x)
// Run with --benchmark_counters_tabular=true for a readable table.

#include <algorithm>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "benchmark/benchmark.h"
#include "qp/data/movie_db.h"
#include "qp/data/workload.h"
#include "qp/obs/slo.h"
#include "qp/obs/trace.h"
#include "qp/pref/profile_generator.h"
#include "qp/service/service.h"
#include "qp/util/random.h"

namespace qp {
namespace {

bench::BenchReport& Report() {
  static auto* report = new bench::BenchReport("service_throughput");
  return *report;
}

constexpr size_t kUsers = 16;
constexpr size_t kQueries = 8;

const Database& SharedDb() {
  static Database* db = [] {
    MovieDbConfig config;
    config.num_movies = 2000;
    config.num_actors = 800;
    config.num_directors = 150;
    config.num_theatres = 20;
    auto generated = GenerateMovieDatabase(config);
    return new Database(std::move(generated).value());
  }();
  return *db;
}

std::vector<UserProfile> SharedProfiles() {
  static std::vector<UserProfile>* profiles = [] {
    auto pools = MovieCandidatePools(SharedDb());
    ProfileGenerator generator(&SharedDb().schema(),
                               std::move(pools).value());
    Rng rng(7);
    ProfileGeneratorOptions options;
    options.num_selections = 40;
    auto* result = new std::vector<UserProfile>;
    for (size_t u = 0; u < kUsers; ++u) {
      result->push_back(generator.Generate(options, &rng).value());
    }
    return result;
  }();
  return *profiles;
}

std::vector<PersonalizationRequest> SharedRequests() {
  static std::vector<PersonalizationRequest>* requests = [] {
    WorkloadGenerator workload(&SharedDb(), 31);
    auto queries = workload.RandomQueries(kQueries).value();
    auto* result = new std::vector<PersonalizationRequest>;
    for (size_t u = 0; u < kUsers; ++u) {
      for (const SelectQuery& query : queries) {
        PersonalizationRequest request;
        request.user_id = "user" + std::to_string(u);
        request.query = query;
        request.options.criterion = InterestCriterion::TopCount(4);
        result->push_back(std::move(request));
      }
    }
    return result;
  }();
  return *requests;
}

std::unique_ptr<PersonalizationService> MakeService(size_t workers,
                                                    bool enable_cache) {
  ServiceOptions options;
  options.num_workers = workers;
  options.cache_capacity = enable_cache ? 4096 : 0;
  auto service =
      std::make_unique<PersonalizationService>(&SharedDb(), options);
  for (size_t u = 0; u < kUsers; ++u) {
    auto status =
        service->profiles().Put("user" + std::to_string(u),
                                SharedProfiles()[u]);
    if (!status.ok()) return nullptr;
  }
  return service;
}

/// Wall-clock QPS over `reps` batches, measured outside the benchmark
/// state so it can also produce the 1-worker baseline.
double MeasureQps(PersonalizationService& service, int reps) {
  const auto& requests = SharedRequests();
  size_t completed = 0;
  auto start = std::chrono::steady_clock::now();
  for (int rep = 0; rep < reps; ++rep) {
    completed += service.PersonalizeBatchAndWait(requests).size();
  }
  double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return seconds > 0 ? static_cast<double>(completed) / seconds : 0;
}

/// One measured 1-worker QPS per cache mode, so speedup_x for every
/// worker count is relative to the same serial baseline.
double BaselineQps(bool enable_cache) {
  static double with_cache = 0;
  static double without_cache = 0;
  double& slot = enable_cache ? with_cache : without_cache;
  if (slot == 0) {
    auto service = MakeService(1, enable_cache);
    if (service != nullptr) {
      MeasureQps(*service, 1);  // Warm up indexes and allocator.
      slot = MeasureQps(*service, 3);
    }
  }
  return slot;
}

void BM_PersonalizeBatch(benchmark::State& state) {
  size_t workers = static_cast<size_t>(state.range(0));
  bool enable_cache = state.range(1) != 0;
  double baseline = BaselineQps(enable_cache);
  auto service = MakeService(workers, enable_cache);
  if (service == nullptr) {
    state.SkipWithError("profile setup failed");
    return;
  }
  const auto& requests = SharedRequests();
  size_t completed = 0;
  double seconds = 0;
  for (auto _ : state) {
    auto start = std::chrono::steady_clock::now();
    completed += service->PersonalizeBatchAndWait(requests).size();
    seconds += std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start)
                   .count();
  }
  double qps =
      seconds > 0 ? static_cast<double>(completed) / seconds : 0;
  state.counters["qps"] = qps;
  state.counters["speedup_x"] = baseline > 0 ? qps / baseline : 1.0;
  state.counters["hw_threads"] =
      static_cast<double>(std::thread::hardware_concurrency());

  std::string label = "w" + std::to_string(workers) +
                      (enable_cache ? "_cache" : "_nocache");
  Report().AddScalar("qps/" + label, qps);
  Report().AddScalar("speedup_x/" + label,
                     baseline > 0 ? qps / baseline : 1.0);
  // Per-phase latency percentiles from the service's own registry — the
  // perf-trajectory numbers tests/ci.sh snapshots across PRs.
  obs::MetricsRegistry* metrics = service->metrics();
  Report().AddHistogram("qp_service_request_seconds/" + label,
                        metrics->histogram("qp_service_request_seconds")
                            ->Snapshot());
  Report().AddHistogram("qp_service_selection_seconds/" + label,
                        metrics->histogram("qp_service_selection_seconds")
                            ->Snapshot());
  Report().AddHistogram("qp_service_execution_seconds/" + label,
                        metrics->histogram("qp_service_execution_seconds")
                            ->Snapshot());
}
BENCHMARK(BM_PersonalizeBatch)
    ->ArgNames({"workers", "cache"})
    ->Args({1, 0})
    ->Args({2, 0})
    ->Args({4, 0})
    ->Args({8, 0})
    ->Args({1, 1})
    ->Args({2, 1})
    ->Args({4, 1})
    ->Args({8, 1})
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

/// The tracing tax with a sink that discards everything: each iteration
/// runs the same batch twice, tracing detached then attached to a
/// NullTraceSink (spans are recorded and the trace is built, then
/// dropped). overhead_pct is the relative wall-time increase — the
/// acceptance bar is < 2%, and with tracing compiled out
/// (QP_OBS_DISABLED) it should be indistinguishable from noise.
void BM_TraceNullSinkOverhead(benchmark::State& state) {
  auto service = MakeService(2, /*enable_cache=*/true);
  if (service == nullptr) {
    state.SkipWithError("profile setup failed");
    return;
  }
  const auto& requests = SharedRequests();
  service->PersonalizeBatchAndWait(requests);  // Warm up.
  obs::NullTraceSink null_sink;
  double seconds_off = 0, seconds_on = 0;
  for (auto _ : state) {
    service->set_trace_sink(nullptr);
    auto start = std::chrono::steady_clock::now();
    service->PersonalizeBatchAndWait(requests);
    seconds_off += std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count();
    service->set_trace_sink(&null_sink);
    start = std::chrono::steady_clock::now();
    service->PersonalizeBatchAndWait(requests);
    seconds_on += std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start)
                      .count();
  }
  service->set_trace_sink(nullptr);
  double overhead_pct =
      seconds_off > 0 ? (seconds_on - seconds_off) / seconds_off * 100.0
                      : 0.0;
  state.counters["overhead_pct"] = overhead_pct;
  state.counters["traced"] = obs::kTracingCompiledIn ? 1.0 : 0.0;
  Report().AddScalar("trace_null_sink_overhead_pct", overhead_pct);
}
BENCHMARK(BM_TraceNullSinkOverhead)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

/// The production configuration's tax: a sink attached but only 1% of
/// requests head-sampled, against the same service with tracing fully
/// detached. The 99% unsampled majority pays only the head coin flip
/// plus the tail-rule bookkeeping, so the relative wall-time increase
/// (sampled_trace_tax_pct) must stay under the 3% regression ceiling —
/// that bound is what makes always-on sampled tracing shippable.
void BM_SampledTraceOverhead(benchmark::State& state) {
  ServiceOptions options;
  options.num_workers = 2;
  options.cache_capacity = 4096;
  options.sampling.head_rate = 0.01;
  auto service =
      std::make_unique<PersonalizationService>(&SharedDb(), options);
  for (size_t u = 0; u < kUsers; ++u) {
    auto status = service->profiles().Put("user" + std::to_string(u),
                                          SharedProfiles()[u]);
    if (!status.ok()) {
      state.SkipWithError("profile setup failed");
      return;
    }
  }
  const auto& requests = SharedRequests();
  service->PersonalizeBatchAndWait(requests);  // Warm up.
  obs::NullTraceSink null_sink;
  // Batch wall times are heavy-tailed (one slow execution is ~70x the
  // median request), so a sums ratio over a handful of alternations
  // drowns a sub-1% effect in noise. Instead: alternate the sink per
  // small chunk (order swapped every chunk so neither mode always runs
  // into a warmer machine), giving one tightly-paired ratio per
  // iteration, and report the median ratio — outlier batches perturb
  // individual samples, not the estimate.
  constexpr size_t kChunk = 64;
  std::vector<std::vector<PersonalizationRequest>> chunks;
  for (size_t begin = 0; begin < requests.size(); begin += kChunk) {
    const size_t end = std::min(begin + kChunk, requests.size());
    chunks.emplace_back(requests.begin() + begin, requests.begin() + end);
  }
  auto timed = [&](const std::vector<PersonalizationRequest>& chunk,
                   obs::TraceSink* sink) {
    service->set_trace_sink(sink);
    auto start = std::chrono::steady_clock::now();
    service->PersonalizeBatchAndWait(chunk);
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };
  std::vector<double> ratios;
  for (auto _ : state) {
    for (size_t c = 0; c < chunks.size(); ++c) {
      double seconds_off, seconds_on;
      if (c % 2 == 0) {
        seconds_off = timed(chunks[c], nullptr);
        seconds_on = timed(chunks[c], &null_sink);
      } else {
        seconds_on = timed(chunks[c], &null_sink);
        seconds_off = timed(chunks[c], nullptr);
      }
      if (seconds_off > 0) ratios.push_back(seconds_on / seconds_off);
    }
  }
  service->set_trace_sink(nullptr);
  double tax_pct = 0.0;
  if (!ratios.empty()) {
    std::nth_element(ratios.begin(), ratios.begin() + ratios.size() / 2,
                     ratios.end());
    tax_pct = (ratios[ratios.size() / 2] - 1.0) * 100.0;
  }
  state.counters["tax_pct"] = tax_pct;
  state.counters["head_rate"] = options.sampling.head_rate;
  Report().AddScalar("sampled_trace_tax_pct", tax_pct);
  // The rolling SLO gauges over everything this benchmark just pushed
  // through the service — snapshotted into the report so the perf
  // trajectory also tracks objective attainment, not just speed.
  obs::SloSnapshot slo = service->SloStatus();
  Report().AddScalar("slo_availability", slo.availability);
  Report().AddScalar("slo_latency_attainment", slo.latency_attainment);
  Report().AddScalar("slo_availability_burn_rate",
                     slo.availability_burn_rate);
  Report().AddScalar("slo_latency_burn_rate", slo.latency_burn_rate);
}
BENCHMARK(BM_SampledTraceOverhead)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace
}  // namespace qp

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return qp::Report().Write() ? 0 : 1;
}
