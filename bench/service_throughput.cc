// Service-layer throughput: batch personalization QPS as a function of
// worker count, on a generated movie database with randomized profiles
// and workload queries. Reported counters:
//   qps        — personalization requests completed per second
//   speedup_x  — QPS relative to the measured 1-worker baseline
//   hw_threads — std::thread::hardware_concurrency() (scaling past it is
//                not physically possible; on a 1-core container every
//                worker count collapses to ~1x)
// Run with --benchmark_counters_tabular=true for a readable table.

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "benchmark/benchmark.h"
#include "qp/data/movie_db.h"
#include "qp/data/workload.h"
#include "qp/obs/trace.h"
#include "qp/pref/profile_generator.h"
#include "qp/service/service.h"
#include "qp/util/random.h"

namespace qp {
namespace {

bench::BenchReport& Report() {
  static auto* report = new bench::BenchReport("service_throughput");
  return *report;
}

constexpr size_t kUsers = 16;
constexpr size_t kQueries = 8;

const Database& SharedDb() {
  static Database* db = [] {
    MovieDbConfig config;
    config.num_movies = 2000;
    config.num_actors = 800;
    config.num_directors = 150;
    config.num_theatres = 20;
    auto generated = GenerateMovieDatabase(config);
    return new Database(std::move(generated).value());
  }();
  return *db;
}

std::vector<UserProfile> SharedProfiles() {
  static std::vector<UserProfile>* profiles = [] {
    auto pools = MovieCandidatePools(SharedDb());
    ProfileGenerator generator(&SharedDb().schema(),
                               std::move(pools).value());
    Rng rng(7);
    ProfileGeneratorOptions options;
    options.num_selections = 40;
    auto* result = new std::vector<UserProfile>;
    for (size_t u = 0; u < kUsers; ++u) {
      result->push_back(generator.Generate(options, &rng).value());
    }
    return result;
  }();
  return *profiles;
}

std::vector<PersonalizationRequest> SharedRequests() {
  static std::vector<PersonalizationRequest>* requests = [] {
    WorkloadGenerator workload(&SharedDb(), 31);
    auto queries = workload.RandomQueries(kQueries).value();
    auto* result = new std::vector<PersonalizationRequest>;
    for (size_t u = 0; u < kUsers; ++u) {
      for (const SelectQuery& query : queries) {
        PersonalizationRequest request;
        request.user_id = "user" + std::to_string(u);
        request.query = query;
        request.options.criterion = InterestCriterion::TopCount(4);
        result->push_back(std::move(request));
      }
    }
    return result;
  }();
  return *requests;
}

std::unique_ptr<PersonalizationService> MakeService(size_t workers,
                                                    bool enable_cache) {
  ServiceOptions options;
  options.num_workers = workers;
  options.cache_capacity = enable_cache ? 4096 : 0;
  auto service =
      std::make_unique<PersonalizationService>(&SharedDb(), options);
  for (size_t u = 0; u < kUsers; ++u) {
    auto status =
        service->profiles().Put("user" + std::to_string(u),
                                SharedProfiles()[u]);
    if (!status.ok()) return nullptr;
  }
  return service;
}

/// Wall-clock QPS over `reps` batches, measured outside the benchmark
/// state so it can also produce the 1-worker baseline.
double MeasureQps(PersonalizationService& service, int reps) {
  const auto& requests = SharedRequests();
  size_t completed = 0;
  auto start = std::chrono::steady_clock::now();
  for (int rep = 0; rep < reps; ++rep) {
    completed += service.PersonalizeBatchAndWait(requests).size();
  }
  double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return seconds > 0 ? static_cast<double>(completed) / seconds : 0;
}

/// One measured 1-worker QPS per cache mode, so speedup_x for every
/// worker count is relative to the same serial baseline.
double BaselineQps(bool enable_cache) {
  static double with_cache = 0;
  static double without_cache = 0;
  double& slot = enable_cache ? with_cache : without_cache;
  if (slot == 0) {
    auto service = MakeService(1, enable_cache);
    if (service != nullptr) {
      MeasureQps(*service, 1);  // Warm up indexes and allocator.
      slot = MeasureQps(*service, 3);
    }
  }
  return slot;
}

void BM_PersonalizeBatch(benchmark::State& state) {
  size_t workers = static_cast<size_t>(state.range(0));
  bool enable_cache = state.range(1) != 0;
  double baseline = BaselineQps(enable_cache);
  auto service = MakeService(workers, enable_cache);
  if (service == nullptr) {
    state.SkipWithError("profile setup failed");
    return;
  }
  const auto& requests = SharedRequests();
  size_t completed = 0;
  double seconds = 0;
  for (auto _ : state) {
    auto start = std::chrono::steady_clock::now();
    completed += service->PersonalizeBatchAndWait(requests).size();
    seconds += std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start)
                   .count();
  }
  double qps =
      seconds > 0 ? static_cast<double>(completed) / seconds : 0;
  state.counters["qps"] = qps;
  state.counters["speedup_x"] = baseline > 0 ? qps / baseline : 1.0;
  state.counters["hw_threads"] =
      static_cast<double>(std::thread::hardware_concurrency());

  std::string label = "w" + std::to_string(workers) +
                      (enable_cache ? "_cache" : "_nocache");
  Report().AddScalar("qps/" + label, qps);
  Report().AddScalar("speedup_x/" + label,
                     baseline > 0 ? qps / baseline : 1.0);
  // Per-phase latency percentiles from the service's own registry — the
  // perf-trajectory numbers tests/ci.sh snapshots across PRs.
  obs::MetricsRegistry* metrics = service->metrics();
  Report().AddHistogram("qp_service_request_seconds/" + label,
                        metrics->histogram("qp_service_request_seconds")
                            ->Snapshot());
  Report().AddHistogram("qp_service_selection_seconds/" + label,
                        metrics->histogram("qp_service_selection_seconds")
                            ->Snapshot());
  Report().AddHistogram("qp_service_execution_seconds/" + label,
                        metrics->histogram("qp_service_execution_seconds")
                            ->Snapshot());
}
BENCHMARK(BM_PersonalizeBatch)
    ->ArgNames({"workers", "cache"})
    ->Args({1, 0})
    ->Args({2, 0})
    ->Args({4, 0})
    ->Args({8, 0})
    ->Args({1, 1})
    ->Args({2, 1})
    ->Args({4, 1})
    ->Args({8, 1})
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

/// The tracing tax with a sink that discards everything: each iteration
/// runs the same batch twice, tracing detached then attached to a
/// NullTraceSink (spans are recorded and the trace is built, then
/// dropped). overhead_pct is the relative wall-time increase — the
/// acceptance bar is < 2%, and with tracing compiled out
/// (QP_OBS_DISABLED) it should be indistinguishable from noise.
void BM_TraceNullSinkOverhead(benchmark::State& state) {
  auto service = MakeService(2, /*enable_cache=*/true);
  if (service == nullptr) {
    state.SkipWithError("profile setup failed");
    return;
  }
  const auto& requests = SharedRequests();
  service->PersonalizeBatchAndWait(requests);  // Warm up.
  obs::NullTraceSink null_sink;
  double seconds_off = 0, seconds_on = 0;
  for (auto _ : state) {
    service->set_trace_sink(nullptr);
    auto start = std::chrono::steady_clock::now();
    service->PersonalizeBatchAndWait(requests);
    seconds_off += std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count();
    service->set_trace_sink(&null_sink);
    start = std::chrono::steady_clock::now();
    service->PersonalizeBatchAndWait(requests);
    seconds_on += std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start)
                      .count();
  }
  service->set_trace_sink(nullptr);
  double overhead_pct =
      seconds_off > 0 ? (seconds_on - seconds_off) / seconds_off * 100.0
                      : 0.0;
  state.counters["overhead_pct"] = overhead_pct;
  state.counters["traced"] = obs::kTracingCompiledIn ? 1.0 : 0.0;
  Report().AddScalar("trace_null_sink_overhead_pct", overhead_pct);
}
BENCHMARK(BM_TraceNullSinkOverhead)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace
}  // namespace qp

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return qp::Report().Write() ? 0 : 1;
}
